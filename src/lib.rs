//! # guttag-adt — algebraic specification of abstract data types
//!
//! A full Rust reproduction of John Guttag, *Abstract Data Types and the
//! Development of Data Structures*, CACM 20(6):396–404, June 1977.
//!
//! This façade crate re-exports the whole workspace:
//!
//! * [`core`] — sorts, signatures, terms, substitution, matching,
//!   unification, axioms, specifications.
//! * [`rewrite`] — the term-rewriting engine (innermost normalization with
//!   strict `error`), rewrite traces, critical pairs, and the symbolic
//!   interpreter.
//! * [`check`] — mechanical sufficient-completeness and consistency
//!   checking.
//! * [`dsl`] — the textual specification language (`.adt` files).
//! * [`verify`] — bounded model checking of axioms against Rust
//!   implementations, abstraction-function (Φ) checking, conditional
//!   correctness, and generator induction.
//! * [`structures`] — every data structure of the paper, at both the
//!   specification level and as efficient verified Rust implementations.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example (through the façade)
//!
//! ```
//! use guttag_adt::{check, dsl, rewrite};
//!
//! let spec = dsl::parse(
//!     "type N\nops\n Z: -> N ctor\n S: N -> N ctor\n P: N -> N\nvars\n n: N\n\
//!      axioms\n [p1] P(Z) = error\n [p2] P(S(n)) = n\nend",
//! )
//! .map_err(|e| e.to_string())?;
//! assert!(check::check_completeness(&spec).is_sufficiently_complete());
//! let rw = rewrite::Rewriter::new(&spec);
//! let two = spec.sig().apply("S", vec![spec.sig().apply("Z", vec![])?])?;
//! let one = rw.normalize(&spec.sig().apply("P", vec![two])?)?;
//! assert_eq!(one, spec.sig().apply("Z", vec![])?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adt_check as check;
pub use adt_core as core;
pub use adt_dsl as dsl;
pub use adt_rewrite as rewrite;
pub use adt_structures as structures;
pub use adt_verify as verify;
