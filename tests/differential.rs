//! Differential testing: four independent executions of the *same*
//! random queue programs — term rewriting, the growable FIFO, the
//! two-stack queue, and the symbolic interpreter — must agree
//! observation-for-observation. Any divergence is a bug in exactly one
//! layer, which is what makes this harness a powerful tripwire.

use adt_core::{display, Spec, Term};
use adt_rewrite::{Rewriter, SymbolicSession};
use adt_structures::models::{fifo_model, two_stack_model};
use adt_structures::specs::queue_spec;
use adt_verify::{eval_ground, MValue, Model};

/// One queue observation: FRONT rendered as a string ("error" included).
#[derive(Debug, PartialEq, Eq, Clone)]
struct Observation {
    front: String,
    is_empty: String,
}

fn observe_by_rewriting(spec: &Spec, state: &Term) -> Observation {
    let rw = Rewriter::new(spec);
    let sig = spec.sig();
    let front = rw
        .normalize(&sig.apply("FRONT", vec![state.clone()]).unwrap())
        .unwrap();
    let is_empty = rw
        .normalize(&sig.apply("IS_EMPTY?", vec![state.clone()]).unwrap())
        .unwrap();
    Observation {
        front: display::term(sig, &front).to_string(),
        is_empty: display::term(sig, &is_empty).to_string(),
    }
}

fn observe_by_model(spec: &Spec, model: &dyn Model, state: &Term) -> Observation {
    let sig = spec.sig();
    let front = eval_ground(model, &sig.apply("FRONT", vec![state.clone()]).unwrap());
    let is_empty = eval_ground(model, &sig.apply("IS_EMPTY?", vec![state.clone()]).unwrap());
    Observation {
        front: match front {
            MValue::Str(s) => s,
            MValue::Error => "error".to_owned(),
            other => panic!("FRONT produced {other:?}"),
        },
        is_empty: match is_empty {
            MValue::Bool(b) => b.to_string(),
            MValue::Error => "error".to_owned(),
            other => panic!("IS_EMPTY? produced {other:?}"),
        },
    }
}

fn observe_by_session(spec: &Spec, state: &Term) -> Observation {
    let mut session = SymbolicSession::new(spec);
    session.set("x", state.clone()).unwrap();
    let front = session.call("FRONT", ["x".into()]).unwrap();
    let is_empty = session.call("IS_EMPTY?", ["x".into()]).unwrap();
    Observation {
        front: display::term(spec.sig(), &front).to_string(),
        is_empty: display::term(spec.sig(), &is_empty).to_string(),
    }
}

/// Builds a random ground queue program term from a seed.
fn random_program(spec: &Spec, seed: u64, len: usize) -> Term {
    let sig = spec.sig();
    let items = ["A", "B", "C"];
    let mut state = sig.apply("NEW", vec![]).unwrap();
    let mut s = seed;
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if s.is_multiple_of(4) {
            state = sig.apply("REMOVE", vec![state]).unwrap();
        } else {
            let item = sig.apply(items[(s % 3) as usize], vec![]).unwrap();
            state = sig.apply("ADD", vec![state, item]).unwrap();
        }
    }
    state
}

#[test]
fn four_executions_agree_on_three_hundred_random_programs() {
    let spec = queue_spec();
    let fifo = fifo_model(&spec);
    let two_stack = two_stack_model(&spec);
    for seed in 0..100u64 {
        for len in [3usize, 9, 17] {
            let program = random_program(&spec, seed.wrapping_mul(7919) + len as u64, len);
            let by_rewriting = observe_by_rewriting(&spec, &program);
            let by_fifo = observe_by_model(&spec, &fifo, &program);
            let by_two_stack = observe_by_model(&spec, &two_stack, &program);
            let by_session = observe_by_session(&spec, &program);
            let source = display::term(spec.sig(), &program).to_string();
            assert_eq!(by_rewriting, by_fifo, "rewriting vs fifo on {source}");
            assert_eq!(
                by_rewriting, by_two_stack,
                "rewriting vs two-stack on {source}"
            );
            assert_eq!(by_rewriting, by_session, "rewriting vs session on {source}");
        }
    }
}

#[test]
fn error_states_agree_too() {
    // Programs that underflow (REMOVE past empty) must be error in every
    // execution, and stay error afterwards.
    let spec = queue_spec();
    let sig = spec.sig();
    let fifo = fifo_model(&spec);
    let underflow = sig
        .apply(
            "ADD",
            vec![
                sig.apply("REMOVE", vec![sig.apply("NEW", vec![]).unwrap()])
                    .unwrap(),
                sig.apply("A", vec![]).unwrap(),
            ],
        )
        .unwrap();
    let by_rewriting = observe_by_rewriting(&spec, &underflow);
    let by_fifo = observe_by_model(&spec, &fifo, &underflow);
    assert_eq!(by_rewriting, by_fifo);
    assert_eq!(by_rewriting.front, "error");
}
