//! Supervision suite: deadlines, cooperative cancellation, and
//! checkpoint/resume, exercised end to end.
//!
//! Three claims are pinned here:
//!
//! 1. **Deterministic interruption** — a seeded [`CancelToken`] stops a
//!    sequential check mid-run at exactly the same point every time; the
//!    partial report is fully classified (no verdict lost, only
//!    downgraded to interrupted) and reproducible byte for byte.
//! 2. **Graceful degradation** — an already-expired deadline degrades the
//!    whole CLI report to UNDETERMINED with exit 0, identically at any
//!    `--jobs`.
//! 3. **Checkpoint resume** — a run killed between phases leaves a
//!    checkpoint from which a later `adt check --checkpoint` produces a
//!    report byte-identical to an uninterrupted run, at `--jobs 1` and
//!    `--jobs 4`.

use std::fs;
use std::path::PathBuf;

use adt_check::{
    check_completeness_with_config, check_consistency_with_config, CheckConfig,
    ConsistencyVerdict, ProbeConfig,
};
use adt_cli::checkpoint::Checkpoint;
use adt_core::{CancelToken, Supervisor};
use adt_structures::sources;

fn temp_path(name: &str, suffix: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("adt_supervision_{}_{name}{suffix}", std::process::id()));
    path
}

fn temp_spec(name: &str, contents: &str) -> PathBuf {
    let path = temp_path(name, ".adt");
    fs::write(&path, contents).expect("temp file is writable");
    path
}

fn cli(args: &[&str]) -> adt_cli::Outcome {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    adt_cli::run(&owned)
}

fn cancelled_after(polls: u64) -> CheckConfig {
    CheckConfig::jobs(1).with_supervisor(Supervisor::none().with_cancel(CancelToken::after_polls(polls)))
}

#[test]
fn seeded_cancellation_stops_consistency_at_the_same_point_every_time() {
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let probe = ProbeConfig::default();
    let mut summaries = Vec::new();
    for _ in 0..2 {
        let report = check_consistency_with_config(&spec, &probe, &cancelled_after(5));
        assert_eq!(
            report.verdict(),
            &ConsistencyVerdict::Interrupted,
            "{}",
            report.summary()
        );
        assert!(report.interrupted_items() > 0);
        // The report is partial, never truncated: every scheduled item
        // still carries a verdict string (some of them "interrupted").
        assert!(report
            .pair_verdicts()
            .iter()
            .chain(report.probe_verdicts())
            .all(|v| !v.is_empty()));
        assert!(
            report.summary().contains("interrupted:"),
            "{}",
            report.summary()
        );
        summaries.push(report.summary());
    }
    assert_eq!(
        summaries[0], summaries[1],
        "a seeded cancellation must reproduce the identical partial report"
    );
}

#[test]
fn seeded_cancellation_downgrades_completeness_without_failing_it() {
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let report = check_completeness_with_config(&spec, &cancelled_after(2));
    assert!(report.interrupted_ops() > 0, "{}", report.prompts());
    // Interruption is never evidence of incompleteness: the undetermined
    // operations are prompted about, not counted as missing cases.
    assert!(!report.has_definite_missing());
    assert!(!report.undetermined_ops().is_empty());
    assert!(
        report.prompts().contains("analysis interrupted (cancelled)"),
        "{}",
        report.prompts()
    );
}

#[test]
fn immediate_cancellation_interrupts_everything_deterministically() {
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let probe = ProbeConfig::default();
    // A token cancelled before the run starts is observed by the very
    // first poll of every worker, so even parallel runs are identical.
    let mut summaries = Vec::new();
    for jobs in [1, 4] {
        let token = CancelToken::new();
        token.cancel();
        let cfg =
            CheckConfig::jobs(jobs).with_supervisor(Supervisor::none().with_cancel(token));
        let report = check_consistency_with_config(&spec, &probe, &cfg);
        assert_eq!(report.verdict(), &ConsistencyVerdict::Interrupted);
        summaries.push(report.summary());
    }
    assert_eq!(summaries[0], summaries[1]);
}

#[test]
fn expired_deadline_degrades_the_cli_identically_at_any_job_count() {
    let path = temp_spec("deadline", sources::QUEUE);
    let mut outcomes = Vec::new();
    for jobs in ["1", "4"] {
        let out = cli(&[
            "check",
            "--jobs",
            jobs,
            "--deadline",
            "0ms",
            path.to_str().unwrap(),
        ]);
        assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
        assert!(
            out.output.contains("consistent: UNDETERMINED"),
            "jobs {jobs}: {}",
            out.output
        );
        outcomes.push(out);
    }
    assert_eq!(outcomes[0], outcomes[1]);
    let _ = fs::remove_file(path);
}

#[test]
fn killed_run_resumes_from_checkpoint_byte_identical() {
    let path = temp_spec("resume", sources::QUEUE);
    let ck = temp_path("resume", ".json");
    let _ = fs::remove_file(&ck);

    let uninterrupted = cli(&["check", path.to_str().unwrap()]);
    assert_eq!(uninterrupted.code, 0, "{}", uninterrupted.output);

    // Populate the checkpoint with a full run, then simulate a run killed
    // after the completeness phase by dropping the consistency entry.
    let populated = cli(&[
        "check",
        "--checkpoint",
        ck.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(populated, uninterrupted);
    let full = Checkpoint::load(&ck).expect("checkpoint written");
    assert!(full.phase("completeness").is_some());
    assert!(full.phase("consistency").is_some());
    let mut killed = full.clone();
    killed.phases.retain(|p| p.name == "completeness");

    for jobs in ["1", "4"] {
        killed.save(&ck).expect("checkpoint is writable");
        let resumed = cli(&[
            "check",
            "--jobs",
            jobs,
            "--checkpoint",
            ck.to_str().unwrap(),
            path.to_str().unwrap(),
        ]);
        assert_eq!(
            resumed, uninterrupted,
            "jobs {jobs}: resume must reproduce the uninterrupted report"
        );
        // The resumed run completes the checkpoint again.
        let after = Checkpoint::load(&ck).expect("checkpoint rewritten");
        assert!(after.phase("consistency").is_some(), "jobs {jobs}");
    }

    let _ = fs::remove_file(path);
    let _ = fs::remove_file(ck);
}

#[test]
fn batch_supervises_a_directory_of_specs() {
    let dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("adt_supervision_{}_batch", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("temp dir is writable");
        d
    };
    fs::write(dir.join("queue.adt"), sources::QUEUE).expect("spec is writable");
    fs::write(
        dir.join("loop.adt"),
        "type L\nops\n  C: -> L ctor\n  F: L -> L\nvars\n  x: L\naxioms\n  [1] F(x) = F(x)\nend\n",
    )
    .expect("spec is writable");

    let out = cli(&["batch", "--fuel", "100", "--deadline", "10s", dir.to_str().unwrap()]);
    assert_eq!(out.code, 0, "{}", out.output);
    assert!(out.output.contains("queue.adt: PASSED"), "{}", out.output);
    assert!(out.output.contains("loop.adt: UNDETERMINED"), "{}", out.output);
    assert!(
        out.output
            .contains("batch: 2 spec(s) — 1 passed, 0 failed, 1 undetermined, 0 quarantined"),
        "{}",
        out.output
    );
    let _ = fs::remove_dir_all(dir);
}
