//! The §5 "multiple return values" workaround, exercised: DIVMOD returns
//! a Pair whose components observers project out. Also a stress test of
//! the rewrite engine on genuinely recursive arithmetic (repeated
//! subtraction, nested recursion in TIMES), and more induction fodder.

use adt_core::{Spec, Term};
use adt_rewrite::Rewriter;
use adt_structures::sources;
use adt_verify::{prove_by_induction, InductionOutcome};

fn spec() -> Spec {
    sources::load("arithmetic").unwrap()
}

fn nat(spec: &Spec, n: u64) -> Term {
    let zero = spec.sig().find_op("ZERO").unwrap();
    let succ = spec.sig().find_op("SUCC").unwrap();
    let mut t = Term::constant(zero);
    for _ in 0..n {
        t = Term::App(succ, vec![t]);
    }
    t
}

fn un_nat(spec: &Spec, t: &Term) -> Option<u64> {
    let zero = spec.sig().find_op("ZERO").unwrap();
    let succ = spec.sig().find_op("SUCC").unwrap();
    let mut n = 0;
    let mut cur = t;
    loop {
        match cur {
            Term::App(op, args) if *op == succ => {
                n += 1;
                cur = &args[0];
            }
            Term::App(op, _) if *op == zero => return Some(n),
            _ => return None,
        }
    }
}

#[test]
fn the_spec_checks_out() {
    let spec = spec();
    let report = adt_check::check_completeness(&spec);
    assert!(report.is_sufficiently_complete(), "{}", report.prompts());
    assert!(adt_check::check_consistency(&spec).is_consistent());
    assert!(adt_check::overlap_warnings(&spec).is_empty());
}

#[test]
fn division_with_remainder_computes() {
    let spec = spec();
    let rw = Rewriter::new(&spec).with_fuel(10_000_000);
    let sig = spec.sig();
    for (n, m) in [(17u64, 5u64), (12, 4), (3, 7), (0, 3), (25, 1)] {
        let dm = sig
            .apply("DIVMOD", vec![nat(&spec, n), nat(&spec, m)])
            .unwrap();
        let quot = rw
            .normalize(&sig.apply("QUOT", vec![dm.clone()]).unwrap())
            .unwrap();
        let rem = rw.normalize(&sig.apply("REM", vec![dm]).unwrap()).unwrap();
        assert_eq!(un_nat(&spec, &quot), Some(n / m), "quotient of {n}/{m}");
        assert_eq!(un_nat(&spec, &rem), Some(n % m), "remainder of {n}/{m}");
    }
}

#[test]
fn division_by_zero_is_error() {
    let spec = spec();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    let pair_sort = sig.find_sort("Pair").unwrap();
    let nat_sort = sig.find_sort("Nat").unwrap();
    let dm = sig
        .apply("DIVMOD", vec![nat(&spec, 9), nat(&spec, 0)])
        .unwrap();
    assert_eq!(rw.normalize(&dm).unwrap(), Term::Error(pair_sort));
    // Error propagates through the projections.
    let quot = sig.apply("QUOT", vec![dm]).unwrap();
    assert_eq!(rw.normalize(&quot).unwrap(), Term::Error(nat_sort));
}

#[test]
fn multiplication_and_subtraction_compute() {
    let spec = spec();
    let rw = Rewriter::new(&spec).with_fuel(10_000_000);
    let sig = spec.sig();
    for (a, b) in [(0u64, 5u64), (3, 4), (7, 7), (9, 2)] {
        let prod = rw
            .normalize(
                &sig.apply("TIMES", vec![nat(&spec, a), nat(&spec, b)])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(un_nat(&spec, &prod), Some(a * b));
        let diff = rw
            .normalize(
                &sig.apply("SUB", vec![nat(&spec, a), nat(&spec, b)])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(un_nat(&spec, &diff), Some(a.saturating_sub(b)));
    }
}

#[test]
fn division_identity_holds_on_ground_instances() {
    // n = q*m + r with r < m — the defining property of DIVMOD, checked
    // by computing both sides for a grid of inputs.
    let spec = spec();
    let rw = Rewriter::new(&spec).with_fuel(50_000_000);
    let sig = spec.sig();
    for n in 0..12u64 {
        for m in 1..5u64 {
            let dm = sig
                .apply("DIVMOD", vec![nat(&spec, n), nat(&spec, m)])
                .unwrap();
            let recomposed = sig
                .apply(
                    "PLUS",
                    vec![
                        sig.apply(
                            "TIMES",
                            vec![sig.apply("QUOT", vec![dm.clone()]).unwrap(), nat(&spec, m)],
                        )
                        .unwrap(),
                        sig.apply("REM", vec![dm.clone()]).unwrap(),
                    ],
                )
                .unwrap();
            let lhs = rw.normalize(&recomposed).unwrap();
            assert_eq!(un_nat(&spec, &lhs), Some(n), "{n} divmod {m}");
            // And the remainder is in range.
            let in_range = sig
                .apply(
                    "LT?",
                    vec![sig.apply("REM", vec![dm]).unwrap(), nat(&spec, m)],
                )
                .unwrap();
            assert_eq!(rw.normalize(&in_range).unwrap(), sig.tt());
        }
    }
}

#[test]
fn sub_n_n_is_zero_by_induction() {
    let spec = spec();
    let n = spec.sig().find_var("n").unwrap();
    let lhs = spec
        .sig()
        .apply("SUB", vec![Term::Var(n), Term::Var(n)])
        .unwrap();
    let zero = nat(&spec, 0);
    let outcome = prove_by_induction(&spec, &lhs, &zero, n, 4).unwrap();
    assert!(
        matches!(outcome, InductionOutcome::Proved { .. }),
        "{outcome:?}"
    );
}

#[test]
fn lt_is_irreflexive_by_induction() {
    let spec = spec();
    let n = spec.sig().find_var("n").unwrap();
    let lhs = spec
        .sig()
        .apply("LT?", vec![Term::Var(n), Term::Var(n)])
        .unwrap();
    let outcome = prove_by_induction(&spec, &lhs, &spec.sig().ff(), n, 4).unwrap();
    assert!(
        matches!(outcome, InductionOutcome::Proved { .. }),
        "{outcome:?}"
    );
}
