//! EX-8: the bounded-queue ring buffer and the non-injective abstraction
//! function (§4).
//!
//! "It is clear that these two representations though not identical,
//! refer to the same abstract value. That is to say, the mapping from
//! values to representations, Φ⁻¹, may be one-to-many."

use adt_rewrite::Rewriter;
use adt_structures::models::{ring_model, ring_phi};
use adt_structures::specs::queue_spec;
use adt_structures::RingQueue;
use adt_verify::{eval_ground, MValue, Model};

/// The paper's two program segments, as ring-buffer values.
fn paper_segments() -> (RingQueue<String>, RingQueue<String>) {
    let mut one = RingQueue::new(3);
    one.add("A".to_owned()).unwrap();
    one.add("B".to_owned()).unwrap();
    one.add("C".to_owned()).unwrap();
    one.remove().unwrap();
    one.add("D".to_owned()).unwrap();

    let mut two = RingQueue::new(3);
    two.add("B".to_owned()).unwrap();
    two.add("C".to_owned()).unwrap();
    two.add("D".to_owned()).unwrap();

    (one, two)
}

#[test]
fn different_representations_same_abstract_value() {
    let (one, two) = paper_segments();
    assert_ne!(one.raw_slots(), two.raw_slots());
    assert_ne!(one.top_pointer(), two.top_pointer());
    assert_eq!(one.abstract_value(), two.abstract_value());
}

#[test]
fn phi_maps_both_programs_to_one_normal_form() {
    // Run the same two programs through the verification model and check
    // Φ sends both values to the same abstract term.
    let spec = queue_spec();
    let model = ring_model(&spec, 3);
    let phi = ring_phi(&spec);
    let sig = spec.sig();

    let run = |script: &[(&str, Option<&str>)]| -> MValue {
        let mut x = model.apply(sig.find_op("NEW").unwrap(), &[]);
        for (op, item) in script {
            let op_id = sig.find_op(op).unwrap();
            x = match item {
                Some(i) => model.apply(op_id, &[x, MValue::Str((*i).to_owned())]),
                None => model.apply(op_id, &[x]),
            };
        }
        x
    };
    // The paper uses A–D; our spec's Item has three constants, so the
    // same shape is driven with A, B, C (add three, remove one, add one).
    let v1 = run(&[
        ("ADD", Some("A")),
        ("ADD", Some("B")),
        ("ADD", Some("C")),
        ("REMOVE", None),
        ("ADD", Some("A")),
    ]);
    let v2 = run(&[("ADD", Some("B")), ("ADD", Some("C")), ("ADD", Some("A"))]);

    let t1 = phi(&v1);
    let t2 = phi(&v2);
    assert_eq!(t1, t2, "Φ must identify the two representations");

    // And that common image is exactly the ADD chain ⟨B, C, A⟩.
    let rw = Rewriter::new(&spec);
    let expected = sig
        .apply(
            "ADD",
            vec![
                sig.apply(
                    "ADD",
                    vec![
                        sig.apply(
                            "ADD",
                            vec![
                                sig.apply("NEW", vec![]).unwrap(),
                                sig.apply("B", vec![]).unwrap(),
                            ],
                        )
                        .unwrap(),
                        sig.apply("C", vec![]).unwrap(),
                    ],
                )
                .unwrap(),
                sig.apply("A", vec![]).unwrap(),
            ],
        )
        .unwrap();
    assert_eq!(rw.normalize(&t1).unwrap(), expected);
}

#[test]
fn observers_cannot_distinguish_phi_equal_values() {
    // The abstract type's operations see only the Φ-image: FRONT,
    // IS_EMPTY? and REMOVE agree on the two representations.
    let spec = queue_spec();
    let model = ring_model(&spec, 3);
    let (one, two) = paper_segments();
    let v1 = MValue::data(one);
    let v2 = MValue::data(two);

    let front = spec.sig().find_op("FRONT").unwrap();
    let is_empty = spec.sig().find_op("IS_EMPTY?").unwrap();
    let remove = spec.sig().find_op("REMOVE").unwrap();
    let queue_sort = spec.sig().find_sort("Queue").unwrap();

    assert_eq!(
        model.apply(front, std::slice::from_ref(&v1)).as_str(),
        model.apply(front, std::slice::from_ref(&v2)).as_str()
    );
    assert_eq!(
        model.apply(is_empty, std::slice::from_ref(&v1)).as_bool(),
        model.apply(is_empty, std::slice::from_ref(&v2)).as_bool()
    );
    let r1 = model.apply(remove, &[v1]);
    let r2 = model.apply(remove, &[v2]);
    assert!(model.values_equal(queue_sort, &r1, &r2));
}

#[test]
fn the_spec_itself_identifies_the_two_programs() {
    // At the purely algebraic level the two programs are *literally* the
    // same normal form — the representation difference only exists below
    // the abstraction boundary.
    let spec = queue_spec();
    let sig = spec.sig();
    let rw = Rewriter::new(&spec);
    let seg1 = sig
        .apply(
            "ADD",
            vec![
                sig.apply(
                    "REMOVE",
                    vec![sig
                        .apply(
                            "ADD",
                            vec![
                                sig.apply(
                                    "ADD",
                                    vec![
                                        sig.apply(
                                            "ADD",
                                            vec![
                                                sig.apply("NEW", vec![]).unwrap(),
                                                sig.apply("A", vec![]).unwrap(),
                                            ],
                                        )
                                        .unwrap(),
                                        sig.apply("B", vec![]).unwrap(),
                                    ],
                                )
                                .unwrap(),
                                sig.apply("C", vec![]).unwrap(),
                            ],
                        )
                        .unwrap()],
                )
                .unwrap(),
                sig.apply("A", vec![]).unwrap(),
            ],
        )
        .unwrap();
    let seg2 = sig
        .apply(
            "ADD",
            vec![
                sig.apply(
                    "ADD",
                    vec![
                        sig.apply(
                            "ADD",
                            vec![
                                sig.apply("NEW", vec![]).unwrap(),
                                sig.apply("B", vec![]).unwrap(),
                            ],
                        )
                        .unwrap(),
                        sig.apply("C", vec![]).unwrap(),
                    ],
                )
                .unwrap(),
                sig.apply("A", vec![]).unwrap(),
            ],
        )
        .unwrap();
    assert_ne!(seg1, seg2); // different programs…
    assert_eq!(rw.normalize(&seg1).unwrap(), rw.normalize(&seg2).unwrap());
}

#[test]
fn eval_ground_agrees_with_direct_driving() {
    // Drive the ring model through the generic term evaluator and check
    // it matches hand-driving the RingQueue.
    let spec = queue_spec();
    let model = ring_model(&spec, 3);
    let sig = spec.sig();
    let term = sig
        .apply(
            "FRONT",
            vec![sig
                .apply(
                    "REMOVE",
                    vec![sig
                        .apply(
                            "ADD",
                            vec![
                                sig.apply(
                                    "ADD",
                                    vec![
                                        sig.apply("NEW", vec![]).unwrap(),
                                        sig.apply("A", vec![]).unwrap(),
                                    ],
                                )
                                .unwrap(),
                                sig.apply("B", vec![]).unwrap(),
                            ],
                        )
                        .unwrap()],
                )
                .unwrap()],
        )
        .unwrap();
    assert_eq!(eval_ground(&model, &term).as_str(), Some("B"));
}
