//! Executable companion to `docs/TUTORIAL.md`: every step of the Bag
//! walkthrough, run for real so the tutorial cannot rot.

use std::collections::HashMap;

use adt_check::{check_completeness, check_consistency};
use adt_rewrite::SymbolicSession;
use adt_verify::{check_axioms, AxiomCheckConfig, MValue, ModelBuilder};

const BAG_SPEC: &str = r#"
type Bag
param Elem

ops
  EMPTYBAG: -> Bag ctor
  PUT:      Bag, Elem -> Bag ctor
  COUNT:    Bag, Elem -> Nat
  TAKE:     Bag, Elem -> Bag
  SAME?:    Elem, Elem -> Bool
  E1: -> Elem ctor
  E2: -> Elem ctor

vars
  b: Bag
  e, e1: Elem

axioms
  [same_00] SAME?(E1, E1) = true
  [same_01] SAME?(E1, E2) = false
  [same_10] SAME?(E2, E1) = false
  [same_11] SAME?(E2, E2) = true
  [c1] COUNT(EMPTYBAG, e) = ZERO
  [c2] COUNT(PUT(b, e), e1) =
         if SAME?(e, e1) then SUCC(COUNT(b, e1)) else COUNT(b, e1)
  [t1] TAKE(EMPTYBAG, e) = EMPTYBAG
  [t2] TAKE(PUT(b, e), e1) =
         if SAME?(e, e1) then b else PUT(TAKE(b, e1), e)
end

type Nat
ops
  ZERO: -> Nat ctor
  SUCC: Nat -> Nat ctor
end
"#;

#[test]
fn step_1_and_2_specify_and_check() {
    let spec = adt_dsl::parse(BAG_SPEC).unwrap();
    assert_eq!(spec.name(), "Bag");
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    assert!(check_consistency(&spec).is_consistent());
}

#[test]
fn dropping_c2_prompts_as_the_tutorial_says() {
    let without_c2: String = BAG_SPEC
        .lines()
        .filter(|l| !l.contains("[c2]") && !l.contains("if SAME?(e, e1) then SUCC"))
        .collect::<Vec<_>>()
        .join("\n");
    let spec = adt_dsl::parse(&without_c2).unwrap();
    let report = check_completeness(&spec);
    assert!(!report.is_sufficiently_complete());
    assert!(
        report
            .prompts()
            .contains("COUNT(PUT(bag_1, elem_1), elem_2) = ?"),
        "{}",
        report.prompts()
    );
}

#[test]
fn the_rewrap_bug_is_caught_by_consistency() {
    // The tutorial's warning: writing PUT(b, e) instead of
    // PUT(TAKE(b, e1), e) in t2's else-branch is a real bug. It makes
    // TAKE drop nothing in the else case, contradicting … nothing
    // equational directly, but the *value-level* check against a correct
    // implementation catches it immediately.
    let buggy = BAG_SPEC.replace("PUT(TAKE(b, e1), e)", "PUT(b, e)");
    let spec = adt_dsl::parse(&buggy).unwrap();
    // The buggy spec is still complete and consistent as an axiom set —
    // it just specifies a *different* (wrong) TAKE…
    assert!(check_completeness(&spec).is_sufficiently_complete());
    // …which the correct multiset implementation then fails:
    let model = bag_model(&spec);
    let report = check_axioms(&model, &AxiomCheckConfig::default());
    assert!(!report.passed());
    assert!(report.counterexamples.iter().all(|c| c.axiom == "t2"));
}

#[test]
fn step_3_symbolic_execution() {
    let spec = adt_dsl::parse(BAG_SPEC).unwrap();
    let sig = spec.sig();
    let mut session = SymbolicSession::new(&spec);
    session.assign("x", "EMPTYBAG", []).unwrap();
    let e1 = sig.apply("E1", vec![]).unwrap();
    let e2 = sig.apply("E2", vec![]).unwrap();
    session
        .assign("x", "PUT", ["x".into(), e1.clone().into()])
        .unwrap();
    session.assign("x", "PUT", ["x".into(), e2.into()]).unwrap();
    session
        .assign("x", "PUT", ["x".into(), e1.clone().into()])
        .unwrap();

    let two = sig
        .apply(
            "SUCC",
            vec![sig
                .apply("SUCC", vec![sig.apply("ZERO", vec![]).unwrap()])
                .unwrap()],
        )
        .unwrap();
    let count = session
        .call("COUNT", ["x".into(), e1.clone().into()])
        .unwrap();
    assert_eq!(count, two);

    session
        .assign("x", "TAKE", ["x".into(), e1.clone().into()])
        .unwrap();
    let one = sig
        .apply("SUCC", vec![sig.apply("ZERO", vec![]).unwrap()])
        .unwrap();
    let count = session.call("COUNT", ["x".into(), e1.into()]).unwrap();
    assert_eq!(count, one);
}

/// Steps 4 and 5: the multiset-of-counts implementation and its model.
fn bag_model(spec: &adt_core::Spec) -> adt_verify::TableModel<'_> {
    type Counts = HashMap<String, i64>;
    let counts = |v: &MValue| -> Counts { v.downcast::<Counts>().unwrap().clone() };
    ModelBuilder::new(spec)
        .op("EMPTYBAG", |_| MValue::data(Counts::new()))
        .op("PUT", move |args| {
            let mut c = counts(&args[0]);
            *c.entry(args[1].as_str().unwrap().to_owned()).or_insert(0) += 1;
            MValue::data(c)
        })
        .op("COUNT", move |args| {
            MValue::Int(
                *counts(&args[0])
                    .get(args[1].as_str().unwrap())
                    .unwrap_or(&0),
            )
        })
        .op("TAKE", move |args| {
            let mut c = counts(&args[0]);
            if let Some(n) = c.get_mut(args[1].as_str().unwrap()) {
                *n -= 1;
                if *n == 0 {
                    c.remove(args[1].as_str().unwrap());
                }
            }
            MValue::data(c)
        })
        .op("SAME?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .op("ZERO", |_| MValue::Int(0))
        .op("SUCC", |args| MValue::Int(args[0].as_int().unwrap() + 1))
        .op("E1", |_| MValue::Str("E1".into()))
        .op("E2", |_| MValue::Str("E2".into()))
        .eq("Bag", move |a, b| {
            a.downcast::<Counts>() == b.downcast::<Counts>()
        })
        .build()
        .unwrap()
}

#[test]
fn step_5_the_implementation_satisfies_the_axioms() {
    let spec = adt_dsl::parse(BAG_SPEC).unwrap();
    let model = bag_model(&spec);
    let report = check_axioms(&model, &AxiomCheckConfig::default());
    assert!(report.passed(), "{}", report.summary());
    assert!(report.instances_checked > 500);
}
