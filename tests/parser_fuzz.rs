//! Robustness fuzzing: the specification-language front end must never
//! panic, whatever bytes it is fed — it either parses or returns
//! diagnostics. (Guarantees the `adt` CLI cannot be crashed by a bad
//! file.)

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode strings never panic the full pipeline.
    #[test]
    fn parse_never_panics_on_arbitrary_input(s in "\\PC*") {
        let _ = adt_dsl::parse(&s);
    }

    /// Arbitrary "almost-spec" soup (keywords, brackets, names shuffled
    /// together) never panics and, when it parses, yields a valid spec.
    #[test]
    fn parse_never_panics_on_spec_shaped_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("type".to_owned()),
                Just("ops".to_owned()),
                Just("vars".to_owned()),
                Just("axioms".to_owned()),
                Just("end".to_owned()),
                Just("param".to_owned()),
                Just("ctor".to_owned()),
                Just("if".to_owned()),
                Just("then".to_owned()),
                Just("else".to_owned()),
                Just("error".to_owned()),
                Just("->".to_owned()),
                Just(":".to_owned()),
                Just(",".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just("=".to_owned()),
                "[A-Z][A-Z0-9_]{0,5}\\??",
                "[a-z][a-z0-9_]{0,4}",
            ],
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        if let Ok(spec) = adt_dsl::parse(&source) {
            // Anything that parses must be internally valid.
            spec.validate().expect("parsed specs are valid");
        }
    }

    /// Arbitrary term soup never panics the term parser.
    #[test]
    fn parse_term_never_panics(s in "\\PC*") {
        let spec = adt_structures::specs::queue_spec();
        let _ = adt_dsl::parse_term(&spec, &s);
    }
}

#[test]
fn pathologically_deep_nesting_is_rejected_not_crashed() {
    // 100k nested conditionals would blow the thread stack in a naive
    // recursive-descent parser; the depth guard reports an error instead.
    let spec = adt_structures::specs::queue_spec();
    let mut deep = String::new();
    for _ in 0..100_000 {
        deep.push_str("if true then ");
    }
    deep.push_str("NEW");
    for _ in 0..100_000 {
        deep.push_str(" else NEW");
    }
    let err = adt_dsl::parse_term(&spec, &deep).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"), "{err}");

    // And deep *application* nesting likewise.
    let mut deep_app = "REMOVE(".repeat(100_000);
    deep_app.push_str("NEW");
    deep_app.push_str(&")".repeat(100_000));
    let err = adt_dsl::parse_term(&spec, &deep_app).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"), "{err}");
}
