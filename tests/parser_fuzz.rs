//! Robustness fuzzing: the specification-language front end must never
//! panic, whatever bytes it is fed — it either parses or returns
//! diagnostics. (Guarantees the `adt` CLI cannot be crashed by a bad
//! file.)
//!
//! Deterministic fuzzing: inputs are drawn from a seeded [`DetRng`], so
//! every run exercises the same cases and a failure is reproducible from
//! its case index alone.

use adt_core::DetRng;

/// Draws a pseudo-random unicode string: a mix of ASCII soup, multi-byte
/// code points, and structural characters the lexer cares about.
fn arbitrary_string(rng: &mut DetRng) -> String {
    let len = rng.below(120);
    let mut s = String::with_capacity(len * 2);
    for _ in 0..len {
        let c = match rng.below(8) {
            // Printable ASCII.
            0..=3 => char::from(32 + rng.below(95) as u8),
            // Characters the grammar assigns meaning to.
            4 => *[
                '(', ')', '[', ']', ',', ':', '=', '-', '>', '?', '_', '\n', '\t',
            ]
            .get(rng.below(13))
            .unwrap(),
            // Arbitrary scalar values (skipping the surrogate gap).
            _ => {
                let raw = rng.below(0x11_0000) as u32;
                char::from_u32(raw).unwrap_or('\u{FFFD}')
            }
        };
        s.push(c);
    }
    s
}

/// Arbitrary unicode strings never panic the full pipeline.
#[test]
fn parse_never_panics_on_arbitrary_input() {
    let mut rng = DetRng::new(0xF022_51ED);
    for _ in 0..256 {
        let s = arbitrary_string(&mut rng);
        let _ = adt_dsl::parse(&s);
    }
}

/// Arbitrary "almost-spec" soup (keywords, brackets, names shuffled
/// together) never panics and, when it parses, yields a valid spec.
#[test]
fn parse_never_panics_on_spec_shaped_soup() {
    const FIXED: &[&str] = &[
        "type", "ops", "vars", "axioms", "end", "param", "ctor", "if", "then", "else", "error",
        "->", ":", ",", "(", ")", "[", "]", "=",
    ];
    let mut rng = DetRng::new(0x5EC5_0123);
    for _ in 0..256 {
        let count = rng.below(60);
        let mut tokens = Vec::with_capacity(count);
        for _ in 0..count {
            let roll = rng.below(FIXED.len() + 2);
            if roll < FIXED.len() {
                tokens.push(FIXED[roll].to_owned());
            } else if roll == FIXED.len() {
                // Upper-case operation-shaped name, optionally `?`-suffixed.
                let len = 1 + rng.below(6);
                let mut name = String::new();
                for i in 0..len {
                    let c = if i == 0 {
                        char::from(b'A' + rng.below(26) as u8)
                    } else {
                        match rng.below(3) {
                            0 => char::from(b'A' + rng.below(26) as u8),
                            1 => char::from(b'0' + rng.below(10) as u8),
                            _ => '_',
                        }
                    };
                    name.push(c);
                }
                if rng.flip() {
                    name.push('?');
                }
                tokens.push(name);
            } else {
                // Lower-case variable-shaped name.
                let len = 1 + rng.below(5);
                let mut name = String::new();
                for i in 0..len {
                    let c = if i == 0 {
                        char::from(b'a' + rng.below(26) as u8)
                    } else {
                        match rng.below(3) {
                            0 => char::from(b'a' + rng.below(26) as u8),
                            1 => char::from(b'0' + rng.below(10) as u8),
                            _ => '_',
                        }
                    };
                    name.push(c);
                }
                tokens.push(name);
            }
        }
        let source = tokens.join(" ");
        if let Ok(spec) = adt_dsl::parse(&source) {
            // Anything that parses must be internally valid.
            spec.validate().expect("parsed specs are valid");
        }
    }
}

/// Arbitrary term soup never panics the term parser.
#[test]
fn parse_term_never_panics() {
    let spec = adt_structures::specs::queue_spec();
    let mut rng = DetRng::new(0x7E2A_0456);
    for _ in 0..256 {
        let s = arbitrary_string(&mut rng);
        let _ = adt_dsl::parse_term(&spec, &s);
    }
}

#[test]
fn pathologically_deep_nesting_is_rejected_not_crashed() {
    // 100k nested conditionals would blow the thread stack in a naive
    // recursive-descent parser; the depth guard reports an error instead.
    let spec = adt_structures::specs::queue_spec();
    let mut deep = String::new();
    for _ in 0..100_000 {
        deep.push_str("if true then ");
    }
    deep.push_str("NEW");
    for _ in 0..100_000 {
        deep.push_str(" else NEW");
    }
    let err = adt_dsl::parse_term(&spec, &deep).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"), "{err}");

    // And deep *application* nesting likewise.
    let mut deep_app = "REMOVE(".repeat(100_000);
    deep_app.push_str("NEW");
    deep_app.push_str(&")".repeat(100_000));
    let err = adt_dsl::parse_term(&spec, &deep_app).unwrap_err();
    assert!(err.to_string().contains("nesting exceeds"), "{err}");
}
