//! EX-10: the Knowlist evolution (§4, end) — changing the language
//! changes exactly the ENTERBLOCK-touching axioms, the layered Knowlist
//! specification checks out, and the new visibility behaviour is
//! derivable and implemented.

use adt_check::{check_completeness, check_consistency};
use adt_core::Term;
use adt_rewrite::Rewriter;
use adt_structures::specs::{axiom_diff, symboltable_kl_spec, symboltable_spec};
use adt_structures::{sources, AttrList, Ident, KnowList, SymbolTableKl};

#[test]
fn the_change_is_localized_to_enterblock_axioms() {
    let before = symboltable_spec();
    let after = symboltable_kl_spec();
    let diff = axiom_diff(&before, &after);
    // "all relations, and only those relations, that explicitly deal with
    // the ENTERBLOCK operation would have to be altered" — 2, 5 and 8.
    assert_eq!(diff.changed_labels(), vec!["2", "5", "8"]);
    assert!(diff.only_in_first.is_empty());
    // The additions are the new layer: the Knowlist type's axioms.
    let added: Vec<&str> = diff
        .only_in_second
        .iter()
        .map(|(l, _)| l.as_str())
        .collect();
    assert_eq!(added, vec!["k1", "k2"]);
    // Axioms 1, 3, 4, 6, 7, 9 and the ISSAME? table survive verbatim.
    assert_eq!(diff.unchanged.len(), 6 + 9);
}

#[test]
fn layered_specification_checks_out() {
    let spec = symboltable_kl_spec();
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    assert!(check_consistency(&spec).is_consistent());
}

#[test]
fn undefined_is_in_would_be_caught() {
    // The paper: "the above relations are not well defined. The undefined
    // symbol IS_IN? … appears in the third axiom." Without the Knowlist
    // layer, lowering must reject the file.
    let source = r#"
type Symboltable
param Identifier
ops
  INIT: -> Symboltable ctor
  ENTERBLOCK: Symboltable, Knowlist -> Symboltable ctor
  RETRIEVE: Symboltable, Identifier -> Identifier
vars
  symtab: Symboltable
  klist: Knowlist
  id: Identifier
axioms
  [8] RETRIEVE(ENTERBLOCK(symtab, klist), id) =
        if IS_IN?(klist, id) then RETRIEVE(symtab, id) else error
end
"#;
    let err = adt_dsl::parse(source).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Knowlist"), "{msg}");
}

#[test]
fn knows_list_visibility_is_derivable_from_the_axioms() {
    let spec = symboltable_kl_spec();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    let apply = |op: &str, args: Vec<Term>| sig.apply(op, args).unwrap();
    let x = apply("ID_X", vec![]);
    let y = apply("ID_Y", vec![]);
    let a1 = apply("ATTR_1", vec![]);
    let a2 = apply("ATTR_2", vec![]);
    // Outer block: x ↦ a1, y ↦ a2. Inner block knows only x.
    let outer = apply(
        "ADD",
        vec![
            apply("ADD", vec![apply("INIT", vec![]), x.clone(), a1.clone()]),
            y.clone(),
            a2,
        ],
    );
    let knows_x = apply("APPEND", vec![apply("CREATE", vec![]), x.clone()]);
    let inner = apply("ENTERBLOCK", vec![outer, knows_x]);

    let got_x = rw
        .normalize(&apply("RETRIEVE", vec![inner.clone(), x]))
        .unwrap();
    assert_eq!(got_x, apply("ATTR_1", vec![]));
    let attrs_sort = sig.find_sort("AttributeList").unwrap();
    let got_y = rw.normalize(&apply("RETRIEVE", vec![inner, y])).unwrap();
    assert_eq!(got_y, Term::Error(attrs_sort));
}

#[test]
fn the_rust_implementation_matches_the_derived_behaviour() {
    // Same scenario as above, against SymbolTableKl.
    let mut st: SymbolTableKl = SymbolTableKl::init();
    st.add(Ident::new("x"), AttrList::new().with("a", "1"));
    st.add(Ident::new("y"), AttrList::new().with("a", "2"));
    st.enter_block(KnowList::create().append(Ident::new("x")));
    assert!(st.retrieve(&Ident::new("x")).is_ok());
    assert!(st.retrieve(&Ident::new("y")).is_err());
}

#[test]
fn shipped_kl_sources_agree_with_the_builders() {
    let kl = sources::load("knowlist").unwrap();
    assert!(adt_dsl::semantically_equal(
        &kl,
        &adt_structures::specs::knowlist_spec()
    ));
    let st_kl = sources::load("symboltable_kl").unwrap();
    assert!(adt_dsl::semantically_equal(&st_kl, &symboltable_kl_spec()));
}
