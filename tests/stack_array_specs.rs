//! EX-4 and EX-5: the Stack (axioms 10–16) and Array (axioms 17–20)
//! specifications, driven from their `.adt` source files.

use adt_check::{check_completeness, check_consistency};
use adt_core::{Spec, Term};
use adt_rewrite::Rewriter;
use adt_structures::sources;

fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
    spec.sig().apply(op, args).unwrap()
}

#[test]
fn stack_source_file_checks_out() {
    let spec = sources::load("stack").unwrap();
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    assert!(check_consistency(&spec).is_consistent());
    assert_eq!(spec.axioms().len(), 7); // 10–16
}

#[test]
fn array_source_file_checks_out() {
    let spec = sources::load("array").unwrap();
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    assert!(check_consistency(&spec).is_consistent());
}

#[test]
fn replace_is_derivable_not_primitive() {
    // Axiom 16 defines REPLACE in terms of PUSH and POP — a derived
    // operation. Schematically: REPLACE(PUSH(stk, e), e1) = PUSH(stk, e1).
    let spec = sources::load("stack").unwrap();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    let stk = Term::Var(sig.find_var("stk").unwrap());
    let e = Term::Var(sig.find_var("e").unwrap());
    let e2 = apply(&spec, "E2", vec![]);
    let lhs = apply(
        &spec,
        "REPLACE",
        vec![apply(&spec, "PUSH", vec![stk.clone(), e]), e2.clone()],
    );
    let rhs = apply(&spec, "PUSH", vec![stk, e2]);
    assert!(rw.prove_equal(&lhs, &rhs, 4).unwrap().is_proved());
}

#[test]
fn array_shadowing_chain_resolves_through_issame() {
    // READ walks the ASSIGN chain comparing identifiers: a three-deep
    // chain with interleaved identifiers reads back correctly, and the
    // derivation uses axiom 20 once per skipped binding.
    let spec = sources::load("array").unwrap();
    let rw = Rewriter::new(&spec);
    let x = apply(&spec, "ID_X", vec![]);
    let y = apply(&spec, "ID_Y", vec![]);
    let z = apply(&spec, "ID_Z", vec![]);
    let a1 = apply(&spec, "ATTR_1", vec![]);
    let a2 = apply(&spec, "ATTR_2", vec![]);
    let a3 = apply(&spec, "ATTR_3", vec![]);
    let arr = apply(
        &spec,
        "ASSIGN",
        vec![
            apply(
                &spec,
                "ASSIGN",
                vec![
                    apply(
                        &spec,
                        "ASSIGN",
                        vec![apply(&spec, "EMPTY", vec![]), x.clone(), a1.clone()],
                    ),
                    y,
                    a2,
                ],
            ),
            z,
            a3,
        ],
    );
    let (nf, trace) = rw
        .normalize_traced(&apply(&spec, "READ", vec![arr, x]))
        .unwrap();
    assert_eq!(nf, a1);
    // Two skips (z, y) then the hit on x: axiom 20 three times, with
    // ISSAME? table lookups in between.
    let reads = trace.axioms_used().iter().filter(|l| **l == "20").count();
    assert_eq!(reads, 3);
}

#[test]
fn stack_of_arrays_composes_across_the_specs() {
    // The representation-level file composes the two types exactly as §4
    // does: a stack whose elements are arrays.
    let spec = sources::load("symboltable_rep").unwrap();
    let rw = Rewriter::new(&spec);
    let x = apply(&spec, "ID_X", vec![]);
    let a1 = apply(&spec, "ATTR_1", vec![]);
    // TOP(PUSH(NEWSTACK, ASSIGN(EMPTY, x, a1))) reads back the array.
    let arr = apply(
        &spec,
        "ASSIGN",
        vec![apply(&spec, "EMPTY", vec![]), x.clone(), a1.clone()],
    );
    let stack = apply(
        &spec,
        "PUSH",
        vec![apply(&spec, "NEWSTACK", vec![]), arr.clone()],
    );
    let top = rw.normalize(&apply(&spec, "TOP", vec![stack])).unwrap();
    assert_eq!(top, arr);
    let read = rw.normalize(&apply(&spec, "READ", vec![top, x])).unwrap();
    assert_eq!(read, a1);
}
