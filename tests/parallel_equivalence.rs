//! Parallel/sequential equivalence: for every specification shipped in
//! `specs/`, the work-pool checkers must produce *byte-identical* reports
//! to the sequential ones at every job count. Parallelism is an
//! implementation detail of the engine; any observable difference is a
//! merge-order bug.

use adt_check::{check_completeness_jobs, check_consistency_jobs, ProbeConfig};
use adt_structures::sources;
use adt_verify::{differential_spec_check, DifferentialConfig};

#[test]
fn completeness_reports_are_identical_across_job_counts() {
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let seq = check_completeness_jobs(&spec, 1);
        for jobs in [2, 4, 8] {
            let par = check_completeness_jobs(&spec, jobs);
            assert_eq!(
                seq.is_sufficiently_complete(),
                par.is_sufficiently_complete(),
                "{name} at {jobs} jobs"
            );
            assert_eq!(seq.coverage(), par.coverage(), "{name} at {jobs} jobs");
            assert_eq!(seq.prompts(), par.prompts(), "{name} at {jobs} jobs");
            assert_eq!(
                seq.missing_case_count(),
                par.missing_case_count(),
                "{name} at {jobs} jobs"
            );
        }
    }
}

#[test]
fn consistency_reports_are_identical_across_job_counts() {
    let probe = ProbeConfig::default();
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let seq = check_consistency_jobs(&spec, &probe, 1);
        for jobs in [2, 4, 8] {
            let par = check_consistency_jobs(&spec, &probe, jobs);
            assert_eq!(seq.is_consistent(), par.is_consistent(), "{name} at {jobs} jobs");
            assert_eq!(
                seq.contradictions(),
                par.contradictions(),
                "{name} at {jobs} jobs"
            );
            assert_eq!(seq.summary(), par.summary(), "{name} at {jobs} jobs");
            assert_eq!(seq.pairs_checked(), par.pairs_checked(), "{name} at {jobs} jobs");
            assert_eq!(seq.probes_run(), par.probes_run(), "{name} at {jobs} jobs");
        }
    }
}

#[test]
fn the_differential_harness_agrees_on_every_shipped_spec() {
    // Same property, driven through the adt-verify harness — the
    // workspace-level exercise of the tentpole oracle.
    let cfg = DifferentialConfig::default();
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let report = differential_spec_check(&spec, &cfg);
        assert!(report.passed(), "{name}:\n{}", report.render());
    }
}

#[test]
fn zero_jobs_means_all_cores_and_still_matches() {
    let spec = sources::load("queue").unwrap();
    let seq = check_completeness_jobs(&spec, 1);
    let auto = check_completeness_jobs(&spec, 0);
    assert_eq!(seq.coverage(), auto.coverage());
    assert_eq!(seq.prompts(), auto.prompts());
}
