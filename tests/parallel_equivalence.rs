//! Parallel/sequential equivalence: for every specification shipped in
//! `specs/`, the work-pool checkers must produce *byte-identical* reports
//! to the sequential ones at every job count. Parallelism is an
//! implementation detail of the engine; any observable difference is a
//! merge-order bug.

use adt_check::{check_completeness_jobs, check_consistency_jobs, ProbeConfig};
use adt_core::{display, Fuel, Session, Term};
use adt_rewrite::Rewriter;
use adt_structures::sources;
use adt_verify::{differential_spec_check, enumerate_terms, DifferentialConfig};

#[test]
fn completeness_reports_are_identical_across_job_counts() {
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let seq = check_completeness_jobs(&spec, 1);
        for jobs in [2, 4, 8] {
            let par = check_completeness_jobs(&spec, jobs);
            assert_eq!(
                seq.is_sufficiently_complete(),
                par.is_sufficiently_complete(),
                "{name} at {jobs} jobs"
            );
            assert_eq!(seq.coverage(), par.coverage(), "{name} at {jobs} jobs");
            assert_eq!(seq.prompts(), par.prompts(), "{name} at {jobs} jobs");
            assert_eq!(
                seq.missing_case_count(),
                par.missing_case_count(),
                "{name} at {jobs} jobs"
            );
        }
    }
}

#[test]
fn consistency_reports_are_identical_across_job_counts() {
    let probe = ProbeConfig::default();
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let seq = check_consistency_jobs(&spec, &probe, 1);
        for jobs in [2, 4, 8] {
            let par = check_consistency_jobs(&spec, &probe, jobs);
            assert_eq!(seq.is_consistent(), par.is_consistent(), "{name} at {jobs} jobs");
            assert_eq!(
                seq.contradictions(),
                par.contradictions(),
                "{name} at {jobs} jobs"
            );
            assert_eq!(seq.summary(), par.summary(), "{name} at {jobs} jobs");
            assert_eq!(seq.pairs_checked(), par.pairs_checked(), "{name} at {jobs} jobs");
            assert_eq!(seq.probes_run(), par.probes_run(), "{name} at {jobs} jobs");
        }
    }
}

#[test]
fn the_differential_harness_agrees_on_every_shipped_spec() {
    // Same property, driven through the adt-verify harness — the
    // workspace-level exercise of the tentpole oracle.
    let cfg = DifferentialConfig::default();
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let report = differential_spec_check(&spec, &cfg);
        assert!(report.passed(), "{name}:\n{}", report.render());
    }
}

/// Renders one normalization outcome as a deterministic verdict string,
/// so engine comparisons are byte-for-byte.
fn verdict(rw: &Rewriter<'_>, result: adt_rewrite::Result<adt_core::Term>) -> String {
    match result {
        Ok(nf) => format!("ok {}", display::term(rw.spec().sig(), &nf)),
        Err(e) => match e.exhaustion() {
            Some(spent) => format!("exhausted after {} steps", spent.steps),
            None => format!("error {e}"),
        },
    }
}

#[test]
fn all_three_engines_agree_on_every_shipped_spec() {
    // The arena-backed hot path, the same engine with the shared memo
    // table enabled, and the pre-arena tree-walking oracle must produce
    // byte-identical verdicts for every ground probe of every shipped
    // specification. The memo table and the interning layer are pure
    // implementation detail; any visible difference is a soundness bug.
    let mut probes_checked = 0usize;
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let plain = Rewriter::new(&spec);
        let memo = Rewriter::new(&spec).memoizing();
        for probe in enumerate_terms(spec.sig(), 2, 6) {
            let fast = verdict(&plain, plain.normalize(&probe));
            let memoized = verdict(&memo, memo.normalize(&probe));
            let oracle = verdict(
                &plain,
                plain.normalize_reference(&probe).map(|n| n.term),
            );
            let shown = display::term(spec.sig(), &probe);
            assert_eq!(fast, oracle, "{name}: plain vs reference on `{shown}`");
            assert_eq!(fast, memoized, "{name}: plain vs memoizing on `{shown}`");
            // Warm-memo runs must also agree with the first one.
            let warm = verdict(&memo, memo.normalize(&probe));
            assert_eq!(memoized, warm, "{name}: cold vs warm memo on `{shown}`");
            probes_checked += 1;
        }
    }
    assert!(probes_checked > 100, "only {probes_checked} probes enumerated");
}

#[test]
fn work_sharing_never_changes_the_normal_form() {
    // The arena engine normalizes each *shared* ground redex once per
    // run (hash-consing gives duplicated subterms one identity), so its
    // step count may undercut the tree-walking oracle's — but never the
    // result. Pin both halves of that contract.
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let rw = Rewriter::new(&spec);
        for probe in enumerate_terms(spec.sig(), 2, 4) {
            let (Ok(fast), Ok(slow)) = (rw.normalize_full(&probe), rw.normalize_reference(&probe))
            else {
                continue;
            };
            let shown = display::term(spec.sig(), &probe);
            assert_eq!(fast.term, slow.term, "{name}: `{shown}`");
            assert!(
                fast.steps <= slow.steps,
                "{name}: `{shown}` took {} arena steps but {} reference steps",
                fast.steps,
                slow.steps
            );
        }
    }
}

#[test]
fn zero_jobs_means_all_cores_and_still_matches() {
    let spec = sources::load("queue").unwrap();
    let seq = check_completeness_jobs(&spec, 1);
    let auto = check_completeness_jobs(&spec, 0);
    assert_eq!(seq.coverage(), auto.coverage());
    assert_eq!(seq.prompts(), auto.prompts());
}

/// The first stuck `if` condition anywhere in a term, if one exists —
/// the test-local analogue of the prover's internal case-split picker,
/// used to manufacture meaningful assumption contexts from shipped
/// specifications.
fn first_ite_cond(term: &Term) -> Option<&Term> {
    match term {
        Term::Var(_) | Term::Error(_) => None,
        Term::Ite(ite) => Some(&ite.cond),
        Term::App(_, args) => args.iter().find_map(first_ite_cond),
    }
}

#[test]
fn traced_runs_reach_the_same_normal_form_on_every_engine() {
    // `normalize_traced` shares the run-local arena hot path with
    // `normalize`; tracing only switches the caches off so every
    // derivation step is re-derived and recorded. The observable
    // contract: the traced normal form equals the untraced one on the
    // plain, memoizing, and session-backed engines — including after
    // the memo has been warmed, when a cache hit could otherwise
    // short-circuit the derivation the trace exists to capture.
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let session = Session::new(spec.clone());
        let plain = Rewriter::new(&spec);
        let memo = Rewriter::new(&spec).memoizing();
        let shared = Rewriter::for_session(&session);
        for probe in enumerate_terms(spec.sig(), 2, 4) {
            let Ok(base) = plain.normalize(&probe) else {
                continue;
            };
            let shown = display::term(spec.sig(), &probe);
            for (engine, rw) in [("plain", &plain), ("memoizing", &memo), ("session", &shared)] {
                let (nf, _) = rw.normalize_traced(&probe).unwrap();
                assert_eq!(nf, base, "{name}: traced {engine} on `{shown}`");
            }
            // Warm the memo, then trace again: the trace path must
            // bypass the warm entries and still land on the same form.
            memo.normalize(&probe).unwrap();
            let (warm, _) = memo.normalize_traced(&probe).unwrap();
            assert_eq!(warm, base, "{name}: traced warm memo on `{shown}`");
        }
    }
}

#[test]
fn assumption_contexts_agree_with_the_reference_engine() {
    // `normalize_under` runs on the arena hot path with assumption-laden
    // subterms excluded from the caches; the tree-walking oracle
    // implements the same contextual semantics with no caches at all.
    // Assumptions are harvested from the shipped specs themselves: the
    // first `if` condition of each conditional axiom right-hand side,
    // asserted both true and false. Symbolic normalization can diverge
    // (arithmetic's DIVMOD unfolds forever on a free variable), so every
    // engine runs under a small depth budget and items the plain engine
    // cannot finish are skipped rather than compared.
    let budget = Fuel::default().with_max_depth(64);
    let mut contexts_checked = 0usize;
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let session = Session::new(spec.clone());
        let plain = Rewriter::new(&spec).with_budget(budget);
        let memo = Rewriter::new(&spec).memoizing().with_budget(budget);
        let shared = Rewriter::for_session(&session).with_budget(budget);
        for ax in spec.axioms() {
            let Some(cond) = first_ite_cond(ax.rhs()).cloned() else {
                continue;
            };
            let shown = display::term(spec.sig(), ax.rhs());
            for value in [true, false] {
                let asms = [(cond.clone(), value)];
                let Ok(base) = plain.normalize_under(ax.rhs(), &asms) else {
                    continue;
                };
                let oracle = plain.normalize_under_reference(ax.rhs(), &asms).unwrap();
                assert_eq!(base, oracle, "{name}: `{shown}` under {value}, plain vs reference");
                let memoized = memo.normalize_under(ax.rhs(), &asms).unwrap();
                assert_eq!(base, memoized, "{name}: `{shown}` under {value}, plain vs memoizing");
                let sessioned = shared.normalize_under(ax.rhs(), &asms).unwrap();
                assert_eq!(base, sessioned, "{name}: `{shown}` under {value}, plain vs session");
                contexts_checked += 1;
            }
        }
    }
    assert!(
        contexts_checked >= 10,
        "only {contexts_checked} assumption contexts exercised"
    );
}

#[test]
fn proofs_are_identical_across_engines() {
    // `prove_equal` drives its whole case-split search through the same
    // hot path; caches may change how much work is repeated but never
    // which `Proof` comes back. Every shipped axiom is provable from
    // itself, so lhs = rhs is a meaningful corpus: most close by
    // rewriting alone, the conditional ones exercise the splitter. The
    // depth budget keeps symbolic divergence (DIVMOD on a free variable)
    // a clean exhaustion instead of a deep recursion.
    let budget = Fuel::default().with_max_depth(64);
    for (name, source) in sources::all() {
        let spec = adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let session = Session::new(spec.clone());
        let plain = Rewriter::new(&spec).with_budget(budget);
        let memo = Rewriter::new(&spec).memoizing().with_budget(budget);
        let shared = Rewriter::for_session(&session).with_budget(budget);
        for (idx, ax) in spec.axioms().iter().enumerate() {
            let Ok(base) = plain.prove_equal(ax.lhs(), ax.rhs(), 4) else {
                continue;
            };
            let memoized = memo.prove_equal(ax.lhs(), ax.rhs(), 4).unwrap();
            assert_eq!(base, memoized, "{name} axiom {idx}: plain vs memoizing");
            let sessioned = shared.prove_equal(ax.lhs(), ax.rhs(), 4).unwrap();
            assert_eq!(base, sessioned, "{name} axiom {idx}: plain vs session");
            // A second run against the now-warm memo must return the
            // same proof object, not a cache-shaped variant of it.
            let warm = memo.prove_equal(ax.lhs(), ax.rhs(), 4).unwrap();
            assert_eq!(base, warm, "{name} axiom {idx}: cold vs warm memo");
        }
    }
}
