//! EX-1: the Queue of §3, end to end — the `.adt` source parses, the
//! specification is sufficiently complete and consistent, FIFO behaviour
//! (including the boundary conditions) is derivable by rewriting, and the
//! paper's program segments run in the symbolic interpreter.

use adt_check::{check_completeness, check_consistency};
use adt_core::Term;
use adt_rewrite::{Rewriter, SymbolicSession};
use adt_structures::sources;

#[test]
fn queue_source_file_checks_out() {
    let spec = sources::load("queue").unwrap();
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    let consistency = check_consistency(&spec);
    assert!(consistency.is_consistent(), "{}", consistency.summary());
    assert_eq!(spec.axioms().len(), 6);
}

#[test]
fn the_derivation_of_front_uses_the_expected_axioms() {
    let spec = sources::load("queue").unwrap();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    // FRONT(ADD(ADD(NEW, A), B)): axiom 4 twice would be wrong — the
    // trace must show 4, then 2 (deciding IS_EMPTY?), then 4 again on the
    // inner queue, then 1.
    let t = sig
        .apply(
            "FRONT",
            vec![sig
                .apply(
                    "ADD",
                    vec![
                        sig.apply(
                            "ADD",
                            vec![
                                sig.apply("NEW", vec![]).unwrap(),
                                sig.apply("A", vec![]).unwrap(),
                            ],
                        )
                        .unwrap(),
                        sig.apply("B", vec![]).unwrap(),
                    ],
                )
                .unwrap()],
        )
        .unwrap();
    let (nf, trace) = rw.normalize_traced(&t).unwrap();
    assert_eq!(nf, sig.apply("A", vec![]).unwrap());
    assert_eq!(trace.axioms_used(), vec!["4", "2", "4", "1"]);
    // The rendered derivation looks like the paper's hand calculations.
    let rendered = trace.render(sig).to_string();
    assert!(rendered.starts_with("FRONT(ADD(ADD(NEW, A), B))"));
}

#[test]
fn queue_and_stack_signatures_are_isomorphic_but_axioms_differ() {
    // §2: "The domain and range specifications for these two types are
    // isomorphic" — only the axioms distinguish Queue from Stack. Check
    // the isomorphism mechanically on arities.
    let queue = sources::load("queue").unwrap();
    let stack = sources::load("stack").unwrap();
    let shape = |spec: &adt_core::Spec, names: [&str; 5]| -> Vec<(usize, bool)> {
        names
            .iter()
            .map(|n| {
                let op = spec.sig().find_op(n).unwrap();
                (
                    spec.sig().op(op).arity(),
                    spec.sig().op(op).is_constructor(),
                )
            })
            .collect()
    };
    let queue_shape = shape(&queue, ["NEW", "ADD", "FRONT", "REMOVE", "IS_EMPTY?"]);
    let stack_shape = shape(&stack, ["NEWSTACK", "PUSH", "TOP", "POP", "IS_NEWSTACK?"]);
    assert_eq!(queue_shape, stack_shape);

    // And the behavioural difference: after inserting A then B, Queue's
    // observer yields A (first in) where Stack's yields B (last in).
    let rwq = Rewriter::new(&queue);
    let a_q = {
        let sig = queue.sig();
        let two = sig
            .apply(
                "ADD",
                vec![
                    sig.apply(
                        "ADD",
                        vec![
                            sig.apply("NEW", vec![]).unwrap(),
                            sig.apply("A", vec![]).unwrap(),
                        ],
                    )
                    .unwrap(),
                    sig.apply("B", vec![]).unwrap(),
                ],
            )
            .unwrap();
        rwq.normalize(&sig.apply("FRONT", vec![two]).unwrap())
            .unwrap()
    };
    assert_eq!(a_q, queue.sig().apply("A", vec![]).unwrap());

    let rws = Rewriter::new(&stack);
    let b_s = {
        let sig = stack.sig();
        let two = sig
            .apply(
                "PUSH",
                vec![
                    sig.apply(
                        "PUSH",
                        vec![
                            sig.apply("NEWSTACK", vec![]).unwrap(),
                            sig.apply("E1", vec![]).unwrap(),
                        ],
                    )
                    .unwrap(),
                    sig.apply("E2", vec![]).unwrap(),
                ],
            )
            .unwrap();
        rws.normalize(&sig.apply("TOP", vec![two]).unwrap())
            .unwrap()
    };
    assert_eq!(b_s, stack.sig().apply("E2", vec![]).unwrap());
}

#[test]
fn symbolic_interpretation_runs_queue_programs() {
    let spec = sources::load("queue").unwrap();
    let mut session = SymbolicSession::new(&spec);
    let a = spec.sig().apply("A", vec![]).unwrap();
    let b = spec.sig().apply("B", vec![]).unwrap();
    let c = spec.sig().apply("C", vec![]).unwrap();

    session.assign("x", "NEW", []).unwrap();
    session.assign("x", "ADD", ["x".into(), a.into()]).unwrap();
    session.assign("x", "ADD", ["x".into(), b.into()]).unwrap();
    session.assign("x", "REMOVE", ["x".into()]).unwrap();
    session.assign("x", "ADD", ["x".into(), c.into()]).unwrap();

    // The queue now holds ⟨B, C⟩.
    let front = session.call("FRONT", ["x".into()]).unwrap();
    assert_eq!(front, spec.sig().apply("B", vec![]).unwrap());
    let is_empty = session.call("IS_EMPTY?", ["x".into()]).unwrap();
    assert_eq!(is_empty, spec.sig().ff());

    // Draining past empty flows into the error value, as the axioms say.
    session.assign("x", "REMOVE", ["x".into()]).unwrap();
    session.assign("x", "REMOVE", ["x".into()]).unwrap();
    session.assign("x", "REMOVE", ["x".into()]).unwrap();
    let queue_sort = spec.sig().find_sort("Queue").unwrap();
    assert_eq!(session.get("x").unwrap(), &Term::Error(queue_sort));
}
