//! EX-3: the Symboltable specification (§4, axioms 1–9), driven from its
//! `.adt` source file — the compiler-facing behaviour of the abstract
//! type, derived purely by rewriting.

use adt_check::{check_completeness, check_consistency};
use adt_core::{Spec, Term};
use adt_rewrite::{Rewriter, SymbolicSession};
use adt_structures::sources;

fn spec() -> Spec {
    sources::load("symboltable").unwrap()
}

fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
    spec.sig().apply(op, args).unwrap()
}

#[test]
fn the_source_file_checks_out() {
    let spec = spec();
    let completeness = check_completeness(&spec);
    assert!(
        completeness.is_sufficiently_complete(),
        "{}",
        completeness.prompts()
    );
    assert!(check_consistency(&spec).is_consistent());
    // 9 paper axioms + the 9-entry ISSAME? table.
    assert_eq!(spec.axioms().len(), 18);
}

#[test]
fn a_compilation_scenario_runs_symbolically() {
    // The compiler front end's life, against the axioms alone:
    // declare x at the top level, open a block, shadow x, check
    // IS_INBLOCK?, leave, and find the outer x intact.
    let spec = spec();
    let mut s = SymbolicSession::new(&spec);
    let sig = spec.sig();
    let x = sig.apply("ID_X", vec![]).unwrap();
    let a1 = sig.apply("ATTR_1", vec![]).unwrap();
    let a2 = sig.apply("ATTR_2", vec![]).unwrap();

    s.assign("st", "INIT", []).unwrap();
    s.assign(
        "st",
        "ADD",
        ["st".into(), x.clone().into(), a1.clone().into()],
    )
    .unwrap();
    s.assign("st", "ENTERBLOCK", ["st".into()]).unwrap();

    // Not yet declared in THIS block (used to avoid duplicate decls).
    let inblock = s
        .call("IS_INBLOCK?", ["st".into(), x.clone().into()])
        .unwrap();
    assert_eq!(inblock, sig.ff());
    // But visible from the enclosing scope.
    let seen = s.call("RETRIEVE", ["st".into(), x.clone().into()]).unwrap();
    assert_eq!(seen, a1);

    // Shadow it, observe, unwind.
    s.assign(
        "st",
        "ADD",
        ["st".into(), x.clone().into(), a2.clone().into()],
    )
    .unwrap();
    let seen = s.call("RETRIEVE", ["st".into(), x.clone().into()]).unwrap();
    assert_eq!(seen, a2);
    s.assign("st", "LEAVEBLOCK", ["st".into()]).unwrap();
    let seen = s.call("RETRIEVE", ["st".into(), x.into()]).unwrap();
    assert_eq!(seen, a1);
}

#[test]
fn schematic_shadowing_is_provable() {
    // RETRIEVE(ADD(symtab, id, attrs), id) = attrs — for ALL tables,
    // identifiers and attributes (the prover splits on ISSAME?(id, id)…
    // which the engine cannot decide without reflexivity, so this is the
    // case-split machinery earning its keep).
    let spec = spec();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    let symtab = Term::Var(sig.find_var("symtab").unwrap());
    let id = Term::Var(sig.find_var("id").unwrap());
    let attrs = Term::Var(sig.find_var("attrs").unwrap());
    let lhs = apply(
        &spec,
        "RETRIEVE",
        vec![
            apply(&spec, "ADD", vec![symtab, id.clone(), attrs.clone()]),
            id,
        ],
    );
    // Note: NOT provable — ISSAME?(id, id) is stuck, and the false branch
    // recurses into the unknown table. The *ground* instances all hold:
    let proof = rw.prove_equal(&lhs, &attrs, 6).unwrap();
    assert!(!proof.is_proved(), "reflexivity is genuinely missing");
    for ident in ["ID_X", "ID_Y", "ID_Z"] {
        let i = apply(&spec, ident, vec![]);
        let a = apply(&spec, "ATTR_3", vec![]);
        let table = apply(&spec, "ENTERBLOCK", vec![apply(&spec, "INIT", vec![])]);
        let t = apply(
            &spec,
            "RETRIEVE",
            vec![apply(&spec, "ADD", vec![table, i.clone(), a.clone()]), i],
        );
        assert_eq!(rw.normalize(&t).unwrap(), a);
    }
}

#[test]
fn axiom_3_discards_whole_scopes_by_rewriting() {
    // LEAVEBLOCK(ADD(ADD(ENTERBLOCK(st), x, a), y, b)) peels both ADDs
    // (axiom 3 twice) and the block (axiom 2): trace shows 3, 3, 2.
    let spec = spec();
    let rw = Rewriter::new(&spec);
    let sig = spec.sig();
    let st = Term::Var(sig.find_var("symtab").unwrap());
    let x = apply(&spec, "ID_X", vec![]);
    let y = apply(&spec, "ID_Y", vec![]);
    let a = apply(&spec, "ATTR_1", vec![]);
    let b = apply(&spec, "ATTR_2", vec![]);
    let t = apply(
        &spec,
        "LEAVEBLOCK",
        vec![apply(
            &spec,
            "ADD",
            vec![
                apply(
                    &spec,
                    "ADD",
                    vec![apply(&spec, "ENTERBLOCK", vec![st.clone()]), x, a],
                ),
                y,
                b,
            ],
        )],
    );
    let (nf, trace) = rw.normalize_traced(&t).unwrap();
    assert_eq!(nf, st);
    assert_eq!(trace.axioms_used(), vec!["3", "3", "2"]);
}
