//! §5: "For verifications of programs that use abstract types, the
//! algebraic specification of the types used provides a set of powerful
//! rules of inference … Thus a technique for factoring the proof is
//! provided."
//!
//! A *client-level* operation — `ROTATE(q)`, moving the front element to
//! the back — is defined on top of the Queue operations only. Its
//! properties are proved from the Queue axioms alone (never looking at an
//! implementation), and then hold automatically for every verified
//! implementation: the factored proof.

use adt_core::{Spec, SpecBuilder, Term};
use adt_rewrite::Rewriter;
use adt_structures::models::fifo_model;
use adt_structures::specs::queue_spec;
use adt_verify::{eval_ground, Model};

/// The Queue spec extended with the client operation
/// `ROTATE(q) = ADD(REMOVE(q), FRONT(q))`.
fn queue_with_rotate() -> Spec {
    let mut b = SpecBuilder::new("QueueClient");
    let queue = b.sort("Queue");
    let item = b.param_sort("Item");
    let new = b.ctor("NEW", [], queue);
    let add = b.ctor("ADD", [queue, item], queue);
    let front = b.op("FRONT", [queue], item);
    let remove = b.op("REMOVE", [queue], queue);
    let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
    for c in ["A", "B", "C"] {
        b.ctor(c, [], item);
    }
    let rotate = b.op("ROTATE", [queue], queue);
    let q = Term::Var(b.var("q", queue));
    let i = Term::Var(b.var("i", item));
    let i1 = Term::Var(b.var("i1", item));
    let tt = b.tt();
    let ff = b.ff();
    b.axiom("1", b.app(is_empty, [b.app(new, [])]), tt);
    b.axiom(
        "2",
        b.app(is_empty, [b.app(add, [q.clone(), i.clone()])]),
        ff,
    );
    b.axiom("3", b.app(front, [b.app(new, [])]), Term::Error(item));
    b.axiom(
        "4",
        b.app(front, [b.app(add, [q.clone(), i.clone()])]),
        Term::ite(
            b.app(is_empty, [q.clone()]),
            i.clone(),
            b.app(front, [q.clone()]),
        ),
    );
    b.axiom("5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
    b.axiom(
        "6",
        b.app(remove, [b.app(add, [q.clone(), i.clone()])]),
        Term::ite(
            b.app(is_empty, [q.clone()]),
            b.app(new, []),
            b.app(add, [b.app(remove, [q.clone()]), i.clone()]),
        ),
    );
    // The client's program, as an equation over the abstract operations.
    b.axiom(
        "rot",
        b.app(rotate, [q.clone()]),
        b.app(add, [b.app(remove, [q.clone()]), b.app(front, [q])]),
    );
    let _ = i1;
    b.build().unwrap()
}

fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
    spec.sig().apply(op, args).unwrap()
}

#[test]
fn rotating_a_two_element_queue_swaps_the_front() {
    // FRONT(ROTATE(ADD(ADD(NEW, i), i1))) = i1, for all items i, i1 —
    // proved symbolically from the axioms, no implementation in sight.
    let spec = queue_with_rotate();
    let rw = Rewriter::new(&spec);
    let i = Term::Var(spec.sig().find_var("i").unwrap());
    let i1 = Term::Var(spec.sig().find_var("i1").unwrap());
    let two = apply(
        &spec,
        "ADD",
        vec![
            apply(&spec, "ADD", vec![apply(&spec, "NEW", vec![]), i.clone()]),
            i1.clone(),
        ],
    );
    let lhs = apply(
        &spec,
        "FRONT",
        vec![apply(&spec, "ROTATE", vec![two.clone()])],
    );
    let proof = rw.prove_equal(&lhs, &i1, 6).unwrap();
    assert!(proof.is_proved(), "{proof:?}");

    // And the rotated queue is ⟨i1, i⟩ exactly.
    let rotated = rw.normalize(&apply(&spec, "ROTATE", vec![two])).unwrap();
    let expected = apply(
        &spec,
        "ADD",
        vec![
            apply(&spec, "ADD", vec![apply(&spec, "NEW", vec![]), i1]),
            i,
        ],
    );
    assert_eq!(rotated, expected);
}

#[test]
fn rotation_of_a_nonempty_queue_is_never_empty() {
    // IS_EMPTY?(ROTATE(ADD(q, i))) = false — a schematic property closed
    // by the boolean case-splitter (the IS_EMPTY?(q) cases).
    let spec = queue_with_rotate();
    let rw = Rewriter::new(&spec);
    let q = Term::Var(spec.sig().find_var("q").unwrap());
    let i = Term::Var(spec.sig().find_var("i").unwrap());
    let lhs = apply(
        &spec,
        "IS_EMPTY?",
        vec![apply(
            &spec,
            "ROTATE",
            vec![apply(&spec, "ADD", vec![q, i])],
        )],
    );
    let proof = rw.prove_equal(&lhs, &spec.sig().ff(), 6).unwrap();
    assert!(proof.is_proved(), "{proof:?}");
}

#[test]
fn rotating_the_empty_queue_is_error() {
    let spec = queue_with_rotate();
    let rw = Rewriter::new(&spec);
    let queue = spec.sig().find_sort("Queue").unwrap();
    let nf = rw
        .normalize(&apply(&spec, "ROTATE", vec![apply(&spec, "NEW", vec![])]))
        .unwrap();
    assert_eq!(nf, Term::Error(queue));
}

#[test]
fn the_factored_proof_transfers_to_a_verified_implementation() {
    // The client property was proved from the axioms; the FIFO was
    // verified against the axioms (tests/impl_verification.rs). The
    // factored conclusion — rotate behaves the same on the FIFO — is now
    // *checked* on ground cases by running the client program both ways.
    let abstract_spec = queue_with_rotate();
    let impl_spec = queue_spec();
    let model = fifo_model(&impl_spec);
    let rw = Rewriter::new(&abstract_spec);

    // The client program, written against the implementation API.
    let rotate_in_rust = |state: &Term| -> adt_verify::MValue {
        // Translate the abstract ground term into the impl spec (same op
        // names minus ROTATE) and evaluate, then apply the client logic
        // through the model's operations.
        let translated = adt_dsl::parse_term(
            &impl_spec,
            &adt_core::display::term(abstract_spec.sig(), state).to_string(),
        )
        .unwrap();
        let v = eval_ground(&model, &translated);
        let front = model.apply(
            impl_spec.sig().find_op("FRONT").unwrap(),
            std::slice::from_ref(&v),
        );
        let removed = model.apply(impl_spec.sig().find_op("REMOVE").unwrap(), &[v]);
        model.apply(impl_spec.sig().find_op("ADD").unwrap(), &[removed, front])
    };

    for items in [vec!["A"], vec!["A", "B"], vec!["C", "B", "A"]] {
        let mut state = apply(&abstract_spec, "NEW", vec![]);
        for item in &items {
            let it = apply(&abstract_spec, item, vec![]);
            state = apply(&abstract_spec, "ADD", vec![state, it]);
        }
        // Abstract result of FRONT(ROTATE(state)).
        let abstract_front = rw
            .normalize(&apply(
                &abstract_spec,
                "FRONT",
                vec![apply(&abstract_spec, "ROTATE", vec![state.clone()])],
            ))
            .unwrap();
        // Implementation result of the same client program.
        let rotated = rotate_in_rust(&state);
        let impl_front = model.apply(impl_spec.sig().find_op("FRONT").unwrap(), &[rotated]);
        let abstract_name =
            adt_core::display::term(abstract_spec.sig(), &abstract_front).to_string();
        assert_eq!(impl_front.as_str(), Some(abstract_name.as_str()));
    }
}
