//! EX-9: the concrete Rust implementations (linked stack, chained hash
//! array, stack-of-arrays symbol table, ring-buffer FIFO) verified
//! against their specifications — bounded mechanical verification of the
//! paper's "inherent invariants".

use adt_structures::models::{
    array_model, fifo_model, fifo_phi, stack_model, stack_phi, symtab_model, two_stack_model,
    two_stack_phi,
};
use adt_structures::specs::{array_spec, queue_spec, stack_spec, symboltable_spec};
use adt_verify::{check_axioms, check_representation, AxiomCheckConfig, MValue, RepCheckConfig};

fn deep_config() -> AxiomCheckConfig {
    AxiomCheckConfig {
        max_depth: 5,
        cap_per_sort: 80,
        max_instances_per_axiom: 6_000,
        random_instances: 200,
        random_depth: 10,
        seed: 0xBEEF,
    }
}

#[test]
fn linked_stack_satisfies_axioms_10_to_16() {
    let spec = stack_spec();
    let model = stack_model(&spec);
    let report = check_axioms(&model, &deep_config());
    assert!(report.passed(), "{}", report.summary());
    assert!(report.skipped_axioms.is_empty());
}

#[test]
fn linked_stack_commutes_with_phi() {
    let spec = stack_spec();
    let model = stack_model(&spec);
    let phi = stack_phi(&spec);
    let report = check_representation(&model, &phi, &RepCheckConfig::default());
    assert!(report.passed(), "{}", report.summary());
    assert!(report.terms_checked > 100);
}

#[test]
fn hash_array_satisfies_axioms_17_to_20() {
    let spec = array_spec();
    let model = array_model(&spec);
    let report = check_axioms(&model, &deep_config());
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn symbol_table_satisfies_axioms_1_to_9() {
    let spec = symboltable_spec();
    let model = symtab_model(&spec);
    let report = check_axioms(&model, &deep_config());
    assert!(report.passed(), "{}", report.summary());
    assert!(report.instances_checked > 1_000);
}

#[test]
fn fifo_satisfies_the_queue_axioms_and_phi() {
    let spec = queue_spec();
    let model = fifo_model(&spec);
    let report = check_axioms(&model, &deep_config());
    assert!(report.passed(), "{}", report.summary());
    let phi = fifo_phi(&spec);
    let rep = check_representation(&model, &phi, &RepCheckConfig::default());
    assert!(rep.passed(), "{}", rep.summary());
}

#[test]
fn two_stack_queue_satisfies_the_axioms_and_its_nontrivial_phi() {
    // The two-stack queue is the strongest Φ stress test: the same
    // abstract queue has many internal front/back splits, so Φ must be
    // genuinely many-to-one and the commutation check must still close.
    let spec = queue_spec();
    let model = two_stack_model(&spec);
    let report = check_axioms(&model, &deep_config());
    assert!(report.passed(), "{}", report.summary());
    let phi = two_stack_phi(&spec);
    let rep = check_representation(&model, &phi, &RepCheckConfig::default());
    assert!(rep.passed(), "{}", rep.summary());
    assert!(rep.terms_checked > 100);
}

#[test]
fn a_deliberately_broken_symbol_table_is_caught() {
    // Mutation check: interpret IS_INBLOCK? as "visible in ANY scope"
    // (a classic scoping bug — the paper's operation is scope-local).
    // Everything else is the correct implementation.
    use adt_structures::{AttrList, HashArray, Ident, SymbolTable};
    use adt_verify::ModelBuilder;

    type St = SymbolTable<HashArray<AttrList>>;
    let spec = symboltable_spec();
    let st = |v: &MValue| -> St { v.downcast::<St>().unwrap().clone() };
    let attr_of = |v: &MValue| AttrList::new().with("name", v.as_str().unwrap());
    let mut b = ModelBuilder::new(&spec)
        .op("INIT", |_| MValue::data(St::init()))
        .op("ENTERBLOCK", move |args| {
            let mut t = st(&args[0]);
            t.enter_block();
            MValue::data(t)
        })
        .op("LEAVEBLOCK", move |args| {
            let mut t = st(&args[0]);
            match t.leave_block() {
                Ok(()) => MValue::data(t),
                Err(_) => MValue::Error,
            }
        })
        .op("ADD", move |args| {
            let mut t = st(&args[0]);
            t.add(Ident::new(args[1].as_str().unwrap()), attr_of(&args[2]));
            MValue::data(t)
        })
        .op("IS_INBLOCK?", move |args| {
            // BUG: consults all scopes, not just the current block.
            let t = st(&args[0]);
            MValue::Bool(t.retrieve(&Ident::new(args[1].as_str().unwrap())).is_ok())
        })
        .op("RETRIEVE", move |args| {
            match st(&args[0]).retrieve(&Ident::new(args[1].as_str().unwrap())) {
                Ok(attrs) => MValue::Str(attrs.get("name").unwrap().to_owned()),
                Err(_) => MValue::Error,
            }
        })
        .op("ISSAME?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .eq("Symboltable", move |a, b| {
            let (x, y) = match (a.downcast::<St>(), b.downcast::<St>()) {
                (Some(x), Some(y)) => (x, y),
                _ => return false,
            };
            x.observationally_eq(y, &adt_structures::models::sample_ident_universe())
        });
    for name in ["ID_X", "ID_Y", "ID_Z", "ATTR_1", "ATTR_2", "ATTR_3"] {
        b = b.op(name, move |_| MValue::Str(name.to_owned()));
    }
    let model = b.build().unwrap();
    let report = check_axioms(&model, &AxiomCheckConfig::default());
    assert!(!report.passed(), "the scoping bug must be caught");
    // The violated axiom is exactly 5: IS_INBLOCK?(ENTERBLOCK(s), id) =
    // false — after entering a block, an outer declaration must not count
    // as "in block".
    let violated: std::collections::HashSet<&str> = report
        .counterexamples
        .iter()
        .map(|c| c.axiom.as_str())
        .collect();
    assert!(violated.contains("5"), "{violated:?}");
}
