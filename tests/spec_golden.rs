//! Golden checker verdicts for every specification shipped in `specs/`:
//! completeness verdict, missing-case count, and consistency verdict are
//! pinned, so a regression in either checker (or an accidental edit to a
//! spec file) shows up as a one-line diff against this table.
//!
//! `queue_incomplete` is the paper's deliberate defect — Queue with
//! axiom 4 dropped — and must *stay* incomplete with exactly one missing
//! case (`FRONT(ADD(queue_1, item_1)) = ?`).

use adt_check::{check_completeness, check_consistency};
use adt_structures::sources;

/// (name, sufficiently complete, missing cases, consistent)
const GOLDEN: &[(&str, bool, usize, bool)] = &[
    ("queue", true, 0, true),
    ("queue_incomplete", false, 1, true),
    ("stack", true, 0, true),
    ("array", true, 0, true),
    ("symboltable", true, 0, true),
    ("symboltable_rep", true, 0, true),
    ("knowlist", true, 0, true),
    ("symboltable_kl", true, 0, true),
    ("list", true, 0, true),
    ("set", true, 0, true),
    ("database", true, 0, true),
    ("arithmetic", true, 0, true),
];

#[test]
fn every_shipped_spec_matches_its_golden_verdicts() {
    let all = sources::all();
    assert_eq!(
        all.len(),
        GOLDEN.len(),
        "spec added or removed — update the golden table"
    );
    for (name, source) in all {
        let (_, complete, missing, consistent) = *GOLDEN
            .iter()
            .find(|(n, ..)| *n == name)
            .unwrap_or_else(|| panic!("no golden row for `{name}` — update the table"));
        let spec =
            adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
        let comp = check_completeness(&spec);
        assert_eq!(
            comp.is_sufficiently_complete(),
            complete,
            "{name}: completeness verdict drifted\n{}",
            comp.prompts()
        );
        assert_eq!(
            comp.missing_case_count(),
            missing,
            "{name}: missing-case count drifted\n{}",
            comp.prompts()
        );
        let cons = check_consistency(&spec);
        assert_eq!(
            cons.is_consistent(),
            consistent,
            "{name}: consistency verdict drifted\n{}",
            cons.summary()
        );
    }
}

#[test]
fn the_incomplete_queue_prompt_is_stable() {
    let spec = sources::load("queue_incomplete").unwrap();
    let report = check_completeness(&spec);
    assert!(report
        .prompts()
        .contains("FRONT(ADD(queue_1, item_1)) = ?"));
}
