//! EX-2: sufficient completeness in anger — dropping axiom 4 from the
//! Queue is caught with the exact missing case, and assorted broken
//! specifications are rejected with the right diagnostics (failure
//! injection for the checking pipeline).

use adt_check::{check_completeness, check_consistency, Coverage};
use adt_structures::sources;

#[test]
fn dropping_axiom_4_is_flagged_with_a_prompt() {
    let spec = sources::load("queue_incomplete").unwrap();
    let report = check_completeness(&spec);
    assert!(!report.is_sufficiently_complete());
    assert_eq!(report.missing_case_count(), 1);
    let front = spec.sig().find_op("FRONT").unwrap();
    let cov = report.for_op(front).unwrap();
    assert!(matches!(cov.coverage(), Coverage::Missing(_)));
    // The prompt is the paper's interactive behaviour: the system asks
    // for the missing equation.
    let prompts = report.prompts();
    assert!(
        prompts.contains("FRONT(ADD(queue_1, item_1)) = ?"),
        "{prompts}"
    );
    // The complete spec's other operations are unaffected.
    let remove = spec.sig().find_op("REMOVE").unwrap();
    assert!(report.for_op(remove).unwrap().is_complete());
}

#[test]
fn the_incomplete_spec_is_still_consistent() {
    // Incompleteness and inconsistency are independent defects.
    let spec = sources::load("queue_incomplete").unwrap();
    assert!(check_consistency(&spec).is_consistent());
}

#[test]
fn a_contradictory_queue_variant_is_caught() {
    // Re-adding axiom 4 with the WRONG orientation (a LIFO front) next to
    // a general FIFO fact makes the spec inconsistent.
    let source = r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  A: -> Item ctor
  B: -> Item ctor
vars
  q: Queue
  i, j: Item
axioms
  [lifo] FRONT(ADD(q, i)) = i
  [fifo2] FRONT(ADD(ADD(q, i), j)) = FRONT(ADD(q, i))
end
"#;
    let spec = adt_dsl::parse(source).unwrap();
    let report = check_consistency(&spec);
    assert!(
        !report.is_consistent(),
        "LIFO and FIFO readings of FRONT must clash: {}",
        report.summary()
    );
    assert!(!report.contradictions().is_empty());
}

#[test]
fn ill_sorted_spec_files_are_rejected_with_spans() {
    let source = "type Queue\nops\n  NEW: -> Qeueu ctor\nend";
    let err = adt_dsl::parse(source).unwrap_err();
    let rendered = err.render(source);
    assert!(rendered.contains("unknown sort `Qeueu`"), "{rendered}");
    assert!(rendered.contains("line 3"), "{rendered}");
}

#[test]
fn every_shipped_spec_except_the_deliberate_one_is_complete() {
    for (name, _) in sources::all() {
        let spec = sources::load(name).unwrap();
        let report = check_completeness(&spec);
        if name == "queue_incomplete" {
            assert!(!report.is_sufficiently_complete());
        } else {
            assert!(
                report.is_sufficiently_complete(),
                "specs/{name}.adt: {}",
                report.prompts()
            );
        }
    }
}

#[test]
fn no_shipped_spec_has_overlapping_axioms() {
    for (name, _) in sources::all() {
        let spec = sources::load(name).unwrap();
        let warnings = adt_check::overlap_warnings(&spec);
        assert!(warnings.is_empty(), "specs/{name}.adt: {warnings:?}");
    }
}

#[test]
fn no_shipped_spec_risks_symbolic_divergence() {
    for (name, _) in sources::all() {
        let spec = sources::load(name).unwrap();
        let warnings = adt_check::recursion_warnings(&spec);
        assert!(warnings.is_empty(), "specs/{name}.adt: {warnings:?}");
    }
}

#[test]
fn every_shipped_spec_is_consistent() {
    for (name, _) in sources::all() {
        let spec = sources::load(name).unwrap();
        let report = check_consistency(&spec);
        assert!(
            report.is_consistent(),
            "specs/{name}.adt: {}",
            report.summary()
        );
    }
}
