//! The specification language round-trips: every shipped `.adt` file
//! parses, prints, reparses to a semantically equal specification, and
//! the printed form is stable (printing is idempotent).

use adt_dsl::{parse, print_spec, semantically_equal};
use adt_structures::sources;

#[test]
fn all_shipped_sources_round_trip() {
    for (name, source) in sources::all() {
        let spec =
            parse(source).unwrap_or_else(|e| panic!("specs/{name}.adt: {}", e.render(source)));
        let printed = print_spec(&spec);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "specs/{name}.adt failed to reparse after printing:\n{printed}\n{}",
                e.render(&printed)
            )
        });
        assert!(
            semantically_equal(&spec, &reparsed),
            "specs/{name}.adt drifted through print/parse:\n{printed}"
        );
    }
}

#[test]
fn printing_is_idempotent() {
    for (name, source) in sources::all() {
        let spec = parse(source).unwrap();
        let once = print_spec(&spec);
        let twice = print_spec(&parse(&once).unwrap());
        assert_eq!(once, twice, "specs/{name}.adt printing is not stable");
    }
}

#[test]
fn programmatic_specs_print_to_parseable_sources() {
    use adt_structures::specs::*;
    for (name, spec) in [
        ("queue", queue_spec()),
        ("stack", stack_spec()),
        ("array", array_spec()),
        ("symboltable", symboltable_spec()),
        ("symboltable_rep", symtab_rep_spec()),
        ("knowlist", knowlist_spec()),
        ("symboltable_kl", symboltable_kl_spec()),
    ] {
        let printed = print_spec(&spec);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "{name}: printed spec does not parse:\n{printed}\n{}",
                e.render(&printed)
            )
        });
        assert!(semantically_equal(&spec, &reparsed), "{name}:\n{printed}");
    }
}
