//! Fault-injection suite: the robustness claims of the checking engine,
//! exercised end to end.
//!
//! Three claims are pinned here:
//!
//! 1. **Panic isolation** — a worker panic on one work item (injected
//!    deterministically) leaves every other item's verdict byte-identical
//!    to a fault-free run, at any job count, and the sabotaged item is
//!    flagged rather than lost.
//! 2. **Fuel bounds** — a divergent axiom set (`F(x) = F(x)`) terminates
//!    with an `Exhausted` receipt at *exactly* the configured step budget
//!    in the rewriter, surfaces as a partial verdict in the checker, and
//!    as `UNDETERMINED` (exit 0) in the CLI.
//! 3. **Partial verdicts** — a deliberately incomplete specification
//!    (`queue_incomplete`, the paper's dropped axiom 4) produces a
//!    partial verdict and a clean exit-1 report; it never panics.

use std::fs;
use std::path::PathBuf;

use adt_check::{
    check_completeness_with_config, check_consistency_with_config, CheckConfig,
    ConsistencyVerdict, ProbeConfig,
};
use adt_core::{ExhaustionCause, Fuel};
use adt_rewrite::{RewriteError, Rewriter};
use adt_verify::{fault_isolation_check, parse_fault_plan};
use adt_structures::sources;

/// A one-rule divergent system: every probe loops forever without fuel.
const LOOP: &str = "type L
ops
  C: -> L ctor
  F: L -> L
vars
  x: L
axioms
  [1] F(x) = F(x)
end
";

fn temp_spec(name: &str, contents: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("adt_fault_{}_{name}.adt", std::process::id()));
    fs::write(&path, contents).expect("temp file is writable");
    path
}

fn cli(args: &[&str]) -> adt_cli::Outcome {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    adt_cli::run(&owned)
}

#[test]
fn injected_panic_is_contained_at_any_job_count() {
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let plan = parse_fault_plan("seed=7,panic=1").expect("plan parses");
    for jobs in [1, 4] {
        let report = fault_isolation_check(
            &spec,
            &ProbeConfig::default(),
            &plan,
            &CheckConfig::jobs(jobs),
        );
        assert!(
            report.faults_injected() > 0,
            "jobs {jobs}: the plan must actually arm faults"
        );
        assert!(report.isolated(), "jobs {jobs}:\n{}", report.render());
        // The sabotaged chunks are flagged, not silently dropped.
        assert!(
            report.phases.iter().any(|p| !p.faulted.is_empty()),
            "jobs {jobs}: no phase flags its faulted item"
        );
    }
}

#[test]
fn all_three_fault_kinds_are_contained_together() {
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let plan = parse_fault_plan("seed=3,panic=1,exhaust=1,slow=1,slow-ms=1").expect("plan parses");
    for jobs in [1, 4] {
        let report = fault_isolation_check(
            &spec,
            &ProbeConfig::default(),
            &plan,
            &CheckConfig::jobs(jobs),
        );
        assert!(report.isolated(), "jobs {jobs}:\n{}", report.render());
    }
}

#[test]
fn slow_faults_change_nothing_at_all() {
    // Slowness is pure scheduling noise: unlike panics and exhaustion it
    // does not change any item's verdict, so the *entire* report — the
    // slowed items included — must be byte-identical to a clean run.
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let plan = parse_fault_plan("seed=5,slow=3,slow-ms=1").expect("plan parses");
    let probe = ProbeConfig::default();
    let clean = check_consistency_with_config(&spec, &probe, &CheckConfig::jobs(4));
    let slowed = check_consistency_with_config(
        &spec,
        &probe,
        &CheckConfig::jobs(4).with_faults(plan.clone()),
    );
    assert_eq!(clean.verdict(), slowed.verdict());
    assert_eq!(clean.pair_verdicts(), slowed.pair_verdicts());
    assert_eq!(clean.probe_verdicts(), slowed.probe_verdicts());
    assert_eq!(clean.summary(), slowed.summary());
    assert!(slowed.failures().is_empty());

    let comp_clean = check_completeness_with_config(&spec, &CheckConfig::jobs(4));
    let comp_slowed =
        check_completeness_with_config(&spec, &CheckConfig::jobs(4).with_faults(plan));
    assert_eq!(comp_clean.coverage(), comp_slowed.coverage());
}

#[test]
fn rewriter_exhausts_at_exactly_the_configured_budget() {
    let spec = adt_dsl::parse(LOOP).expect("loop spec parses");
    let term = adt_dsl::parse_term(&spec, "F(C)").expect("term parses");
    let rw = Rewriter::new(&spec).with_fuel(100);
    match rw.normalize_full(&term) {
        Err(RewriteError::Exhausted { spent, budget }) => {
            assert_eq!(spent.steps, 100, "exhaustion must land on the exact budget");
            assert_eq!(spent.cause, ExhaustionCause::Steps);
            assert_eq!(budget.steps, 100);
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}

#[test]
fn checker_surfaces_divergence_as_a_partial_verdict() {
    let spec = adt_dsl::parse(LOOP).expect("loop spec parses");
    let probe = ProbeConfig {
        samples: 10,
        max_depth: 3,
        seed: 1,
    };
    let mut summaries = Vec::new();
    for jobs in [1, 4] {
        let cfg = CheckConfig::jobs(jobs).with_fuel(Fuel::steps(100));
        let report = check_consistency_with_config(&spec, &probe, &cfg);
        assert_eq!(
            report.verdict(),
            &ConsistencyVerdict::Exhausted,
            "jobs {jobs}: {}",
            report.summary()
        );
        assert!(!report.exhausted_probes().is_empty());
        assert_eq!(report.exhausted_probes()[0].spent.steps, 100);
        summaries.push(report.summary());
    }
    assert_eq!(summaries[0], summaries[1], "partial verdicts must not depend on the job count");
}

#[test]
fn cli_fuel_flag_reports_undetermined_and_exits_zero() {
    let path = temp_spec("loop", LOOP);
    for jobs in ["1", "4"] {
        let out = cli(&[
            "check",
            "--jobs",
            jobs,
            "--fuel",
            "100",
            path.to_str().unwrap(),
        ]);
        assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
        assert!(
            out.output.contains("consistent: UNDETERMINED"),
            "jobs {jobs}: {}",
            out.output
        );
    }
    let _ = fs::remove_file(path);
}

#[test]
fn cli_faults_run_exits_zero_and_flags_the_chunk() {
    let path = temp_spec("queue", sources::QUEUE);
    let out = cli(&[
        "check",
        "--jobs",
        "4",
        "--faults",
        "seed=7,panic=1",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.code, 0, "{}", out.output);
    assert!(
        out.output.contains("non-faulted verdicts identical: yes"),
        "{}",
        out.output
    );
    assert!(out.output.contains("faulted item(s) ["), "{}", out.output);
    let _ = fs::remove_file(path);
}

#[test]
fn incomplete_spec_yields_partial_verdict_without_panicking() {
    let spec = adt_dsl::parse(sources::QUEUE_INCOMPLETE).expect("shipped spec parses");
    for jobs in [1, 4] {
        let cfg = CheckConfig::jobs(jobs);
        let comp = check_completeness_with_config(&spec, &cfg);
        assert!(!comp.is_sufficiently_complete(), "jobs {jobs}");
        assert!(comp.has_definite_missing(), "jobs {jobs}");
        assert_eq!(comp.missing_case_count(), 1, "jobs {jobs}");
        assert!(
            comp.prompts().contains("FRONT(ADD("),
            "jobs {jobs}: {}",
            comp.prompts()
        );
        // Consistency still runs to a verdict on the incomplete spec.
        let cons = check_consistency_with_config(&spec, &ProbeConfig::default(), &cfg);
        assert!(cons.failures().is_empty(), "jobs {jobs}");
    }

    // End to end: exit 1 (a definite negative), a prompt, and no panic.
    let path = temp_spec("incomplete", sources::QUEUE_INCOMPLETE);
    for jobs in ["1", "4"] {
        let out = cli(&["check", "--jobs", jobs, path.to_str().unwrap()]);
        assert_eq!(out.code, 1, "jobs {jobs}: {}", out.output);
        assert!(
            out.output.contains("sufficiently complete: NO"),
            "jobs {jobs}: {}",
            out.output
        );
    }
    let _ = fs::remove_file(path);
}

#[test]
fn exhaust_faults_are_never_rescued_by_the_retry_ladder() {
    // The retry ladder exists to rescue *honest* fuel exhaustion. An
    // injected exhaust fault must stay pinned at rung 0: if the ladder
    // re-ran the sabotaged item at a bigger budget it would come back
    // clean, and the isolation harness would be comparing the wrong run.
    use adt_check::RetryFuel;
    let spec = adt_dsl::parse(sources::QUEUE).expect("shipped spec parses");
    let plan = parse_fault_plan("seed=3,exhaust=2").expect("plan parses");
    let probe = ProbeConfig::default();
    for jobs in [1, 4] {
        let base = CheckConfig::jobs(jobs).with_faults(plan.clone());
        let with_retry = base.clone().with_retry(RetryFuel::default());
        let plain = check_consistency_with_config(&spec, &probe, &base);
        let retried = check_consistency_with_config(&spec, &probe, &with_retry);
        assert_eq!(
            plain.pair_verdicts(),
            retried.pair_verdicts(),
            "jobs {jobs}: retry must not touch exhaust-faulted pairs"
        );
        assert_eq!(
            plain.probe_verdicts(),
            retried.probe_verdicts(),
            "jobs {jobs}: retry must not touch exhaust-faulted probes"
        );
        assert!(
            retried.stats().retries.is_empty(),
            "jobs {jobs}: no rung may claim a faulted rescue: {:?}",
            retried.stats().retries
        );

        let comp_plain = check_completeness_with_config(&spec, &base);
        let comp_retried = check_completeness_with_config(&spec, &with_retry);
        assert_eq!(
            comp_plain.coverage(),
            comp_retried.coverage(),
            "jobs {jobs}: retry must not touch exhaust-faulted operations"
        );
    }

    // The isolation harness agrees even with the ladder armed.
    let report = fault_isolation_check(
        &spec,
        &ProbeConfig::default(),
        &plan,
        &CheckConfig::jobs(4).with_retry(RetryFuel::default()),
    );
    assert!(report.isolated(), "{}", report.render());
}
