//! EX-11: generator induction (§4 cites Wegbreit [23]; §5 promises that
//! algebraic specifications provide "a set of powerful rules of
//! inference"). Classic list/arithmetic theorems that plain rewriting
//! cannot close are proved by skolemized structural induction — including
//! a genuine two-lemma development of `REVERSE(REVERSE(l)) = l`.

use adt_core::Term;
use adt_rewrite::Rewriter;
use adt_structures::specs::list_spec;
use adt_verify::{prove_by_induction, with_lemma, InductionOutcome};

fn apply(spec: &adt_core::Spec, op: &str, args: Vec<Term>) -> Term {
    spec.sig().apply(op, args).unwrap()
}

#[test]
fn append_nil_neutral_needs_and_gets_induction() {
    let spec = list_spec();
    let l = spec.sig().find_var("l").unwrap();
    let nil = apply(&spec, "NIL", vec![]);
    let lhs = apply(&spec, "APPEND", vec![Term::Var(l), nil]);
    let rhs = Term::Var(l);

    // Rewriting alone is stuck: APPEND recurses on its *first* argument.
    let rw = Rewriter::new(&spec);
    assert!(!rw.prove_equal(&lhs, &rhs, 4).unwrap().is_proved());

    // Induction on l closes it.
    let outcome = prove_by_induction(&spec, &lhs, &rhs, l, 4).unwrap();
    assert!(outcome.is_proved(), "{outcome:?}");
}

#[test]
fn length_is_a_homomorphism_onto_plus() {
    // LENGTH(APPEND(l1, l2)) = PLUS(LENGTH(l1), LENGTH(l2)),
    // by induction on l1 (l2 stays universally quantified, so the
    // induction hypothesis is the strengthened ∀l2 statement).
    let spec = list_spec();
    let l1 = spec.sig().find_var("l1").unwrap();
    let l2 = spec.sig().find_var("l2").unwrap();
    let lhs = apply(
        &spec,
        "LENGTH",
        vec![apply(&spec, "APPEND", vec![Term::Var(l1), Term::Var(l2)])],
    );
    let rhs = apply(
        &spec,
        "PLUS",
        vec![
            apply(&spec, "LENGTH", vec![Term::Var(l1)]),
            apply(&spec, "LENGTH", vec![Term::Var(l2)]),
        ],
    );
    let outcome = prove_by_induction(&spec, &lhs, &rhs, l1, 4).unwrap();
    assert!(outcome.is_proved(), "{outcome:?}");
}

#[test]
fn reverse_involution_fails_without_the_lemma() {
    let spec = list_spec();
    let l = spec.sig().find_var("l").unwrap();
    let lhs = apply(
        &spec,
        "REVERSE",
        vec![apply(&spec, "REVERSE", vec![Term::Var(l)])],
    );
    let rhs = Term::Var(l);
    // Direct induction gets stuck in the CONS case on
    // REVERSE(APPEND(REVERSE(sk), CONS(e, NIL))) — an honest limit of
    // rewriting induction without lemma speculation.
    let outcome = prove_by_induction(&spec, &lhs, &rhs, l, 6).unwrap();
    match outcome {
        InductionOutcome::Failed { case, .. } => assert_eq!(case, "CONS"),
        other => panic!("expected the CONS case to be stuck: {other:?}"),
    }
}

#[test]
fn reverse_involution_by_a_two_lemma_development() {
    let spec = list_spec();
    let l = spec.sig().find_var("l").unwrap();
    let e = spec.sig().find_var("e").unwrap();
    let nil = apply(&spec, "NIL", vec![]);

    // Lemma: REVERSE(APPEND(l, CONS(e, NIL))) = CONS(e, REVERSE(l)),
    // proved by induction on l.
    let lemma_lhs = apply(
        &spec,
        "REVERSE",
        vec![apply(
            &spec,
            "APPEND",
            vec![
                Term::Var(l),
                apply(&spec, "CONS", vec![Term::Var(e), nil.clone()]),
            ],
        )],
    );
    let lemma_rhs = apply(
        &spec,
        "CONS",
        vec![Term::Var(e), apply(&spec, "REVERSE", vec![Term::Var(l)])],
    );
    let lemma_proof = prove_by_induction(&spec, &lemma_lhs, &lemma_rhs, l, 6).unwrap();
    assert!(lemma_proof.is_proved(), "lemma: {lemma_proof:?}");

    // Install the proved lemma as a rewrite rule and prove the theorem.
    let enriched = with_lemma(&spec, "rev_snoc", lemma_lhs, lemma_rhs).unwrap();
    let theorem_lhs = apply(
        &enriched,
        "REVERSE",
        vec![apply(&enriched, "REVERSE", vec![Term::Var(l)])],
    );
    let theorem = prove_by_induction(&enriched, &theorem_lhs, &Term::Var(l), l, 6).unwrap();
    assert!(theorem.is_proved(), "theorem: {theorem:?}");
}

#[test]
fn induction_rejects_a_false_conjecture() {
    // REVERSE(l) = l is false for any 2-element list with distinct heads.
    let spec = list_spec();
    let l = spec.sig().find_var("l").unwrap();
    let lhs = apply(&spec, "REVERSE", vec![Term::Var(l)]);
    let outcome = prove_by_induction(&spec, &lhs, &Term::Var(l), l, 6).unwrap();
    assert!(!outcome.is_proved());
}
