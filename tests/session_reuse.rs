//! Session-reuse invariance: one [`Session`] shared across the
//! completeness, consistency, and differential checkers must produce
//! reports byte-identical to fresh-session runs of the same checks, at
//! every job count. The shared arena and the warm memo are performance
//! machinery only — if reuse changes a single report byte, cache reuse
//! has leaked into semantics.

use adt_check::{
    check_completeness_session, check_completeness_with_config, check_consistency_session,
    check_consistency_with_config, CheckConfig, CompletenessReport, ConsistencyReport, ProbeConfig,
};
use adt_core::Session;
use adt_structures::sources;
use adt_verify::{differential_spec_check, differential_spec_check_session, DifferentialConfig};

/// Every observable of a completeness report, folded into one string so
/// comparisons are byte-for-byte.
fn completeness_fingerprint(r: &CompletenessReport) -> String {
    let per_op: Vec<String> = r
        .coverage()
        .iter()
        .map(|c| {
            format!(
                "{}: complete={} axioms={} notes={}",
                c.op_name(),
                c.is_complete(),
                c.axiom_count(),
                c.notes().len()
            )
        })
        .collect();
    format!(
        "sufficient={} missing={} ops=[{}]\n{}",
        r.is_sufficiently_complete(),
        r.missing_case_count(),
        per_op.join("; "),
        r.prompts()
    )
}

/// Every observable of a consistency report, folded into one string.
fn consistency_fingerprint(r: &ConsistencyReport) -> String {
    format!(
        "consistent={} pairs={} unresolved={} probes={} exhausted={}\npairs:\n{}\nprobes:\n{}\n{}",
        r.is_consistent(),
        r.pairs_checked(),
        r.unresolved_pairs(),
        r.probes_run(),
        r.exhausted_probes().len(),
        r.pair_verdicts().join("\n"),
        r.probe_verdicts().join("\n"),
        r.summary()
    )
}

#[test]
fn shared_session_reports_match_fresh_runs_on_every_spec() {
    for jobs in [1, 4] {
        let config = CheckConfig::jobs(jobs);
        let probe = ProbeConfig::default();
        let dcfg = DifferentialConfig::default();
        for (name, source) in sources::all() {
            let spec =
                adt_dsl::parse(source).unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));

            // Fresh-session baseline: each check builds its own state.
            let comp_fresh = check_completeness_with_config(&spec, &config);
            let cons_fresh = check_consistency_with_config(&spec, &probe, &config);
            let diff_fresh = differential_spec_check(&spec, &dcfg);

            // One session carried across all three checks in sequence,
            // so the consistency phase runs against a memo warmed by
            // completeness, and the differential against both.
            let session = Session::new(spec.clone());
            let comp_shared = check_completeness_session(&session, &config);
            let cons_shared = check_consistency_session(&session, &probe, &config);
            let diff_shared = differential_spec_check_session(&session, &dcfg);

            assert_eq!(
                completeness_fingerprint(&comp_fresh),
                completeness_fingerprint(&comp_shared),
                "{name} at {jobs} jobs: completeness"
            );
            assert_eq!(
                consistency_fingerprint(&cons_fresh),
                consistency_fingerprint(&cons_shared),
                "{name} at {jobs} jobs: consistency"
            );
            assert_eq!(
                diff_fresh.render(),
                diff_shared.render(),
                "{name} at {jobs} jobs: differential"
            );
        }
    }
}

#[test]
fn a_reused_session_accumulates_monotone_telemetry() {
    // The point of carrying one session is that later checks see earlier
    // checks' work: counters must only grow, and the checks that
    // normalize must leave memo facts for the ones that follow.
    let spec = sources::load("symboltable").unwrap();
    let session = Session::new(spec.clone());
    let config = CheckConfig::jobs(1);

    // Completeness is a static pattern-coverage analysis: it interns
    // witness terms for missing cases but normalizes nothing, and this
    // spec is sufficiently complete — the session stays untouched.
    check_completeness_session(&session, &config);
    let after_comp = session.stats();
    assert_eq!(after_comp.normalizations, 0);

    check_consistency_session(&session, &ProbeConfig::default(), &config);
    let after_cons = session.stats();
    assert!(after_cons.memo_entries > 0, "consistency left no memo facts");
    assert!(after_cons.interned_terms > 0, "no probe terms were interned");

    differential_spec_check_session(&session, &DifferentialConfig::default());
    let after_diff = session.stats();
    assert!(after_diff.memo_entries >= after_cons.memo_entries);
    assert!(
        after_diff.memo_hits > after_cons.memo_hits,
        "the differential pass never hit the memo consistency warmed"
    );
    assert!(after_diff.interned_terms >= after_cons.interned_terms);
    assert!(after_diff.arena_bytes > 0);

    // An incomplete spec's completeness check does touch the arena: the
    // missing-case witnesses are interned for id-holding consumers.
    let gappy = sources::load("queue_incomplete").unwrap();
    let gappy_session = Session::new(gappy.clone());
    let report = check_completeness_session(&gappy_session, &config);
    assert!(!report.is_sufficiently_complete());
    assert!(
        gappy_session.stats().interned_terms > 0,
        "missing-case witnesses were not interned"
    );
}
