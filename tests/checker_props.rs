//! Metamorphic properties of the mechanical checkers: for randomly
//! generated *complete-by-construction* specifications, the completeness
//! checker must agree; delete any one axiom and it must flag exactly the
//! affected operation; inject a contradiction and the consistency checker
//! must catch it.
//!
//! Spec shapes and seeds are drawn from a seeded [`DetRng`] (48 cases per
//! property), so every run exercises the same specifications.

use adt_check::{check_completeness, check_consistency, Coverage};
use adt_core::{DetRng, Spec, SpecBuilder, Term};

const CASES: usize = 48;

/// Builds a synthetic specification: one sort with `ctors` constructors
/// (the first nullary, the rest unary-recursive) and `obs` boolean
/// observers, each observer fully case-covered. Returns the spec plus the
/// list of (observer index, constructor index) pairs in axiom order.
fn synthetic(ctors: usize, obs: usize, seed: u64) -> (Spec, Vec<(usize, usize)>) {
    let mut b = SpecBuilder::new("Synthetic");
    let s = b.sort("S");
    let mut ctor_ids = Vec::new();
    ctor_ids.push((b.ctor("C0", [], s), 0usize));
    for k in 1..ctors {
        ctor_ids.push((b.ctor(&format!("C{k}"), [s], s), 1));
    }
    let x = Term::Var(b.var("x", s));
    let mut layout = Vec::new();
    let mut state = seed;
    for o in 0..obs {
        let op = b.op(&format!("OBS{o}?"), [s], b.bool_sort());
        for (k, &(ctor, arity)) in ctor_ids.iter().enumerate() {
            let lhs = if arity == 0 {
                b.app(op, [b.app(ctor, [])])
            } else {
                b.app(op, [b.app(ctor, [x.clone()])])
            };
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let rhs = if state.is_multiple_of(2) { b.tt() } else { b.ff() };
            b.axiom(format!("a{o}_{k}"), lhs, rhs);
            layout.push((o, k));
        }
    }
    (b.build().unwrap(), layout)
}

/// Rebuilds the synthetic spec with axiom number `drop` omitted.
fn synthetic_without(ctors: usize, obs: usize, seed: u64, drop: usize) -> Spec {
    let (full, _) = synthetic(ctors, obs, seed);
    let axioms: Vec<_> = full
        .axioms()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != drop)
        .map(|(_, a)| a.clone())
        .collect();
    Spec::from_parts(
        full.name().to_owned(),
        full.sig().clone(),
        axioms,
        full.tois().to_vec(),
        full.params().to_vec(),
    )
    .unwrap()
}

/// Complete-by-construction specs pass; they are also consistent
/// (orthogonal constructor cases cannot contradict).
#[test]
fn complete_specs_pass_both_checkers() {
    let mut rng = DetRng::new(0xC4EC_0001);
    for _ in 0..CASES {
        let ctors = 1 + rng.below(4);
        let obs = 1 + rng.below(4);
        let seed = rng.next_u64();
        let (spec, _) = synthetic(ctors, obs, seed);
        let report = check_completeness(&spec);
        assert!(report.is_sufficiently_complete(), "{}", report.prompts());
        assert!(check_consistency(&spec).is_consistent());
    }
}

/// Deleting any single axiom breaks completeness for exactly the
/// observer that lost a case, and no other.
#[test]
fn deleting_one_axiom_is_localized() {
    let mut rng = DetRng::new(0xC4EC_0002);
    for _ in 0..CASES {
        let ctors = 1 + rng.below(4);
        let obs = 1 + rng.below(4);
        let seed = rng.next_u64();
        let (full, layout) = synthetic(ctors, obs, seed);
        let drop = rng.below(full.axioms().len());
        let (dropped_obs, _) = layout[drop];
        let spec = synthetic_without(ctors, obs, seed, drop);
        let report = check_completeness(&spec);
        assert!(!report.is_sufficiently_complete());
        for cov in report.coverage() {
            let is_dropped = cov.op_name() == format!("OBS{dropped_obs}?");
            match cov.coverage() {
                Coverage::Missing(cases) => {
                    assert!(is_dropped, "wrong op flagged: {}", cov.op_name());
                    assert_eq!(cases.len(), 1);
                }
                Coverage::Complete => assert!(!is_dropped),
                other => panic!(
                    "{}: synthetic specs are small enough to analyze fully, got {other:?}",
                    cov.op_name()
                ),
            }
        }
    }
}

/// Adding a contradicting duplicate of an existing axiom (same left
/// side, flipped right side) is caught by the consistency checker.
#[test]
fn injected_contradictions_are_caught() {
    let mut rng = DetRng::new(0xC4EC_0003);
    for _ in 0..CASES {
        let ctors = 1 + rng.below(3);
        let obs = 1 + rng.below(3);
        let seed = rng.next_u64();
        let (full, _) = synthetic(ctors, obs, seed);
        let victim = rng.below(full.axioms().len());
        let ax = full.axioms()[victim].clone();
        let flipped = if ax.rhs() == &full.sig().tt() {
            full.sig().ff()
        } else {
            full.sig().tt()
        };
        let mut axioms = full.axioms().to_vec();
        axioms.push(adt_core::Axiom::new(
            "contradiction",
            ax.lhs().clone(),
            flipped,
        ));
        let spec = Spec::from_parts(
            full.name().to_owned(),
            full.sig().clone(),
            axioms,
            full.tois().to_vec(),
            full.params().to_vec(),
        )
        .unwrap();
        let report = check_consistency(&spec);
        assert!(!report.is_consistent(), "{}", report.summary());
    }
}
