//! Property-based tests for the specification language: arbitrary
//! well-sorted terms and arbitrary signatures survive the print → parse
//! round trip exactly.

use proptest::prelude::*;

use adt_core::{display, Spec, SpecBuilder, Term};
use adt_dsl::{parse, parse_term, print_spec, semantically_equal};

/// A rich fixed signature for term round-trips: queue ops, items, a
/// boolean observer, and declared variables.
fn term_playground() -> Spec {
    let mut b = SpecBuilder::new("Playground");
    let queue = b.sort("Queue");
    let item = b.param_sort("Item");
    b.ctor("NEW", [], queue);
    b.ctor("ADD", [queue, item], queue);
    b.ctor("A", [], item);
    b.ctor("B", [], item);
    b.op("FRONT", [queue], item);
    b.op("REMOVE", [queue], queue);
    b.op("IS_EMPTY?", [queue], b.bool_sort());
    b.var("q", queue);
    b.var("q1", queue);
    b.var("i", item);
    b.var("i1", item);
    b.var("flag", b.bool_sort());
    b.build().unwrap()
}

/// Strategy for well-sorted Queue-sorted terms of bounded depth.
fn arb_queue_term(spec: &Spec, depth: u32) -> BoxedStrategy<Term> {
    let sig = spec.sig().clone();
    let new = sig.find_op("NEW").unwrap();
    let add = sig.find_op("ADD").unwrap();
    let remove = sig.find_op("REMOVE").unwrap();
    let q = sig.find_var("q").unwrap();
    let q1 = sig.find_var("q1").unwrap();
    let queue = sig.find_sort("Queue").unwrap();

    let leaf = prop_oneof![
        Just(Term::constant(new)),
        Just(Term::Var(q)),
        Just(Term::Var(q1)),
        Just(Term::Error(queue)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let spec2 = spec.clone();
    let spec3 = spec.clone();
    let spec4 = spec.clone();
    prop_oneof![
        leaf,
        (
            arb_queue_term(&spec2, depth - 1),
            arb_item_term(&spec2, depth - 1)
        )
            .prop_map(move |(qt, it)| Term::App(add, vec![qt, it])),
        arb_queue_term(&spec3, depth - 1).prop_map(move |qt| Term::App(remove, vec![qt])),
        (
            arb_bool_term(&spec4, depth - 1),
            arb_queue_term(&spec4, depth - 1),
            arb_queue_term(&spec4, depth - 1)
        )
            .prop_map(|(c, t, e)| Term::ite(c, t, e)),
    ]
    .boxed()
}

/// Strategy for well-sorted Item-sorted terms.
fn arb_item_term(spec: &Spec, depth: u32) -> BoxedStrategy<Term> {
    let sig = spec.sig().clone();
    let a = sig.find_op("A").unwrap();
    let b_ = sig.find_op("B").unwrap();
    let front = sig.find_op("FRONT").unwrap();
    let i = sig.find_var("i").unwrap();
    let i1 = sig.find_var("i1").unwrap();
    let item = sig.find_sort("Item").unwrap();
    let leaf = prop_oneof![
        Just(Term::constant(a)),
        Just(Term::constant(b_)),
        Just(Term::Var(i)),
        Just(Term::Var(i1)),
        Just(Term::Error(item)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let spec2 = spec.clone();
    prop_oneof![
        leaf,
        arb_queue_term(&spec2, depth - 1).prop_map(move |qt| Term::App(front, vec![qt])),
    ]
    .boxed()
}

/// Strategy for well-sorted Bool-sorted terms.
fn arb_bool_term(spec: &Spec, depth: u32) -> BoxedStrategy<Term> {
    let sig = spec.sig().clone();
    let is_empty = sig.find_op("IS_EMPTY?").unwrap();
    let flag = sig.find_var("flag").unwrap();
    let leaf = prop_oneof![Just(sig.tt()), Just(sig.ff()), Just(Term::Var(flag)),];
    if depth == 0 {
        return leaf.boxed();
    }
    let spec2 = spec.clone();
    prop_oneof![
        leaf,
        arb_queue_term(&spec2, depth - 1).prop_map(move |qt| Term::App(is_empty, vec![qt])),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// print(term) reparses to exactly the same term. The one genuinely
    /// ambiguous shape — a conditional whose branches are *both* `error`
    /// all the way down, which no context-free reading can sort — is
    /// excluded by assumption.
    #[test]
    fn term_print_parse_round_trip(t in arb_queue_term(&term_playground(), 4)) {
        let spec = term_playground();
        let rendered = display::term(spec.sig(), &t).to_string();
        match parse_term(&spec, &rendered) {
            Ok(reparsed) => prop_assert_eq!(reparsed, t, "source: {}", rendered),
            Err(e) if e.to_string().contains("cannot determine the sort") => {
                // Both-branches-error conditionals are unparseable without
                // context by design; everything else must round-trip.
                prop_assume!(false);
            }
            Err(e) => return Err(TestCaseError::fail(format!("{rendered}: {e}"))),
        }
    }

    /// Arbitrary signatures (sorts, constructors, operations of random
    /// arities) survive print_spec → parse.
    #[test]
    fn signature_print_parse_round_trip(
        toi_count in 1usize..4,
        param_count in 0usize..3,
        op_seed in any::<u64>(),
    ) {
        let mut b = SpecBuilder::new("Gen");
        let mut tois = Vec::new();
        for k in 0..toi_count {
            tois.push(b.sort(&format!("S{k}")));
        }
        let mut params = Vec::new();
        for k in 0..param_count {
            params.push(b.param_sort(&format!("P{k}")));
        }
        // Every sort of interest gets a nullary constructor; some get a
        // recursive one; derived ops get pseudo-random signatures.
        let mut state = op_seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for (k, &s) in tois.iter().enumerate() {
            b.ctor(&format!("BASE{k}"), [], s);
            if next() % 2 == 0 {
                b.ctor(&format!("STEP{k}"), [s], s);
            }
        }
        let all_sorts: Vec<_> = tois.iter().chain(params.iter()).copied().collect();
        for k in 0..(next() % 5) {
            let arity = (next() % 3) as usize;
            let args: Vec<_> = (0..arity)
                .map(|_| all_sorts[(next() as usize) % all_sorts.len()])
                .collect();
            let result = if next() % 4 == 0 {
                b.bool_sort()
            } else {
                all_sorts[(next() as usize) % all_sorts.len()]
            };
            b.op(&format!("OP{k}?"), args, result);
        }
        let spec = b.build().expect("generated signatures are valid");
        let printed = print_spec(&spec);
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{printed}\n{}", e.render(&printed))))?;
        prop_assert!(semantically_equal(&spec, &reparsed), "printed:\n{printed}");
    }
}
