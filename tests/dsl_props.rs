//! Property-based tests for the specification language: arbitrary
//! well-sorted terms and arbitrary signatures survive the print → parse
//! round trip exactly.
//!
//! Terms and signatures are drawn from a seeded [`DetRng`] (96 cases per
//! property), so every run exercises the same inputs.

use adt_core::{display, DetRng, Spec, SpecBuilder, Term};
use adt_dsl::{parse, parse_term, print_spec, semantically_equal};

const CASES: usize = 96;

/// A rich fixed signature for term round-trips: queue ops, items, a
/// boolean observer, and declared variables.
fn term_playground() -> Spec {
    let mut b = SpecBuilder::new("Playground");
    let queue = b.sort("Queue");
    let item = b.param_sort("Item");
    b.ctor("NEW", [], queue);
    b.ctor("ADD", [queue, item], queue);
    b.ctor("A", [], item);
    b.ctor("B", [], item);
    b.op("FRONT", [queue], item);
    b.op("REMOVE", [queue], queue);
    b.op("IS_EMPTY?", [queue], b.bool_sort());
    b.var("q", queue);
    b.var("q1", queue);
    b.var("i", item);
    b.var("i1", item);
    b.var("flag", b.bool_sort());
    b.build().unwrap()
}

/// Draws a well-sorted Queue-sorted term of bounded depth.
fn rand_queue_term(spec: &Spec, depth: u32, rng: &mut DetRng) -> Term {
    let sig = spec.sig();
    let new = sig.find_op("NEW").unwrap();
    let add = sig.find_op("ADD").unwrap();
    let remove = sig.find_op("REMOVE").unwrap();
    let q = sig.find_var("q").unwrap();
    let q1 = sig.find_var("q1").unwrap();
    let queue = sig.find_sort("Queue").unwrap();

    let leaf = |rng: &mut DetRng| match rng.below(4) {
        0 => Term::constant(new),
        1 => Term::Var(q),
        2 => Term::Var(q1),
        _ => Term::Error(queue),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(4) {
        0 => leaf(rng),
        1 => {
            let qt = rand_queue_term(spec, depth - 1, rng);
            let it = rand_item_term(spec, depth - 1, rng);
            Term::App(add, vec![qt, it])
        }
        2 => Term::App(remove, vec![rand_queue_term(spec, depth - 1, rng)]),
        _ => {
            let c = rand_bool_term(spec, depth - 1, rng);
            let t = rand_queue_term(spec, depth - 1, rng);
            let e = rand_queue_term(spec, depth - 1, rng);
            Term::ite(c, t, e)
        }
    }
}

/// Draws a well-sorted Item-sorted term.
fn rand_item_term(spec: &Spec, depth: u32, rng: &mut DetRng) -> Term {
    let sig = spec.sig();
    let a = sig.find_op("A").unwrap();
    let b_ = sig.find_op("B").unwrap();
    let front = sig.find_op("FRONT").unwrap();
    let i = sig.find_var("i").unwrap();
    let i1 = sig.find_var("i1").unwrap();
    let item = sig.find_sort("Item").unwrap();
    let leaf = |rng: &mut DetRng| match rng.below(5) {
        0 => Term::constant(a),
        1 => Term::constant(b_),
        2 => Term::Var(i),
        3 => Term::Var(i1),
        _ => Term::Error(item),
    };
    if depth == 0 {
        return leaf(rng);
    }
    if rng.flip() {
        leaf(rng)
    } else {
        Term::App(front, vec![rand_queue_term(spec, depth - 1, rng)])
    }
}

/// Draws a well-sorted Bool-sorted term.
fn rand_bool_term(spec: &Spec, depth: u32, rng: &mut DetRng) -> Term {
    let sig = spec.sig();
    let is_empty = sig.find_op("IS_EMPTY?").unwrap();
    let flag = sig.find_var("flag").unwrap();
    let leaf = |rng: &mut DetRng| match rng.below(3) {
        0 => sig.tt(),
        1 => sig.ff(),
        _ => Term::Var(flag),
    };
    if depth == 0 {
        return leaf(rng);
    }
    if rng.flip() {
        leaf(rng)
    } else {
        Term::App(is_empty, vec![rand_queue_term(spec, depth - 1, rng)])
    }
}

/// print(term) reparses to exactly the same term. The one genuinely
/// ambiguous shape — a conditional whose branches are *both* `error`
/// all the way down, which no context-free reading can sort — is
/// excluded by assumption.
#[test]
fn term_print_parse_round_trip() {
    let spec = term_playground();
    let mut rng = DetRng::new(0xD51_0001);
    for _ in 0..CASES {
        let t = rand_queue_term(&spec, 4, &mut rng);
        let rendered = display::term(spec.sig(), &t).to_string();
        match parse_term(&spec, &rendered) {
            Ok(reparsed) => assert_eq!(reparsed, t, "source: {rendered}"),
            Err(e) if e.to_string().contains("cannot determine the sort") => {
                // Both-branches-error conditionals are unparseable without
                // context by design; everything else must round-trip.
                continue;
            }
            Err(e) => panic!("{rendered}: {e}"),
        }
    }
}

/// Arbitrary signatures (sorts, constructors, operations of random
/// arities) survive print_spec → parse.
#[test]
fn signature_print_parse_round_trip() {
    let mut rng = DetRng::new(0xD51_0002);
    for _ in 0..CASES {
        let toi_count = 1 + rng.below(3);
        let param_count = rng.below(3);
        let op_seed = rng.next_u64();

        let mut b = SpecBuilder::new("Gen");
        let mut tois = Vec::new();
        for k in 0..toi_count {
            tois.push(b.sort(&format!("S{k}")));
        }
        let mut params = Vec::new();
        for k in 0..param_count {
            params.push(b.param_sort(&format!("P{k}")));
        }
        // Every sort of interest gets a nullary constructor; some get a
        // recursive one; derived ops get pseudo-random signatures.
        let mut state = op_seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for (k, &s) in tois.iter().enumerate() {
            b.ctor(&format!("BASE{k}"), [], s);
            if next() % 2 == 0 {
                b.ctor(&format!("STEP{k}"), [s], s);
            }
        }
        let all_sorts: Vec<_> = tois.iter().chain(params.iter()).copied().collect();
        for k in 0..(next() % 5) {
            let arity = (next() % 3) as usize;
            let args: Vec<_> = (0..arity)
                .map(|_| all_sorts[(next() as usize) % all_sorts.len()])
                .collect();
            let result = if next() % 4 == 0 {
                b.bool_sort()
            } else {
                all_sorts[(next() as usize) % all_sorts.len()]
            };
            b.op(&format!("OP{k}?"), args, result);
        }
        let spec = b.build().expect("generated signatures are valid");
        let printed = print_spec(&spec);
        let reparsed = match parse(&printed) {
            Ok(s) => s,
            Err(e) => panic!("{printed}\n{}", e.render(&printed)),
        };
        assert!(semantically_equal(&spec, &reparsed), "printed:\n{printed}");
    }
}
