//! EX-6: the mechanical proof that the Stack-of-Arrays representation
//! satisfies the Symboltable axioms (§4) — the proof the paper reports
//! was "done completely mechanically by David Musser", reproduced by
//! term rewriting with case analysis.
//!
//! See `conditional_correctness.rs` for the Assumption-1 half (axioms
//! that hold only in legal environments).

use adt_check::check_completeness;
use adt_structures::specs::{symboltable_spec, symtab_rep_op_map, symtab_rep_spec};
use adt_verify::{translate_obligations, verify_obligation, ObligationKind, ProofConfig};

/// Axioms whose proof needs Assumption 1 (see EX-7); everything else must
/// go through unconditionally.
const CONDITIONAL_AXIOMS: [&str; 2] = ["6", "9"];

#[test]
fn representation_level_spec_is_sufficiently_complete() {
    let rep = symtab_rep_spec();
    let report = check_completeness(&rep);
    assert!(report.is_sufficiently_complete(), "{}", report.prompts());
}

#[test]
fn obligations_translate_with_the_right_kinds() {
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (_ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    // 9 paper axioms + 9 ISSAME? ground axioms.
    assert_eq!(obligations.len(), 18);
    // Axioms 1–3 range over Symboltable: Φ-wrapped. 4–9 range over Bool /
    // AttributeList: direct.
    for ob in &obligations {
        let expected = match ob.label.as_str() {
            "1" | "2" | "3" => ObligationKind::Phi,
            _ => ObligationKind::Direct,
        };
        assert_eq!(ob.kind, expected, "axiom {}", ob.label);
    }
}

#[test]
fn axioms_1_through_8_except_6_verify_unconditionally() {
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    let cfg = ProofConfig::default();
    for ob in &obligations {
        if CONDITIONAL_AXIOMS.contains(&ob.label.as_str()) {
            continue;
        }
        let outcome = verify_obligation(&ext, ob, &cfg).unwrap();
        assert!(
            outcome.is_proved(),
            "axiom {} should verify unconditionally: {outcome:#?}",
            ob.label
        );
    }
}

#[test]
fn all_nine_axioms_verify_under_assumption_1() {
    // Assumption 1: "For any term ADD'(symtab, id, attr),
    // IS_NEWSTACK?(symtab) = false" — i.e. symbol-table stacks occurring
    // in legal programs are PUSH-built. As a case restriction: variables
    // of sort Stack range over PUSH terms only.
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    let cfg = ProofConfig::default().restrict("Stack", &["PUSH"]);
    let mut proved = 0;
    for ob in &obligations {
        let outcome = verify_obligation(&ext, ob, &cfg).unwrap();
        assert!(
            outcome.is_proved(),
            "axiom {} should verify under Assumption 1: {outcome:#?}",
            ob.label
        );
        proved += 1;
    }
    assert_eq!(proved, 18);
}

#[test]
fn the_proof_needs_the_constructor_instantiation() {
    // Axiom 9 does not follow by plain normalization of the open
    // obligation: the stack variable must be instantiated to its
    // (Assumption-1-legal) PUSH form before the sides join. Forbidding
    // constructor case analysis (case_depth = 0) must therefore fail,
    // and allowing one round must succeed.
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    let ob9 = obligations.iter().find(|o| o.label == "9").unwrap();

    let mut no_cases = ProofConfig::default().restrict("Stack", &["PUSH"]);
    no_cases.case_depth = 0;
    assert!(
        !verify_obligation(&ext, ob9, &no_cases).unwrap().is_proved(),
        "axiom 9 should not follow without instantiating the stack variable"
    );

    let mut one_round = no_cases.clone();
    one_round.case_depth = 1;
    assert!(
        verify_obligation(&ext, ob9, &one_round)
            .unwrap()
            .is_proved(),
        "one round of PUSH instantiation should close axiom 9"
    );
}
