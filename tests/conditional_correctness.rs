//! EX-7: conditional correctness (§4).
//!
//! "The proof that the implementation satisfies Axiom 9 is based upon an
//! assumption about the environment in which the operations of the type
//! are to be used. … This observation leads to a notion of conditional
//! correctness: the representation of the abstract type is correct if the
//! enclosing program obeys certain constraints."
//!
//! Three manifestations are tested:
//!
//! 1. At the term level, axioms 6 and 9 of the Symboltable fail against
//!    the Stack-of-Arrays representation when stacks may be empty, and
//!    hold under Assumption 1 (our mechanization finds that axiom 6 — the
//!    other axiom whose left side adds to an arbitrary table — shares
//!    axiom 9's dependence; the paper discusses 9).
//! 2. At the value level, the fixed-capacity ring buffer is a correct
//!    Queue representation only for programs that never hold more than
//!    `capacity` elements — the environment assumption of the bounded
//!    queue.
//! 3. The defensive `ADD'` ("needless inefficiency") restores
//!    unconditional agreement where the unchecked one relies on the
//!    invariant.

use adt_structures::models::{fifo_model, fifo_phi, max_add_chain, ring_model, ring_phi};
use adt_structures::specs::{queue_spec, symboltable_spec, symtab_rep_op_map, symtab_rep_spec};
use adt_structures::{AttrList, Ident, SymbolTable};
use adt_verify::{
    check_representation, translate_obligations, verify_obligation, ObligationOutcome, ProofConfig,
    RepCheckConfig,
};

#[test]
fn axioms_6_and_9_fail_without_assumption_1() {
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    let cfg = ProofConfig::default();
    let mut failed = Vec::new();
    for ob in &obligations {
        if !verify_obligation(&ext, ob, &cfg).unwrap().is_proved() {
            failed.push(ob.label.clone());
        }
    }
    failed.sort();
    assert_eq!(failed, vec!["6".to_owned(), "9".to_owned()]);
}

#[test]
fn the_failing_case_is_the_empty_stack() {
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    let (ext, obligations) =
        translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
    let ob9 = obligations.iter().find(|o| o.label == "9").unwrap();
    match verify_obligation(&ext, ob9, &ProofConfig::default()).unwrap() {
        ObligationOutcome::Failed {
            trail,
            lhs_nf,
            rhs_nf,
            ..
        } => {
            // The counterexample path instantiates the stack to NEWSTACK…
            assert!(
                trail.iter().any(|step| step.contains("NEWSTACK")),
                "trail: {trail:?}"
            );
            // …where adding to an empty symbol table is error on one side
            // but not the other.
            assert_ne!(lhs_nf, rhs_nf);
            assert!(
                lhs_nf == "error" || rhs_nf == "error",
                "one side must be the error value: {lhs_nf} vs {rhs_nf}"
            );
        }
        other => panic!("expected a failure without Assumption 1: {other:#?}"),
    }
}

#[test]
fn ring_buffer_is_conditionally_correct_for_bounded_workloads() {
    let spec = queue_spec();
    let capacity = 3;
    let model = ring_model(&spec, capacity);
    let phi = ring_phi(&spec);

    // Under the environment assumption (programs never hold more than
    // `capacity` elements), the ring commutes with abstraction.
    let assumption = |t: &adt_core::Term| max_add_chain(&spec, t) <= capacity;
    let cfg = RepCheckConfig {
        assumption: Some(&assumption),
        ..RepCheckConfig::default()
    };
    let report = check_representation(&model, &phi, &cfg);
    assert!(report.passed(), "{}", report.summary());
    assert!(report.terms_checked > 50);
    assert!(report.terms_skipped > 0, "the assumption must bite");

    // Without the assumption the representation is *wrong*: deep ADD
    // chains overflow the ring and become error where the specification
    // has a bigger queue.
    let unrestricted = RepCheckConfig::default();
    let report = check_representation(&model, &phi, &unrestricted);
    assert!(!report.passed());
    assert!(report
        .mismatches
        .iter()
        .all(|m| m.term.matches("ADD").count() > capacity));
}

#[test]
fn unbounded_fifo_is_unconditionally_correct() {
    let spec = queue_spec();
    let model = fifo_model(&spec);
    let phi = fifo_phi(&spec);
    let report = check_representation(&model, &phi, &RepCheckConfig::default());
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn defensive_add_only_matters_when_the_invariant_is_broken() {
    // Under the structural invariant (INIT establishes a scope,
    // LEAVEBLOCK refuses to drop the last one), the checked and unchecked
    // ADD are indistinguishable — the check is the paper's "needless
    // inefficiency" (measured by the `defensive_check` bench).
    let universe: Vec<Ident> = ["x", "y", "z"].iter().map(|s| Ident::new(*s)).collect();
    let mut checked: SymbolTable = SymbolTable::init();
    let mut unchecked: SymbolTable = SymbolTable::init();
    let attrs = |n: u32| AttrList::new().with("v", &n.to_string());
    let mut n = 0;
    for round in 0..5 {
        for name in ["x", "y", "z"] {
            n += 1;
            checked.add_defensive(Ident::new(name), attrs(n));
            unchecked.add(Ident::new(name), attrs(n));
        }
        if round % 2 == 0 {
            checked.enter_block();
            unchecked.enter_block();
        } else {
            checked.leave_block().unwrap();
            unchecked.leave_block().unwrap();
        }
    }
    assert!(checked.observationally_eq(&unchecked, &universe));
}
