//! Property-based tests on the core invariants: the rewrite system is
//! deterministic and idempotent; substitution composes; the concrete
//! implementations track reference models under arbitrary operation
//! sequences; Φ identifies exactly the observationally equal ring states.
//!
//! Random programs are drawn from a seeded [`DetRng`] (128 cases per
//! property), so every run exercises the same inputs and failures
//! reproduce deterministically.

use adt_core::{DetRng, Subst, Term};
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;
use adt_structures::{AttrList, Fifo, Ident, LinkedStack, RingQueue, SymbolTable};

const CASES: usize = 128;

/// An abstract queue-building operation for random programs.
#[derive(Debug, Clone)]
enum QOp {
    Add(u8),
    Remove,
}

/// Draws a random queue program of up to 40 operations (ADD and REMOVE
/// equally likely).
fn qops(rng: &mut DetRng) -> Vec<QOp> {
    let len = rng.below(40);
    (0..len)
        .map(|_| {
            if rng.flip() {
                QOp::Add(rng.below(3) as u8)
            } else {
                QOp::Remove
            }
        })
        .collect()
}

/// Builds the ground Queue term corresponding to a program, mirroring it
/// against a Vec reference model.
fn queue_term(spec: &adt_core::Spec, ops: &[QOp]) -> (Term, Vec<u8>) {
    let sig = spec.sig();
    let items = ["A", "B", "C"];
    let mut term = sig.apply("NEW", vec![]).unwrap();
    let mut model: Vec<u8> = Vec::new();
    let mut poisoned = false;
    for op in ops {
        match op {
            QOp::Add(i) => {
                let item = sig.apply(items[*i as usize], vec![]).unwrap();
                term = sig.apply("ADD", vec![term, item]).unwrap();
                if !poisoned {
                    model.push(*i);
                }
            }
            QOp::Remove => {
                term = sig.apply("REMOVE", vec![term]).unwrap();
                if !poisoned && model.is_empty() {
                    poisoned = true; // REMOVE(NEW) = error, and error is absorbing
                }
                if !poisoned {
                    model.remove(0);
                }
            }
        }
    }
    if poisoned {
        model.clear();
    }
    (term, model)
}

/// Normal forms are fixpoints: nf(nf(t)) = nf(t).
#[test]
fn normalization_is_idempotent() {
    let spec = queue_spec();
    let rw = Rewriter::new(&spec);
    let mut rng = DetRng::new(0x1D01);
    for _ in 0..CASES {
        let ops = qops(&mut rng);
        let (term, _) = queue_term(&spec, &ops);
        let nf = rw.normalize(&term).unwrap();
        assert_eq!(rw.normalize(&nf).unwrap(), nf);
    }
}

/// The rewrite system agrees with a Vec reference model of FIFO
/// semantics (with error as an absorbing state).
#[test]
fn queue_axioms_agree_with_a_reference_model() {
    let spec = queue_spec();
    let sig = spec.sig();
    let rw = Rewriter::new(&spec);
    let mut rng = DetRng::new(0x1D02);
    for _ in 0..CASES {
        let ops = qops(&mut rng);
        let (term, model) = queue_term(&spec, &ops);
        let nf = rw.normalize(&term).unwrap();
        if nf.is_error() {
            // The model detected an underflow somewhere — nothing more to
            // compare (error has swallowed the queue).
            continue;
        }
        // Rebuild the model's expected ADD chain and compare.
        let items = ["A", "B", "C"];
        let mut expected = sig.apply("NEW", vec![]).unwrap();
        for i in &model {
            let item = sig.apply(items[*i as usize], vec![]).unwrap();
            expected = sig.apply("ADD", vec![expected, item]).unwrap();
        }
        assert_eq!(nf, expected);
    }
}

/// The Fifo implementation agrees with the same reference model.
#[test]
fn fifo_agrees_with_the_reference_model() {
    let mut rng = DetRng::new(0x1D03);
    for _ in 0..CASES {
        let ops = qops(&mut rng);
        let mut q: Fifo<u8> = Fifo::new();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                QOp::Add(i) => {
                    q.add(*i);
                    model.push(*i);
                }
                QOp::Remove => {
                    assert_eq!(
                        q.remove(),
                        if model.is_empty() {
                            None
                        } else {
                            Some(model.remove(0))
                        }
                    );
                }
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.front().copied(), model.first().copied());
        }
        let contents: Vec<u8> = q.iter().copied().collect();
        assert_eq!(contents, model);
    }
}

/// Substitution composition law: (σ ∘ τ)(t) = τ(σ(t)).
#[test]
fn substitution_composes() {
    let spec = queue_spec();
    let sig = spec.sig();
    let mut rng = DetRng::new(0x1D04);
    for _ in 0..CASES {
        let ops = qops(&mut rng);
        let pick = rng.below(3);
        // queue_spec has vars q and i; σ maps q to an open term, τ grounds it.
        let q = sig.find_var("q").unwrap();
        let (ground, _) = queue_term(&spec, &ops);
        let open = sig.apply("REMOVE", vec![Term::Var(q)]).unwrap();
        let sigma = Subst::single(q, open.clone());
        let tau = Subst::single(q, ground);
        let composed = sigma.compose(&tau);
        let t = match pick {
            0 => Term::Var(q),
            1 => open,
            _ => sig.apply("IS_EMPTY?", vec![Term::Var(q)]).unwrap(),
        };
        assert_eq!(composed.apply(&t), tau.apply(&sigma.apply(&t)));
    }
}

/// The ring buffer's Φ-image matches a bounded reference model, and two
/// different ways of reaching the same abstract state are Φ-equal.
#[test]
fn ring_phi_matches_bounded_model() {
    let mut rng = DetRng::new(0x1D05);
    for _ in 0..CASES {
        let ops = qops(&mut rng);
        let mut ring: RingQueue<u8> = RingQueue::new(3);
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                QOp::Add(i) => {
                    let ok = ring.add(*i).is_ok();
                    assert_eq!(ok, model.len() < 3);
                    if ok {
                        model.push(*i);
                    }
                }
                QOp::Remove => {
                    let got = ring.remove();
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(got, expected);
                }
            }
            let live: Vec<u8> = ring.abstract_value().into_iter().copied().collect();
            assert_eq!(&live, &model);
        }
    }
}

/// LinkedStack push/pop round-trips arbitrary sequences.
#[test]
fn linked_stack_round_trips() {
    let mut rng = DetRng::new(0x1D06);
    for _ in 0..CASES {
        let values: Vec<u16> = (0..rng.below(64)).map(|_| rng.next_u64() as u16).collect();
        let stack: LinkedStack<u16> = values.iter().copied().collect();
        assert_eq!(stack.len(), values.len());
        let mut walker = stack.clone();
        for v in values.iter().rev() {
            assert_eq!(walker.top(), Some(v));
            walker = walker.pop().unwrap();
        }
        assert!(walker.is_new());
    }
}

/// The symbol table agrees with a reference stack-of-maps under
/// arbitrary enter/leave/add/lookup programs.
#[test]
fn symbol_table_agrees_with_stack_of_maps() {
    use std::collections::HashMap;
    let mut rng = DetRng::new(0x1D07);
    for _ in 0..CASES {
        let script: Vec<(u8, u8)> = (0..rng.below(60))
            .map(|_| (rng.below(4) as u8, rng.below(5) as u8))
            .collect();
        let mut st: SymbolTable = SymbolTable::init();
        let mut reference: Vec<HashMap<String, String>> = vec![HashMap::new()];
        for (op, which) in script {
            let name = format!("v{which}");
            match op {
                0 => {
                    let val = format!("t{}", reference.len());
                    st.add(Ident::new(&name), AttrList::new().with("t", &val));
                    reference.last_mut().unwrap().insert(name, val);
                }
                1 => {
                    st.enter_block();
                    reference.push(HashMap::new());
                }
                2 => {
                    let st_res = st.leave_block().is_ok();
                    let ref_res = reference.len() > 1;
                    assert_eq!(st_res, ref_res);
                    if ref_res {
                        reference.pop();
                    }
                }
                _ => {
                    let expected = reference.iter().rev().find_map(|m| m.get(&name));
                    let got = st
                        .retrieve(&Ident::new(&name))
                        .ok()
                        .map(|a| a.get("t").unwrap().to_owned());
                    assert_eq!(got, expected.cloned());
                    let in_block = reference.last().unwrap().contains_key(&name);
                    assert_eq!(st.is_in_block(&Ident::new(&name)), in_block);
                }
            }
        }
    }
}
