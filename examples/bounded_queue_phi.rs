//! The paper's bounded-queue demonstration (§4): two different program
//! segments leave the ring-buffer representation in different concrete
//! states that denote the same abstract value — Φ⁻¹ is one-to-many.
//!
//! Run with `cargo run --example bounded_queue_phi`.

use adt_core::display;
use adt_rewrite::Rewriter;
use adt_structures::models::{ring_model, ring_phi};
use adt_structures::specs::queue_spec;
use adt_structures::RingQueue;
use adt_verify::{MValue, Model};

fn show(label: &str, q: &RingQueue<char>) {
    let slots: Vec<String> = q
        .raw_slots()
        .iter()
        .map(|s| match s {
            Some(c) => c.to_string(),
            None => "·".to_owned(),
        })
        .collect();
    println!(
        "{label}: slots [{}], top pointer at {}, abstract value ⟨{}⟩",
        slots.join(" "),
        q.top_pointer(),
        q.abstract_value()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn main() {
    // The paper's first program segment.
    let mut x = RingQueue::new(3);
    x.add('A').unwrap();
    x.add('B').unwrap();
    x.add('C').unwrap();
    x.remove().unwrap();
    x.add('D').unwrap();
    show("segment 1 (ADD A,B,C; REMOVE; ADD D)", &x);

    // The second.
    let mut y = RingQueue::new(3);
    y.add('B').unwrap();
    y.add('C').unwrap();
    y.add('D').unwrap();
    show("segment 2 (ADD B,C,D)          ", &y);

    assert_ne!(x.raw_slots(), y.raw_slots());
    assert_eq!(x.abstract_value(), y.abstract_value());
    println!("\ndifferent representations, same abstract value: Φ⁻¹ is one-to-many\n");

    // The same demonstration through the verification machinery, where Φ
    // produces an actual term of the Queue algebra.
    let spec = queue_spec();
    let model = ring_model(&spec, 3);
    let phi = ring_phi(&spec);
    let sig = spec.sig();
    let rw = Rewriter::new(&spec);

    let run = |script: &[(&str, Option<&str>)]| -> MValue {
        let mut v = model.apply(sig.find_op("NEW").unwrap(), &[]);
        for (op, item) in script {
            let op_id = sig.find_op(op).unwrap();
            v = match item {
                Some(i) => model.apply(op_id, &[v, MValue::Str((*i).to_owned())]),
                None => model.apply(op_id, &[v]),
            };
        }
        v
    };
    let v1 = run(&[
        ("ADD", Some("A")),
        ("ADD", Some("B")),
        ("ADD", Some("C")),
        ("REMOVE", None),
        ("ADD", Some("A")),
    ]);
    let v2 = run(&[("ADD", Some("B")), ("ADD", Some("C")), ("ADD", Some("A"))]);
    let t1 = rw.normalize(&phi(&v1)).unwrap();
    let t2 = rw.normalize(&phi(&v2)).unwrap();
    println!("Φ(segment 1) = {}", display::term(sig, &t1));
    println!("Φ(segment 2) = {}", display::term(sig, &t2));
    assert_eq!(t1, t2);
    println!("equal as terms of the algebra ✓");
}
