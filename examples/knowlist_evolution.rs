//! The Knowlist evolution (§4, end): what happens to the Symboltable
//! specification when the compiled language acquires "knows lists".
//!
//! "Because the relationships among the various operations appear
//! explicitly, the process of deciding which axioms must be altered to
//! effect a change is straightforward." This example computes that
//! change mechanically, checks the evolved specification, and runs both
//! the old and new visibility rules side by side.
//!
//! Run with `cargo run --example knowlist_evolution`.

use adt_check::{check_completeness, check_consistency};
use adt_structures::specs::{axiom_diff, symboltable_kl_spec, symboltable_spec};
use adt_structures::{AttrList, Ident, KnowList, SymbolTable, SymbolTableKl};

fn main() {
    let before = symboltable_spec();
    let after = symboltable_kl_spec();

    // 1. The mechanical diff: which axioms did the language change touch?
    let diff = axiom_diff(&before, &after);
    println!("axioms changed by the knows-list extension:");
    for (label, old, new) in &diff.changed {
        println!("  [{label}]");
        println!("    before: {old}");
        println!("    after:  {new}");
    }
    println!("axioms added (the new Knowlist layer):");
    for (label, eq) in &diff.only_in_second {
        println!("  [{label}] {eq}");
    }
    println!(
        "axioms untouched: {} of {}\n",
        diff.unchanged.len(),
        before.axioms().len()
    );
    assert_eq!(diff.changed_labels(), vec!["2", "5", "8"]);

    // 2. The evolved specification still checks out.
    assert!(check_completeness(&after).is_sufficiently_complete());
    assert!(check_consistency(&after).is_consistent());
    println!("evolved specification is sufficiently complete and consistent ✓\n");

    // 3. Behavioural comparison on the same program:
    //    outer block declares g; inner block uses g.
    let g = Ident::new("g");
    let attrs = AttrList::new().with("type", "integer");

    let mut classic: SymbolTable = SymbolTable::init();
    classic.add(g.clone(), attrs.clone());
    classic.enter_block();
    println!(
        "classic scope rules:    inner block sees g? {}",
        classic.retrieve(&g).is_ok()
    );

    let mut with_kl: SymbolTableKl = SymbolTableKl::init();
    with_kl.add(g.clone(), attrs.clone());
    with_kl.enter_block(KnowList::create()); // does NOT list g
    println!(
        "knows-list rules (g not listed): inner block sees g? {}",
        with_kl.retrieve(&g).is_ok()
    );
    with_kl.leave_block().unwrap();
    with_kl.enter_block(KnowList::create().append(g.clone()));
    println!(
        "knows-list rules (g listed):     inner block sees g? {}",
        with_kl.retrieve(&g).is_ok()
    );

    assert!(classic.retrieve(&g).is_ok());
    with_kl.leave_block().unwrap();
}
