//! The paper's motivating scenario: the symbol-table component of a
//! compiler for a block-structured language (§4).
//!
//! A tiny block-structured source program is scanned; declarations and
//! uses drive the [`SymbolTable`] exactly through the paper's six
//! operations (INIT, ENTERBLOCK, LEAVEBLOCK, ADD, IS_INBLOCK?, RETRIEVE),
//! producing the diagnostics a real front end would: duplicate
//! declarations, undeclared identifiers, and mismatched `end`s.
//!
//! Run with `cargo run --example symbol_table_compiler`.

use adt_structures::{AttrList, Ident, SymbolTable};

const PROGRAM: &str = "
begin
  var x : integer
  var y : boolean
  use x
  begin
    var x : real        -- shadows the outer x
    use x
    use y               -- inherited from the enclosing block
    var x : char        -- ERROR: duplicate declaration in this block
  end
  use x                 -- the outer x again
  use z                 -- ERROR: undeclared
end
end                     -- ERROR: extra end
";

fn main() {
    let mut symtab: SymbolTable = SymbolTable::init();
    let mut errors = 0;

    println!("compiling:\n{PROGRAM}");
    for (lineno, raw) in PROGRAM.lines().enumerate() {
        let line = raw.split("--").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("begin") => {
                symtab.enter_block();
                println!("{lineno:>3}: begin            (depth {})", symtab.depth());
            }
            Some("end") => match symtab.leave_block() {
                Ok(()) => println!("{lineno:>3}: end              (depth {})", symtab.depth()),
                Err(_) => {
                    // LEAVEBLOCK(INIT) = error — the mismatched-end check
                    // the paper says the compiler must do somewhere.
                    errors += 1;
                    println!("{lineno:>3}: error: extra `end` — no open block");
                }
            },
            Some("var") => {
                let name = words.next().expect("var needs a name");
                let ty = words.nth(1).expect("var needs a type");
                let id = Ident::new(name);
                // IS_INBLOCK? "used to avoid duplicate declarations".
                if symtab.is_in_block(&id) {
                    errors += 1;
                    println!("{lineno:>3}: error: `{name}` already declared in this block");
                } else {
                    symtab.add(id, AttrList::new().with("type", ty));
                    println!("{lineno:>3}: declare {name} : {ty}");
                }
            }
            Some("use") => {
                let name = words.next().expect("use needs a name");
                match symtab.retrieve(&Ident::new(name)) {
                    Ok(attrs) => println!(
                        "{lineno:>3}: use {name}        resolves to {}",
                        attrs.get("type").unwrap_or("?")
                    ),
                    Err(_) => {
                        errors += 1;
                        println!("{lineno:>3}: error: `{name}` is undeclared");
                    }
                }
            }
            other => panic!("unknown statement {other:?}"),
        }
    }

    println!("\n{errors} error(s) found");
    assert_eq!(errors, 3, "the demo program contains exactly three errors");
}
