//! The "spec doctor": run Guttag's mechanical checks over every shipped
//! specification file — the system §3 describes, which "would begin to
//! prompt the user to supply the additional information necessary … to
//! derive a sufficiently complete axiom set".
//!
//! Run with `cargo run --example spec_doctor`.

use adt_check::{check_completeness, check_consistency, classification_warnings, overlap_warnings};
use adt_structures::sources;

fn main() {
    let mut incomplete = 0;
    for (name, source) in sources::all() {
        println!("── specs/{name}.adt ──");
        let spec = match adt_dsl::parse(source) {
            Ok(spec) => spec,
            Err(diags) => {
                println!("{}", diags.render(source));
                continue;
            }
        };
        println!(
            "  {} sort(s) of interest, {} operation(s), {} axiom(s)",
            spec.tois().len(),
            spec.sig().op_count(),
            spec.axioms().len()
        );

        let completeness = check_completeness(&spec);
        if completeness.is_sufficiently_complete() {
            println!("  sufficiently complete ✓");
        } else {
            incomplete += 1;
            // The paper's interactive prompt, verbatim behaviour.
            for line in completeness.prompts().lines() {
                println!("  {line}");
            }
        }

        let consistency = check_consistency(&spec);
        for line in consistency.summary().lines() {
            println!("  {line}");
        }

        for w in classification_warnings(&spec)
            .into_iter()
            .chain(overlap_warnings(&spec))
        {
            println!("  warning: {w}");
        }
        println!();
    }

    // And show the diagnostics pipeline on a file with real mistakes.
    let broken = r#"
type Stack
ops
  NEWSTACK: -> Stack ctor
  PUSH: Stack, Elem -> Stack ctor
  TOP: Stack -> Elem
vars
  s: Stack
axioms
  [t1] TOP(NEWSTACK) = errr
end
"#;
    println!("── a broken file, for the diagnostics ──");
    match adt_dsl::parse(broken) {
        Ok(_) => unreachable!("the file is broken on purpose"),
        Err(diags) => println!("{}", diags.render(broken)),
    }

    assert_eq!(incomplete, 1, "only queue_incomplete.adt should be flagged");
}
