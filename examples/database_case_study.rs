//! §5's closing claim, end to end: "A database management system …
//! might be completely characterized by an algebraic specification of
//! the various operations available to users."
//!
//! This example treats `specs/database.adt` as the *contract* of a tiny
//! keyed store, runs transactions against the bare axioms (symbolic
//! interpretation), then wires up a hand-written Rust engine and checks
//! it against the same axioms — the full development cycle the paper
//! advocates, on a type it never worked out itself.
//!
//! Run with `cargo run --example database_case_study`.

use adt_check::{check_completeness, check_consistency};
use adt_rewrite::SymbolicSession;
use adt_verify::{check_axioms, AxiomCheckConfig, MValue, ModelBuilder};

/// The "production" engine: a last-write-wins keyed store. (Deliberately
/// simple — the point is the methodology, not the engine.)
#[derive(Debug, Clone, Default)]
struct Store {
    rows: Vec<(String, String)>, // newest first
}

impl Store {
    fn put(&mut self, k: &str, v: &str) {
        self.rows.insert(0, (k.to_owned(), v.to_owned()));
    }
    fn del(&mut self, k: &str) {
        self.rows.retain(|(key, _)| key != k);
    }
    fn get(&self, k: &str) -> Option<&str> {
        self.rows
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    }
    fn size(&self) -> i64 {
        let mut seen: Vec<&str> = Vec::new();
        for (k, _) in &self.rows {
            if !seen.contains(&k.as_str()) {
                seen.push(k);
            }
        }
        seen.len() as i64
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = adt_structures::sources::DATABASE;
    let spec = adt_dsl::parse(source).map_err(|e| e.render(source))?;

    // 1. The contract checks out mechanically.
    assert!(check_completeness(&spec).is_sufficiently_complete());
    assert!(check_consistency(&spec).is_consistent());
    println!("database contract: sufficiently complete and consistent ✓");

    // 2. Run a transaction against the axioms alone.
    let sig = spec.sig();
    let mut tx = SymbolicSession::new(&spec);
    tx.assign("db", "EMPTYDB", [])?;
    tx.assign(
        "db",
        "PUT",
        [
            "db".into(),
            sig.apply("K1", vec![])?.into(),
            sig.apply("V1", vec![])?.into(),
        ],
    )?;
    tx.assign(
        "db",
        "PUT",
        [
            "db".into(),
            sig.apply("K2", vec![])?.into(),
            sig.apply("V2", vec![])?.into(),
        ],
    )?;
    tx.assign(
        "db",
        "PUT",
        [
            "db".into(),
            sig.apply("K1", vec![])?.into(),
            sig.apply("V3", vec![])?.into(),
        ],
    )?;
    let got = tx.call("GET", ["db".into(), sig.apply("K1", vec![])?.into()])?;
    println!(
        "symbolic GET(db, K1) after overwrite = {}",
        adt_core::display::term(sig, &got)
    );
    assert_eq!(got, sig.apply("V3", vec![])?);
    let size = tx.call("SIZE", ["db".into()])?;
    println!(
        "symbolic SIZE(db) = {} (duplicate PUT did not inflate it)",
        adt_core::display::term(sig, &size)
    );

    // 3. Wire the Rust engine to the same contract and verify it.
    let store = |v: &MValue| -> Store { v.downcast::<Store>().unwrap().clone() };
    let mut b = ModelBuilder::new(&spec)
        .op("EMPTYDB", |_| MValue::data(Store::default()))
        .op("PUT", move |args| {
            let mut s = store(&args[0]);
            s.put(args[1].as_str().unwrap(), args[2].as_str().unwrap());
            MValue::data(s)
        })
        .op("DEL", move |args| {
            let mut s = store(&args[0]);
            s.del(args[1].as_str().unwrap());
            MValue::data(s)
        })
        .op("GET", move |args| {
            match store(&args[0]).get(args[1].as_str().unwrap()) {
                Some(v) => MValue::Str(v.to_owned()),
                None => MValue::Error,
            }
        })
        .op("HAS?", move |args| {
            MValue::Bool(store(&args[0]).get(args[1].as_str().unwrap()).is_some())
        })
        .op("SIZE", move |args| MValue::Int(store(&args[0]).size()))
        .op("SAMEKEY?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .op("ZERO", |_| MValue::Int(0))
        .op("SUCC", |args| MValue::Int(args[0].as_int().unwrap() + 1))
        .eq("Database", move |a, b| {
            let (x, y) = match (a.downcast::<Store>(), b.downcast::<Store>()) {
                (Some(x), Some(y)) => (x, y),
                _ => return false,
            };
            ["K1", "K2", "K3"].iter().all(|k| x.get(k) == y.get(k))
        });
    for name in ["K1", "K2", "K3", "V1", "V2", "V3"] {
        b = b.op(name, move |_| MValue::Str(name.to_owned()));
    }
    let model = b.build()?;

    let report = check_axioms(&model, &AxiomCheckConfig::default());
    println!(
        "engine vs contract: {} instances, {} counterexamples",
        report.instances_checked,
        report.counterexamples.len()
    );
    assert!(report.passed(), "{}", report.summary());
    println!("the Rust engine is a model of the database axioms ✓");
    Ok(())
}
