//! Quickstart: specify a type algebraically, check the specification
//! mechanically, execute it by rewriting, and verify an implementation
//! against it.
//!
//! Run with `cargo run --example quickstart`.

use adt_check::{check_completeness, check_consistency};
use adt_rewrite::{Rewriter, SymbolicSession};
use adt_structures::models::fifo_model;
use adt_verify::{check_axioms, AxiomCheckConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A specification is text (or use adt_core::SpecBuilder in code).
    let source = r#"
type Queue
param Item

ops
  NEW:       -> Queue ctor
  ADD:       Queue, Item -> Queue ctor
  FRONT:     Queue -> Item
  REMOVE:    Queue -> Queue
  IS_EMPTY?: Queue -> Bool
  A: -> Item ctor
  B: -> Item ctor
  C: -> Item ctor

vars
  q: Queue
  i: Item

axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;
    let spec = adt_dsl::parse(source).map_err(|e| e.render(source))?;
    println!(
        "parsed specification `{}` with {} axioms",
        spec.name(),
        spec.axioms().len()
    );

    // 2. Mechanical checking (§3 of the paper).
    let completeness = check_completeness(&spec);
    println!(
        "sufficiently complete: {}",
        completeness.is_sufficiently_complete()
    );
    let consistency = check_consistency(&spec);
    println!(
        "consistent: {} ({} critical pairs, {} ground probes)",
        consistency.is_consistent(),
        consistency.pairs_checked(),
        consistency.probes_run()
    );

    // 3. The axioms are executable: rewrite a term and watch the
    //    derivation.
    let sig = spec.sig();
    let term = sig.apply(
        "FRONT",
        vec![sig.apply(
            "ADD",
            vec![
                sig.apply(
                    "ADD",
                    vec![sig.apply("NEW", vec![])?, sig.apply("A", vec![])?],
                )?,
                sig.apply("B", vec![])?,
            ],
        )?],
    )?;
    let rw = Rewriter::new(&spec);
    let (nf, trace) = rw.normalize_traced(&term)?;
    println!("\nderivation:\n{}", trace.render(sig));
    println!("normal form: {}", adt_core::display::term(sig, &nf));

    // 4. Or run whole programs symbolically (§5: implementations and
    //    specifications are interchangeable).
    let mut session = SymbolicSession::new(&spec);
    session.assign("x", "NEW", [])?;
    session.assign("x", "ADD", ["x".into(), sig.apply("A", vec![])?.into()])?;
    session.assign("x", "ADD", ["x".into(), sig.apply("B", vec![])?.into()])?;
    session.assign("x", "REMOVE", ["x".into()])?;
    println!(
        "\nafter NEW; ADD A; ADD B; REMOVE:  x = {}",
        adt_core::display::term(sig, session.get("x").expect("x is bound"))
    );

    // 5. And check a real Rust implementation against the axioms.
    let model = fifo_model(&spec);
    let report = check_axioms(&model, &AxiomCheckConfig::default());
    println!(
        "\nimplementation check: {} instances evaluated, {} counterexamples",
        report.instances_checked,
        report.counterexamples.len()
    );
    assert!(report.passed());
    Ok(())
}
