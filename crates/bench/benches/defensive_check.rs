//! TB-3: the cost of the defensive `ADD'` (§4).
//!
//! "The validity of the above assumption can be assured by adding to the
//! implementation of ADD' a check for this condition … In most cases,
//! however, it would also introduce needless inefficiency."
//!
//! Measured: a declaration-heavy trace through `add` (unchecked, relying
//! on the structural invariant = conditional correctness) vs
//! `add_defensive` (checks and repairs the empty-stack condition on every
//! call). The paper predicts a small but real per-operation overhead —
//! the argument for conditional correctness when the environment is known.

use adt_structures::{AttrList, Ident, SymbolTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 1_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("defensive_check");
    group
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900));
    group.throughput(Throughput::Elements(N as u64));

    let names: Vec<Ident> = (0..64).map(|i| Ident::new(format!("v{i}"))).collect();
    let attrs = AttrList::new().with("type", "integer");

    group.bench_with_input(BenchmarkId::new("unchecked", N), &names, |b, names| {
        b.iter(|| {
            let mut st: SymbolTable = SymbolTable::init();
            for i in 0..N {
                st.add(names[i % names.len()].clone(), attrs.clone());
                if i % 97 == 0 {
                    st.enter_block();
                }
            }
            st.depth()
        });
    });

    group.bench_with_input(BenchmarkId::new("defensive", N), &names, |b, names| {
        b.iter(|| {
            let mut st: SymbolTable = SymbolTable::init();
            for i in 0..N {
                st.add_defensive(names[i % names.len()].clone(), attrs.clone());
                if i % 97 == 0 {
                    st.enter_block();
                }
            }
            st.depth()
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
