//! TB-3: the cost of the defensive `ADD'` (§4).
//!
//! "The validity of the above assumption can be assured by adding to the
//! implementation of ADD' a check for this condition … In most cases,
//! however, it would also introduce needless inefficiency."
//!
//! Measured: a declaration-heavy trace through `add` (unchecked, relying
//! on the structural invariant = conditional correctness) vs
//! `add_defensive` (checks and repairs the empty-stack condition on every
//! call). The paper predicts a small but real per-operation overhead —
//! the argument for conditional correctness when the environment is known.

use adt_bench::harness::Group;
use adt_structures::{AttrList, Ident, SymbolTable};

const N: usize = 1_000;

fn main() {
    let group = Group::new("defensive_check").samples(30);

    let names: Vec<Ident> = (0..64).map(|i| Ident::new(format!("v{i}"))).collect();
    let attrs = AttrList::new().with("type", "integer");

    group.bench(&format!("unchecked/{N}"), || {
        let mut st: SymbolTable = SymbolTable::init();
        for i in 0..N {
            st.add(names[i % names.len()].clone(), attrs.clone());
            if i % 97 == 0 {
                st.enter_block();
            }
        }
        st.depth()
    });

    group.bench(&format!("defensive/{N}"), || {
        let mut st: SymbolTable = SymbolTable::init();
        for i in 0..N {
            st.add_defensive(names[i % names.len()].clone(), attrs.clone());
            if i % 97 == 0 {
                st.enter_block();
            }
        }
        st.depth()
    });
}
