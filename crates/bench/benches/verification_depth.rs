//! TB-5: the cost of mechanical verification (§4).
//!
//! Two measurements:
//!
//! * **bounded model checking** — `check_axioms` of the Queue axioms
//!   against the FIFO implementation, as the enumeration depth grows
//!   (instance count grows geometrically with depth; the cost per
//!   instance stays flat);
//! * **the representation proof** — the full Musser-style verification of
//!   the Symboltable representation (translate all 18 obligations, prove
//!   each under Assumption 1).

use adt_bench::harness::Group;
use adt_structures::models::fifo_model;
use adt_structures::specs::{queue_spec, symboltable_spec, symtab_rep_op_map, symtab_rep_spec};
use adt_verify::{
    check_axioms, translate_obligations, verify_obligation, AxiomCheckConfig, ProofConfig,
};

fn main() {
    let group = Group::new("verification_depth");

    let spec = queue_spec();
    let model = fifo_model(&spec);
    for &depth in &[3usize, 4, 5, 6] {
        let cfg = AxiomCheckConfig {
            max_depth: depth,
            cap_per_sort: 1_000,
            max_instances_per_axiom: 100_000,
            random_instances: 0,
            random_depth: depth,
            seed: 1,
        };
        group.bench(&format!("bounded_check/{depth}"), || {
            let report = check_axioms(&model, std::hint::black_box(&cfg));
            assert!(report.passed());
            report.instances_checked
        });
    }

    // The representation proof, end to end.
    let abs = symboltable_spec();
    let rep = symtab_rep_spec();
    group.bench("symboltable_representation_proof", || {
        let (ext, obligations) =
            translate_obligations(&abs, &rep, &symtab_rep_op_map(), Some("PHI")).unwrap();
        let cfg = ProofConfig::default().restrict("Stack", &["PUSH"]);
        let mut proved = 0;
        for ob in &obligations {
            if verify_obligation(&ext, ob, &cfg).unwrap().is_proved() {
                proved += 1;
            }
        }
        assert_eq!(proved, 18);
        proved
    });
}
