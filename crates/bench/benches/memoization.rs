//! TB-6 (ablation): ground-subterm memoization in the rewrite engine.
//!
//! Two workload shapes, measured separately because they answer in
//! opposite directions:
//!
//! * **single-term** — one observer over one state, fresh cache: every
//!   subterm is seen once, so memoization is pure overhead (groundness
//!   checks + hashing of large subterms). Expect memo to *lose*.
//! * **repeated-state** — many observers over one shared state (the
//!   symbol-table access pattern: one table, many RETRIEVEs): the state's
//!   subterms recur across queries, so the cache amortizes. Expect memo
//!   to *win*, increasingly with query count.
//!
//! The point of the ablation is exactly this crossover: memoization is a
//! workload decision, not a free win — which is why it is an opt-in
//! constructor (`Rewriter::memoizing`) rather than the default.

use adt_bench::harness::Group;
use adt_bench::workloads::queue_term;
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;

fn main() {
    let spec = queue_spec();
    let sig = spec.sig();

    let group = Group::new("memoization");

    // Shape 1: single term, fresh cache — the overhead case.
    for &n in &[32usize, 128] {
        let front = sig
            .apply("FRONT", vec![queue_term(&spec, n, 0, 7)])
            .unwrap();
        let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
        group.bench(&format!("single_plain/{n}"), || {
            plain.normalize(std::hint::black_box(&front)).unwrap()
        });
        group.bench_batched(
            &format!("single_memo/{n}"),
            || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
            |rw| rw.normalize(std::hint::black_box(&front)).unwrap(),
        );
    }

    // Shape 2: many observers over one shared state — the win case.
    // A queue state with REMOVE history (so normalizing it takes real
    // work), queried `queries` times.
    for &queries in &[8usize, 32] {
        let n = 64;
        let state = queue_term(&spec, n, n / 2, 7);
        let observations: Vec<_> = (0..queries)
            .map(|k| {
                let op = if k % 2 == 0 { "FRONT" } else { "IS_EMPTY?" };
                sig.apply(op, vec![state.clone()]).unwrap()
            })
            .collect();
        let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
        group.bench(&format!("queries_plain/{queries}"), || {
            observations
                .iter()
                .map(|t| plain.normalize(std::hint::black_box(t)).unwrap().size())
                .sum::<usize>()
        });
        group.bench_batched(
            &format!("queries_memo/{queries}"),
            || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
            |rw| {
                observations
                    .iter()
                    .map(|t| rw.normalize(std::hint::black_box(t)).unwrap().size())
                    .sum::<usize>()
            },
        );
    }
}
