//! TB-6 (ablation): ground-subterm memoization in the rewrite engine.
//!
//! Two workload shapes, measured separately because they answer in
//! opposite directions:
//!
//! * **single-term** — one observer over one state, fresh cache: every
//!   subterm is seen once, so memoization is pure overhead (groundness
//!   checks + hashing of large subterms). Expect memo to *lose*.
//! * **repeated-state** — many observers over one shared state (the
//!   symbol-table access pattern: one table, many RETRIEVEs): the state's
//!   subterms recur across queries, so the cache amortizes. Expect memo
//!   to *win*, increasingly with query count.
//!
//! The point of the ablation is exactly this crossover: memoization is a
//! workload decision, not a free win — which is why it is an opt-in
//! constructor (`Rewriter::memoizing`) rather than the default.

use adt_bench::workloads::queue_term;
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let spec = queue_spec();
    let sig = spec.sig();

    let mut group = c.benchmark_group("memoization");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900));

    // Shape 1: single term, fresh cache — the overhead case.
    for &n in &[32usize, 128] {
        let front = sig
            .apply("FRONT", vec![queue_term(&spec, n, 0, 7)])
            .unwrap();
        group.bench_with_input(BenchmarkId::new("single_plain", n), &front, |b, t| {
            let rw = Rewriter::new(&spec).with_fuel(1_000_000_000);
            b.iter(|| rw.normalize(std::hint::black_box(t)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("single_memo", n), &front, |b, t| {
            b.iter_batched(
                || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
                |rw| rw.normalize(std::hint::black_box(t)).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }

    // Shape 2: many observers over one shared state — the win case.
    // A queue state with REMOVE history (so normalizing it takes real
    // work), queried `queries` times.
    for &queries in &[8usize, 32] {
        let n = 64;
        let state = queue_term(&spec, n, n / 2, 7);
        let observations: Vec<_> = (0..queries)
            .map(|k| {
                let op = if k % 2 == 0 { "FRONT" } else { "IS_EMPTY?" };
                sig.apply(op, vec![state.clone()]).unwrap()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("queries_plain", queries),
            &observations,
            |b, obs| {
                let rw = Rewriter::new(&spec).with_fuel(1_000_000_000);
                b.iter(|| {
                    obs.iter()
                        .map(|t| rw.normalize(std::hint::black_box(t)).unwrap().size())
                        .sum::<usize>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("queries_memo", queries),
            &observations,
            |b, obs| {
                b.iter_batched(
                    || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
                    |rw| {
                        obs.iter()
                            .map(|t| rw.normalize(std::hint::black_box(t)).unwrap().size())
                            .sum::<usize>()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
