//! EX-1 harness: rewriting throughput on the Queue axioms, and the cost
//! profile of the two observer shapes — `FRONT` (recurses the whole ADD
//! chain) vs `IS_EMPTY?` (answers in one step) — plus `REMOVE`-heavy
//! terms, whose normal forms rebuild the queue.
//!
//! Expected shape: `IS_EMPTY?` is O(1) in queue length; `FRONT` and
//! `REMOVE` normalization grow superlinearly in term size under the
//! derivation-tree reading (FRONT(ADD^n) re-derives emptiness of each
//! prefix) — exactly why one wants the *implementation* once access
//! patterns are known, while the spec stays the contract.

use adt_bench::workloads::queue_term;
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let spec = queue_spec();
    let rw = Rewriter::new(&spec).with_fuel(100_000_000);
    let sig = spec.sig();

    let mut group = c.benchmark_group("rewrite_queue");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900));

    for &n in &[8usize, 32, 128] {
        let chain = queue_term(&spec, n, 0, 7);
        group.throughput(Throughput::Elements(n as u64));

        let front = sig.apply("FRONT", vec![chain.clone()]).unwrap();
        group.bench_with_input(BenchmarkId::new("front", n), &front, |b, t| {
            b.iter(|| rw.normalize(std::hint::black_box(t)).unwrap());
        });

        let is_empty = sig.apply("IS_EMPTY?", vec![chain.clone()]).unwrap();
        group.bench_with_input(BenchmarkId::new("is_empty", n), &is_empty, |b, t| {
            b.iter(|| rw.normalize(std::hint::black_box(t)).unwrap());
        });

        let drain = queue_term(&spec, n, n, 7);
        group.bench_with_input(BenchmarkId::new("drain", n), &drain, |b, t| {
            b.iter(|| rw.normalize(std::hint::black_box(t)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
