//! EX-1 harness: rewriting throughput on the Queue axioms, and the cost
//! profile of the two observer shapes — `FRONT` (recurses the whole ADD
//! chain) vs `IS_EMPTY?` (answers in one step) — plus `REMOVE`-heavy
//! terms, whose normal forms rebuild the queue.
//!
//! Expected shape: `IS_EMPTY?` is O(1) in queue length; `FRONT` and
//! `REMOVE` normalization grow superlinearly in term size under the
//! derivation-tree reading (FRONT(ADD^n) re-derives emptiness of each
//! prefix) — exactly why one wants the *implementation* once access
//! patterns are known, while the spec stays the contract.

use adt_bench::harness::Group;
use adt_bench::workloads::queue_term;
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;

fn main() {
    let spec = queue_spec();
    let rw = Rewriter::new(&spec).with_fuel(100_000_000);
    let sig = spec.sig();

    let group = Group::new("rewrite_queue");

    for &n in &[8usize, 32, 128] {
        let chain = queue_term(&spec, n, 0, 7);

        let front = sig.apply("FRONT", vec![chain.clone()]).unwrap();
        group.bench(&format!("front/{n}"), || {
            rw.normalize(std::hint::black_box(&front)).unwrap()
        });

        let is_empty = sig.apply("IS_EMPTY?", vec![chain.clone()]).unwrap();
        group.bench(&format!("is_empty/{n}"), || {
            rw.normalize(std::hint::black_box(&is_empty)).unwrap()
        });

        let drain = queue_term(&spec, n, n, 7);
        group.bench(&format!("drain/{n}"), || {
            rw.normalize(std::hint::black_box(&drain)).unwrap()
        });
    }
}
