//! TB-1: "except for a significant loss in efficiency, the lack of an
//! implementation can be made completely transparent to the user" (§5).
//!
//! The same compiler-like symbol-table trace is executed two ways:
//!
//! * **symbolic** — against the bare axioms, by term rewriting (the
//!   paper's symbolic interpretation);
//! * **direct** — against the real `SymbolTable` (stack of chained hash
//!   arrays).
//!
//! The paper predicts direct execution wins by a large factor, and that
//! the gap *grows* with trace length (rewriting cost grows with term
//! size, the implementation's per-op cost is O(1) amortized).

use adt_bench::harness::Group;
use adt_bench::workloads::{symtab_term, symtab_trace, SymOp};
use adt_rewrite::Rewriter;
use adt_structures::specs::symboltable_spec;
use adt_structures::{AttrList, Ident, SymbolTable};

fn run_direct(trace: &[SymOp]) -> usize {
    let idents = ["ID_X", "ID_Y", "ID_Z"];
    let mut st: SymbolTable = SymbolTable::init();
    let attrs = AttrList::new().with("a", "1");
    let mut hits = 0;
    for op in trace {
        match op {
            SymOp::Enter => st.enter_block(),
            SymOp::Leave => {
                let _ = st.leave_block();
            }
            SymOp::Add(i) => st.add(Ident::new(idents[i % 3]), attrs.clone()),
            SymOp::Retrieve(i) => {
                if st.retrieve(&Ident::new(idents[i % 3])).is_ok() {
                    hits += 1;
                }
            }
        }
    }
    hits
}

fn main() {
    let spec = symboltable_spec();
    let group = Group::new("symbolic_vs_direct");

    for &len in &[16usize, 64, 256] {
        let trace = symtab_trace(len, 8, 0xC0FFEE);

        group.bench(&format!("direct/{len}"), || {
            run_direct(std::hint::black_box(&trace))
        });

        let (state, observers) = symtab_term(&spec, &trace);
        let rw = Rewriter::new(&spec).with_fuel(50_000_000);
        group.bench(&format!("symbolic/{len}"), || {
            let mut hits = 0usize;
            let state_nf = rw.normalize(std::hint::black_box(&state)).unwrap();
            let _ = state_nf;
            for obs in &observers {
                let nf = rw.normalize(obs).unwrap();
                if !nf.is_error() {
                    hits += 1;
                }
            }
            hits
        });
    }
}
