//! TB-2: the cost of a premature representation choice (§5).
//!
//! "The premature choice of a storage structure and set of access
//! routines is a common cause of inefficiencies in software." Both
//! representations satisfy the same Array specification (axioms 17–20);
//! only the algebraic interface lets them be swapped after the access
//! pattern is known. Measured: `n` declarations followed by `4n` lookups
//! over `n` distinct identifiers — the paper's symbol-table access
//! pattern, where lookups dominate.
//!
//! Expected shape: the linear array wins or ties at tiny sizes (no
//! hashing overhead, cache-friendly), and loses by a growing factor as
//! `n` grows past the bucket count — the crossover the paper warns can
//! only be exploited if the representation was not frozen early.

use adt_bench::harness::Group;
use adt_bench::workloads::{ident_names, Stream};
use adt_structures::{BstArray, HashArray, Ident, LinearArray, ScopeArray};

fn workload<A: ScopeArray<u32>>(names: &[Ident], seed: u64) -> u32 {
    let mut arr = A::empty();
    for (i, id) in names.iter().enumerate() {
        arr.assign(id.clone(), i as u32);
    }
    let mut s = Stream::new(seed);
    let mut acc = 0u32;
    for _ in 0..names.len() * 4 {
        let id = &names[s.below(names.len())];
        if let Some(v) = arr.read(id) {
            acc = acc.wrapping_add(*v);
        }
    }
    acc
}

fn main() {
    let group = Group::new("array_representations").samples(20);

    for &n in &[4usize, 16, 64, 256, 1024] {
        let names: Vec<Ident> = ident_names(n)
            .iter()
            .map(|s| Ident::new(s.as_str()))
            .collect();
        group.bench(&format!("hash/{n}"), || {
            workload::<HashArray<u32>>(std::hint::black_box(&names), 1)
        });
        group.bench(&format!("linear/{n}"), || {
            workload::<LinearArray<u32>>(std::hint::black_box(&names), 1)
        });
        group.bench(&format!("bst/{n}"), || {
            workload::<BstArray<u32>>(std::hint::black_box(&names), 1)
        });
    }
}
