//! TB-2: the cost of a premature representation choice (§5).
//!
//! "The premature choice of a storage structure and set of access
//! routines is a common cause of inefficiencies in software." Both
//! representations satisfy the same Array specification (axioms 17–20);
//! only the algebraic interface lets them be swapped after the access
//! pattern is known. Measured: `n` declarations followed by `4n` lookups
//! over `n` distinct identifiers — the paper's symbol-table access
//! pattern, where lookups dominate.
//!
//! Expected shape: the linear array wins or ties at tiny sizes (no
//! hashing overhead, cache-friendly), and loses by a growing factor as
//! `n` grows past the bucket count — the crossover the paper warns can
//! only be exploited if the representation was not frozen early.

use adt_bench::workloads::{ident_names, Stream};
use adt_structures::{BstArray, HashArray, Ident, LinearArray, ScopeArray};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload<A: ScopeArray<u32>>(names: &[Ident], seed: u64) -> u32 {
    let mut arr = A::empty();
    for (i, id) in names.iter().enumerate() {
        arr.assign(id.clone(), i as u32);
    }
    let mut s = Stream::new(seed);
    let mut acc = 0u32;
    for _ in 0..names.len() * 4 {
        let id = &names[s.below(names.len())];
        if let Some(v) = arr.read(id) {
            acc = acc.wrapping_add(*v);
        }
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_representations");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900));

    for &n in &[4usize, 16, 64, 256, 1024] {
        let names: Vec<Ident> = ident_names(n)
            .iter()
            .map(|s| Ident::new(s.as_str()))
            .collect();
        group.throughput(Throughput::Elements((n * 5) as u64));
        group.bench_with_input(BenchmarkId::new("hash", n), &names, |b, names| {
            b.iter(|| workload::<HashArray<u32>>(std::hint::black_box(names), 1));
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &names, |b, names| {
            b.iter(|| workload::<LinearArray<u32>>(std::hint::black_box(names), 1));
        });
        group.bench_with_input(BenchmarkId::new("bst", n), &names, |b, names| {
            b.iter(|| workload::<BstArray<u32>>(std::hint::black_box(names), 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
