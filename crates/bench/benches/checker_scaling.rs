//! TB-4: the sufficient-completeness checker is mechanizable and cheap
//! (§3 promises a *system* that verifies completeness; this measures that
//! the check scales to specification sizes far beyond anything in the
//! paper).
//!
//! Synthetic family: one sort with `C` constructors (one recursive), `O`
//! observers, each fully case-covered — so the checker does its full
//! partition analysis on every operation. Expected shape: roughly linear
//! in `O × C`.
//!
//! The `parallel` section measures the work-pool checker
//! (`check_completeness_jobs` / `check_consistency_jobs`) on a 64-operation
//! synthetic spec at 1 vs 4 workers and prints the speedup. On a machine
//! with ≥4 cores the combined speedup is expected (and asserted) to be
//! ≥2×; on smaller machines the numbers are reported but not enforced,
//! since the hardware cannot exhibit the parallelism.

use adt_bench::harness::Group;
use adt_bench::workloads::synthetic_spec as synthetic;
use adt_check::{check_completeness, check_completeness_jobs, check_consistency_jobs, ProbeConfig};

fn main() {
    let group = Group::new("checker_scaling");

    for &(ctors, obs) in &[(2usize, 4usize), (4, 16), (8, 32), (16, 64)] {
        let spec = synthetic(ctors, obs);
        group.bench(&format!("complete/{ctors}ctors_{obs}obs"), || {
            let report = check_completeness(std::hint::black_box(&spec));
            assert!(report.is_sufficiently_complete());
            report.coverage().len()
        });
    }

    // The incomplete case (witness synthesis) on the paper's own example.
    let incomplete = adt_structures::specs::queue_spec_incomplete();
    group.bench("incomplete/queue_minus_axiom4", || {
        let report = check_completeness(std::hint::black_box(&incomplete));
        assert_eq!(report.missing_case_count(), 1);
        report.missing_case_count()
    });

    // The multi-threaded variant: one synthetic spec with 64 operations,
    // checked with 1 worker and with 4. Probing is capped so the run stays
    // within the bench budget; the per-item work (pattern analysis, pair
    // classification, probe normalization) is what the pool distributes.
    let spec = synthetic(8, 64);
    let probe = ProbeConfig {
        samples: 64,
        ..ProbeConfig::default()
    };
    let check_all = |jobs: usize| {
        let comp = check_completeness_jobs(&spec, jobs);
        assert!(comp.is_sufficiently_complete());
        let cons = check_consistency_jobs(&spec, &probe, jobs);
        (comp.coverage().len(), cons.pairs_checked())
    };
    let seq = group.bench("parallel/64ops_jobs1", || check_all(1));
    let par = group.bench("parallel/64ops_jobs4", || check_all(4));
    let speedup = par.speedup_over(&seq);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("checker_scaling/parallel speedup at 4 workers: {speedup:.2}x ({cores} core(s))");
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x speedup at 4 workers on {cores} cores, got {speedup:.2}x"
        );
    }
}
