//! TB-4: the sufficient-completeness checker is mechanizable and cheap
//! (§3 promises a *system* that verifies completeness; this measures that
//! the check scales to specification sizes far beyond anything in the
//! paper).
//!
//! Synthetic family: one sort with `C` constructors (one recursive), `O`
//! observers, each fully case-covered — so the checker does its full
//! partition analysis on every operation. Expected shape: roughly linear
//! in `O × C`.

use adt_check::check_completeness;
use adt_core::{Spec, SpecBuilder, Term};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a complete synthetic spec with `ctors` constructors and `obs`
/// observers.
fn synthetic(ctors: usize, obs: usize) -> Spec {
    let mut b = SpecBuilder::new("Synthetic");
    let s = b.sort("S");
    let mut ctor_ids = Vec::new();
    // One nullary base constructor plus `ctors-1` unary ones.
    ctor_ids.push((b.ctor("C0", [], s), 0usize));
    for k in 1..ctors {
        ctor_ids.push((b.ctor(&format!("C{k}"), [s], s), 1));
    }
    let x = Term::Var(b.var("x", s));
    for o in 0..obs {
        let op = b.op(&format!("OBS{o}?"), [s], b.bool_sort());
        for (k, &(ctor, arity)) in ctor_ids.iter().enumerate() {
            let lhs = if arity == 0 {
                b.app(op, [b.app(ctor, [])])
            } else {
                b.app(op, [b.app(ctor, [x.clone()])])
            };
            let rhs = if (o + k) % 2 == 0 { b.tt() } else { b.ff() };
            b.axiom(format!("a{o}_{k}"), lhs, rhs);
        }
    }
    b.build().expect("synthetic specs are well-formed")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_scaling");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900));

    for &(ctors, obs) in &[(2usize, 4usize), (4, 16), (8, 32), (16, 64)] {
        let spec = synthetic(ctors, obs);
        let label = format!("{ctors}ctors_{obs}obs");
        group.bench_with_input(BenchmarkId::new("complete", &label), &spec, |b, spec| {
            b.iter(|| {
                let report = check_completeness(std::hint::black_box(spec));
                assert!(report.is_sufficiently_complete());
                report.coverage().len()
            });
        });
    }

    // The incomplete case (witness synthesis) on the paper's own example.
    let incomplete = adt_structures::specs::queue_spec_incomplete();
    group.bench_with_input(
        BenchmarkId::new("incomplete", "queue_minus_axiom4"),
        &incomplete,
        |b, spec| {
            b.iter(|| {
                let report = check_completeness(std::hint::black_box(spec));
                assert_eq!(report.missing_case_count(), 1);
                report.missing_case_count()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
