//! # adt-bench — workload generators and a dependency-free harness
//!
//! The benches under `benches/` regenerate every measured row of
//! EXPERIMENTS.md; this library holds the deterministic workload
//! generators they share, so a bench and its corresponding test exercise
//! identical operation sequences, plus the [`harness`] module — a small
//! `std`-only timing loop that replaces the external Criterion
//! dependency so the whole workspace builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness {
    //! A minimal micro-benchmark harness over [`std::time::Instant`].
    //!
    //! Each measurement warms the routine up, picks an iteration count
    //! that fills a per-sample time budget, takes a fixed number of
    //! samples and reports the *median* per-iteration time (medians are
    //! robust to scheduler noise, which matters more than statistical
    //! power for the factor-level comparisons EXPERIMENTS.md makes).
    //!
    //! Set `ADT_BENCH_QUICK=1` to shrink the budgets ~10× for smoke runs.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// One completed measurement.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Measurement {
        /// Median wall-clock time of one routine invocation.
        pub per_iter: Duration,
        /// Iterations per sample the harness settled on.
        pub iters: u64,
        /// Number of samples taken.
        pub samples: u32,
    }

    impl Measurement {
        /// `self` as a speedup factor over `other` (>1 means `self` is
        /// faster).
        pub fn speedup_over(&self, other: &Measurement) -> f64 {
            other.per_iter.as_secs_f64() / self.per_iter.as_secs_f64().max(f64::MIN_POSITIVE)
        }
    }

    /// A named group of related measurements, printed as
    /// `group/label  <time>/iter`.
    #[derive(Debug)]
    pub struct Group {
        name: String,
        samples: u32,
        warmup: Duration,
        budget: Duration,
    }

    impl Group {
        /// Starts a group with the default budget (10 samples over
        /// ~900 ms, after ~200 ms of warm-up — the same budget the old
        /// Criterion configuration used).
        pub fn new(name: &str) -> Self {
            let quick = std::env::var_os("ADT_BENCH_QUICK").is_some_and(|v| v != "0");
            let (warmup, budget) = if quick {
                (Duration::from_millis(20), Duration::from_millis(90))
            } else {
                (Duration::from_millis(200), Duration::from_millis(900))
            };
            Group {
                name: name.to_string(),
                samples: 10,
                warmup,
                budget,
            }
        }

        /// Overrides the number of samples.
        #[must_use]
        pub fn samples(mut self, samples: u32) -> Self {
            self.samples = samples.max(1);
            self
        }

        /// Overrides the warm-up and measurement budgets (mainly for
        /// tests and one-off quick runs).
        #[must_use]
        pub fn budget(mut self, warmup: Duration, budget: Duration) -> Self {
            self.warmup = warmup;
            self.budget = budget;
            self
        }

        /// Measures `routine`, prints one line, and returns the
        /// measurement.
        pub fn bench<R>(&self, label: &str, mut routine: impl FnMut() -> R) -> Measurement {
            // Warm-up doubles as the iteration-count estimate.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                black_box(routine());
                warm_iters += 1;
            }
            let est = warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX);
            let per_sample = self.budget / self.samples;
            let iters = (per_sample.as_nanos() / est.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64;

            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                times.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
            }
            self.report(label, &mut times, iters)
        }

        /// Measures `routine` over inputs produced per-iteration by
        /// `setup`; only the routine is timed (the replacement for
        /// Criterion's `iter_batched`).
        pub fn bench_batched<S, R>(
            &self,
            label: &str,
            mut setup: impl FnMut() -> S,
            mut routine: impl FnMut(S) -> R,
        ) -> Measurement {
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            let mut warm_spent = Duration::ZERO;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                warm_spent += t.elapsed();
                warm_iters += 1;
            }
            let est = warm_spent / u32::try_from(warm_iters).unwrap_or(u32::MAX);
            let per_sample = self.budget / self.samples;
            let iters = (per_sample.as_nanos() / est.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64;

            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                times.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
            }
            self.report(label, &mut times, iters)
        }

        fn report(&self, label: &str, times: &mut [Duration], iters: u64) -> Measurement {
            times.sort_unstable();
            let per_iter = times[times.len() / 2];
            println!(
                "{}/{label:<28} {:>12}/iter   ({} samples x {iters} iters)",
                self.name,
                fmt_duration(per_iter),
                times.len(),
            );
            Measurement {
                per_iter,
                iters,
                samples: self.samples,
            }
        }
    }

    /// Renders a duration with an adaptive unit (`ns`, `µs`, `ms`, `s`).
    pub fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1_000_000.0)
        } else {
            format!("{:.2} s", ns as f64 / 1_000_000_000.0)
        }
    }
}

pub mod workloads {
    //! Deterministic pseudo-random workloads over symbol tables, arrays
    //! and queues.

    use adt_core::{Spec, Term};

    /// One symbol-table operation of a compiler-like trace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum SymOp {
        /// Open a scope.
        Enter,
        /// Close a scope (generated only when one is open).
        Leave,
        /// Declare identifier `idx` in the current scope.
        Add(usize),
        /// Look the identifier up.
        Retrieve(usize),
    }

    /// A deterministic splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct Stream(u64);

    impl Stream {
        /// Creates a stream from a seed.
        pub fn new(seed: u64) -> Self {
            Stream(seed)
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Next value below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Generates a compiler-like symbol-table trace: `len` operations,
    /// roughly 50% ADD, 30% RETRIEVE, 10% ENTER, 10% LEAVE, drawn from
    /// `idents` distinct identifiers. Block structure is kept well formed
    /// (never leaves the outermost block).
    pub fn symtab_trace(len: usize, idents: usize, seed: u64) -> Vec<SymOp> {
        let mut s = Stream::new(seed);
        let mut depth = 1usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let roll = s.below(10);
            let op = match roll {
                0 => {
                    depth += 1;
                    SymOp::Enter
                }
                1 if depth > 1 => {
                    depth -= 1;
                    SymOp::Leave
                }
                2..=6 => SymOp::Add(s.below(idents)),
                _ => SymOp::Retrieve(s.below(idents)),
            };
            out.push(op);
        }
        out
    }

    /// Builds the ground Symboltable *term* corresponding to the
    /// state-building prefix of a trace (ENTER/ADD/LEAVE; RETRIEVE ops are
    /// returned separately as observer applications on the final state).
    ///
    /// The specification's sample identifiers stand in for the trace's
    /// identifier indices (reduced modulo 3) and `ATTR_1` is used for
    /// every declaration — the shape of the term, not the payload, is
    /// what drives the rewriting cost.
    pub fn symtab_term(spec: &Spec, trace: &[SymOp]) -> (Term, Vec<Term>) {
        let sig = spec.sig();
        let idents = ["ID_X", "ID_Y", "ID_Z"];
        let mut state = sig.apply("INIT", vec![]).expect("INIT exists");
        let mut depth = 1usize;
        let mut observers = Vec::new();
        let attr = sig.apply("ATTR_1", vec![]).expect("ATTR_1 exists");
        for op in trace {
            match op {
                SymOp::Enter => {
                    depth += 1;
                    state = sig.apply("ENTERBLOCK", vec![state]).expect("well-sorted");
                }
                SymOp::Leave => {
                    if depth > 1 {
                        depth -= 1;
                        state = sig.apply("LEAVEBLOCK", vec![state]).expect("well-sorted");
                    }
                }
                SymOp::Add(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    state = sig
                        .apply("ADD", vec![state, id, attr.clone()])
                        .expect("well-sorted");
                }
                SymOp::Retrieve(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    observers.push((id, ()));
                }
            }
        }
        let observers = observers
            .into_iter()
            .map(|(id, ())| {
                sig.apply("RETRIEVE", vec![state.clone(), id])
                    .expect("well-sorted")
            })
            .collect();
        (state, observers)
    }

    /// Builds a ground Queue term of `adds` enqueues followed by
    /// `removes` dequeues.
    pub fn queue_term(spec: &Spec, adds: usize, removes: usize, seed: u64) -> Term {
        let sig = spec.sig();
        let items = ["A", "B", "C"];
        let mut s = Stream::new(seed);
        let mut t = sig.apply("NEW", vec![]).expect("NEW exists");
        for _ in 0..adds {
            let item = sig.apply(items[s.below(3)], vec![]).expect("item exists");
            t = sig.apply("ADD", vec![t, item]).expect("well-sorted");
        }
        for _ in 0..removes {
            t = sig.apply("REMOVE", vec![t]).expect("well-sorted");
        }
        t
    }

    /// Identifier names for array benchmarks: `v0`, `v1`, ….
    pub fn ident_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::*;
    use adt_rewrite::Rewriter;
    use adt_structures::specs::{queue_spec, symboltable_spec};

    #[test]
    fn streams_are_deterministic() {
        let mut a = Stream::new(7);
        let mut b = Stream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Stream::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn traces_keep_block_structure_well_formed() {
        let trace = symtab_trace(500, 10, 3);
        assert_eq!(trace.len(), 500);
        let mut depth = 1i64;
        for op in &trace {
            match op {
                SymOp::Enter => depth += 1,
                SymOp::Leave => depth -= 1,
                _ => {}
            }
            assert!(depth >= 1);
        }
    }

    #[test]
    fn symtab_terms_normalize() {
        let spec = symboltable_spec();
        let trace = symtab_trace(60, 5, 11);
        let (state, observers) = symtab_term(&spec, &trace);
        let rw = Rewriter::new(&spec);
        // The state normalizes to a constructor term (LEAVEBLOCKs fold away).
        let state_nf = rw.normalize(&state).unwrap();
        assert!(state_nf.is_constructor_term(spec.sig()));
        for obs in observers {
            let nf = rw.normalize(&obs).unwrap();
            assert!(nf.is_constructor_term(spec.sig()) || nf.is_error());
        }
    }

    #[test]
    fn queue_terms_normalize_to_values_or_error() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        for (adds, removes) in [(0, 0), (5, 2), (3, 5), (20, 20)] {
            let t = queue_term(&spec, adds, removes, 42);
            let nf = rw.normalize(&t).unwrap();
            assert!(nf.is_constructor_term(spec.sig()));
        }
    }

    #[test]
    fn ident_names_are_distinct() {
        let names = ident_names(100);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 100);
    }

    mod harness {
        use crate::harness::{fmt_duration, Group};
        use std::time::Duration;

        fn quick_group(name: &str) -> Group {
            Group::new(name)
                .samples(3)
                .budget(Duration::from_millis(2), Duration::from_millis(9))
        }

        #[test]
        fn bench_measures_and_orders_work() {
            let g = quick_group("harness_test");
            let fast = g.bench("fast", || std::hint::black_box(1u64 + 1));
            let slow = g.bench("slow", || {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                acc
            });
            assert!(fast.iters >= 1 && slow.iters >= 1);
            assert!(slow.per_iter >= fast.per_iter);
            assert!(slow.speedup_over(&fast) <= 1.0 + f64::EPSILON);
        }

        #[test]
        fn bench_batched_runs_setup_per_iteration() {
            let g = quick_group("harness_test");
            let m = g.bench_batched(
                "batched",
                || vec![1u32, 2, 3],
                |v| v.into_iter().sum::<u32>(),
            );
            assert!(m.per_iter > Duration::ZERO);
        }

        #[test]
        fn durations_format_with_adaptive_units() {
            assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
            assert_eq!(fmt_duration(Duration::from_nanos(2_500)), "2.50 µs");
            assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
            assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        }
    }
}
