//! # adt-bench — workload generators and a dependency-free harness
//!
//! The benches under `benches/` regenerate every measured row of
//! EXPERIMENTS.md; this library holds the deterministic workload
//! generators they share, so a bench and its corresponding test exercise
//! identical operation sequences, plus the [`harness`] module — a small
//! `std`-only timing loop that replaces the external Criterion
//! dependency so the whole workspace builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness {
    //! A minimal micro-benchmark harness over [`std::time::Instant`].
    //!
    //! Each measurement warms the routine up, picks an iteration count
    //! that fills a per-sample time budget, takes a fixed number of
    //! samples and reports the *median* per-iteration time (medians are
    //! robust to scheduler noise, which matters more than statistical
    //! power for the factor-level comparisons EXPERIMENTS.md makes).
    //!
    //! Set `ADT_BENCH_QUICK=1` to shrink the budgets ~10× for smoke runs.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// One completed measurement.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Measurement {
        /// Median wall-clock time of one routine invocation.
        pub per_iter: Duration,
        /// Iterations per sample the harness settled on.
        pub iters: u64,
        /// Number of samples taken.
        pub samples: u32,
    }

    impl Measurement {
        /// `self` as a speedup factor over `other` (>1 means `self` is
        /// faster).
        pub fn speedup_over(&self, other: &Measurement) -> f64 {
            other.per_iter.as_secs_f64() / self.per_iter.as_secs_f64().max(f64::MIN_POSITIVE)
        }
    }

    /// A named group of related measurements, printed as
    /// `group/label  <time>/iter`.
    #[derive(Debug)]
    pub struct Group {
        name: String,
        samples: u32,
        warmup: Duration,
        budget: Duration,
    }

    impl Group {
        /// Starts a group with the default budget (10 samples over
        /// ~900 ms, after ~200 ms of warm-up — the same budget the old
        /// Criterion configuration used).
        pub fn new(name: &str) -> Self {
            let quick = std::env::var_os("ADT_BENCH_QUICK").is_some_and(|v| v != "0");
            let (warmup, budget) = if quick {
                (Duration::from_millis(20), Duration::from_millis(90))
            } else {
                (Duration::from_millis(200), Duration::from_millis(900))
            };
            Group {
                name: name.to_string(),
                samples: 10,
                warmup,
                budget,
            }
        }

        /// Overrides the number of samples.
        #[must_use]
        pub fn samples(mut self, samples: u32) -> Self {
            self.samples = samples.max(1);
            self
        }

        /// Overrides the warm-up and measurement budgets (mainly for
        /// tests and one-off quick runs).
        #[must_use]
        pub fn budget(mut self, warmup: Duration, budget: Duration) -> Self {
            self.warmup = warmup;
            self.budget = budget;
            self
        }

        /// Measures `routine`, prints one line, and returns the
        /// measurement.
        pub fn bench<R>(&self, label: &str, mut routine: impl FnMut() -> R) -> Measurement {
            // Warm-up doubles as the iteration-count estimate.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                black_box(routine());
                warm_iters += 1;
            }
            let est = warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX);
            let per_sample = self.budget / self.samples;
            let iters = (per_sample.as_nanos() / est.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64;

            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                times.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
            }
            self.report(label, &mut times, iters)
        }

        /// Measures `routine` over inputs produced per-iteration by
        /// `setup`; only the routine is timed (the replacement for
        /// Criterion's `iter_batched`).
        pub fn bench_batched<S, R>(
            &self,
            label: &str,
            mut setup: impl FnMut() -> S,
            mut routine: impl FnMut(S) -> R,
        ) -> Measurement {
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            let mut warm_spent = Duration::ZERO;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                warm_spent += t.elapsed();
                warm_iters += 1;
            }
            let est = warm_spent / u32::try_from(warm_iters).unwrap_or(u32::MAX);
            let per_sample = self.budget / self.samples;
            let iters = (per_sample.as_nanos() / est.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64;

            let mut times = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                times.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
            }
            self.report(label, &mut times, iters)
        }

        /// Measures two routines over the same per-iteration inputs by
        /// strict alternation: sample *k* of `a` runs immediately before
        /// sample *k* of `b`, so slow drift (thermal throttling, noisy
        /// co-tenants) lands on both sides equally. Use this instead of
        /// two [`Group::bench_batched`] calls whenever the effect being
        /// measured is smaller than run-to-run drift — an A/B delta of a
        /// few percent is invisible to back-to-back rows but survives
        /// pairing.
        pub fn bench_paired<S, R>(
            &self,
            label_a: &str,
            label_b: &str,
            mut setup: impl FnMut() -> S,
            mut a: impl FnMut(S) -> R,
            mut b: impl FnMut(S) -> R,
        ) -> (Measurement, Measurement) {
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            let mut warm_spent = Duration::ZERO;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                let t = Instant::now();
                black_box(a(setup()));
                black_box(b(setup()));
                warm_spent += t.elapsed();
                warm_iters += 1;
            }
            // `est` covers one a+b pair, so the shared budget splits fairly.
            let est = warm_spent / u32::try_from(warm_iters).unwrap_or(u32::MAX);
            let per_sample = self.budget / self.samples;
            let iters = (per_sample.as_nanos() / est.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64;

            let mut times_a = Vec::with_capacity(self.samples as usize);
            let mut times_b = Vec::with_capacity(self.samples as usize);
            for _ in 0..self.samples {
                // Alternate at iteration granularity — a, b, a, b — so a
                // burst of noise inside one sample still hits both sides.
                let mut spent_a = Duration::ZERO;
                let mut spent_b = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let t = Instant::now();
                    black_box(a(input));
                    spent_a += t.elapsed();
                    let input = setup();
                    let t = Instant::now();
                    black_box(b(input));
                    spent_b += t.elapsed();
                }
                times_a.push(spent_a / u32::try_from(iters).unwrap_or(u32::MAX));
                times_b.push(spent_b / u32::try_from(iters).unwrap_or(u32::MAX));
            }
            (
                self.report(label_a, &mut times_a, iters),
                self.report(label_b, &mut times_b, iters),
            )
        }

        fn report(&self, label: &str, times: &mut [Duration], iters: u64) -> Measurement {
            times.sort_unstable();
            let per_iter = times[times.len() / 2];
            println!(
                "{}/{label:<28} {:>12}/iter   ({} samples x {iters} iters)",
                self.name,
                fmt_duration(per_iter),
                times.len(),
            );
            Measurement {
                per_iter,
                iters,
                samples: self.samples,
            }
        }
    }

    /// Renders a duration with an adaptive unit (`ns`, `µs`, `ms`, `s`).
    pub fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1_000_000.0)
        } else {
            format!("{:.2} s", ns as f64 / 1_000_000_000.0)
        }
    }
}

pub mod report {
    //! Machine-readable benchmark reports (`BENCH_rewrite.json`).
    //!
    //! The runner binary (`cargo run -p adt-bench`) measures a fixed set
    //! of benchmarks and emits them in a small, hand-rolled JSON dialect —
    //! flat enough that this module can also parse it back without a JSON
    //! dependency. Two readers exist: the runner's `--baseline` regression
    //! gate (CI), and humans diffing the committed baseline at the repo
    //! root.

    use std::fmt::Write as _;

    /// One measured benchmark row.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchRecord {
        /// Benchmark group (`"memoization"`, `"rewrite_queue"`, …).
        pub group: String,
        /// Label within the group (`"front/128"`, …).
        pub name: String,
        /// Median per-iteration time of the current engine, nanoseconds.
        pub median_ns: u64,
        /// Median of the pre-arena engine, if this file carries a
        /// before/after comparison.
        pub before_ns: Option<u64>,
        /// Iterations per sample the harness settled on.
        pub iters: u64,
        /// Samples taken.
        pub samples: u32,
    }

    impl BenchRecord {
        /// `before_ns / median_ns`, if a before measurement is present.
        pub fn speedup(&self) -> Option<f64> {
            self.before_ns
                .map(|b| b as f64 / (self.median_ns.max(1)) as f64)
        }

        /// The `group/name` key used for baseline comparisons.
        pub fn key(&self) -> String {
            format!("{}/{}", self.group, self.name)
        }
    }

    /// A full report: schema tag, measurement profile, rows.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchReport {
        /// Schema identifier (`"adt-bench/v1"`).
        pub schema: String,
        /// `"full"` or `"quick"` (the `ADT_BENCH_QUICK` profile).
        pub profile: String,
        /// Measured rows.
        pub benchmarks: Vec<BenchRecord>,
    }

    impl BenchReport {
        /// Current schema tag.
        pub const SCHEMA: &'static str = "adt-bench/v1";

        /// Creates an empty report for the given profile.
        pub fn new(profile: &str) -> Self {
            BenchReport {
                schema: Self::SCHEMA.to_string(),
                profile: profile.to_string(),
                benchmarks: Vec::new(),
            }
        }

        /// Looks a row up by `group/name` key.
        pub fn find(&self, key: &str) -> Option<&BenchRecord> {
            self.benchmarks.iter().find(|b| b.key() == key)
        }

        /// Copies `before.median_ns` into `self.before_ns` for every row
        /// present in both reports (the before/after merge the committed
        /// baseline carries).
        pub fn merge_before(&mut self, before: &BenchReport) {
            for row in &mut self.benchmarks {
                if let Some(prev) = before
                    .benchmarks
                    .iter()
                    .find(|b| b.group == row.group && b.name == row.name)
                {
                    row.before_ns = Some(prev.median_ns);
                }
            }
        }

        /// Renders the report as pretty-printed JSON.
        pub fn to_json(&self) -> String {
            let mut out = String::new();
            out.push_str("{\n");
            let _ = writeln!(out, "  \"schema\": \"{}\",", escape(&self.schema));
            let _ = writeln!(out, "  \"profile\": \"{}\",", escape(&self.profile));
            out.push_str("  \"benchmarks\": [\n");
            for (i, b) in self.benchmarks.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"group\": \"{}\",", escape(&b.group));
                let _ = writeln!(out, "      \"name\": \"{}\",", escape(&b.name));
                if let Some(before) = b.before_ns {
                    let _ = writeln!(out, "      \"before_ns\": {before},");
                }
                let _ = writeln!(out, "      \"median_ns\": {},", b.median_ns);
                if let Some(speedup) = b.speedup() {
                    let _ = writeln!(out, "      \"speedup\": {speedup:.2},");
                }
                let _ = writeln!(out, "      \"iters\": {},", b.iters);
                let _ = writeln!(out, "      \"samples\": {}", b.samples);
                out.push_str(if i + 1 == self.benchmarks.len() {
                    "    }\n"
                } else {
                    "    },\n"
                });
            }
            out.push_str("  ]\n}\n");
            out
        }

        /// Parses a report previously produced by [`BenchReport::to_json`].
        ///
        /// # Errors
        ///
        /// Returns a human-readable message for malformed input or an
        /// unknown schema tag.
        pub fn from_json(text: &str) -> Result<Self, String> {
            let value = json::parse(text)?;
            let obj = value.as_object().ok_or("top level is not an object")?;
            let schema = json::get_str(obj, "schema")?;
            if schema != Self::SCHEMA {
                return Err(format!(
                    "unknown schema `{schema}` (expected `{}`)",
                    Self::SCHEMA
                ));
            }
            let profile = json::get_str(obj, "profile")?;
            let rows = json::get(obj, "benchmarks")?
                .as_array()
                .ok_or("`benchmarks` is not an array")?;
            let mut benchmarks = Vec::with_capacity(rows.len());
            for row in rows {
                let row = row.as_object().ok_or("benchmark row is not an object")?;
                benchmarks.push(BenchRecord {
                    group: json::get_str(row, "group")?,
                    name: json::get_str(row, "name")?,
                    median_ns: json::get_u64(row, "median_ns")?,
                    before_ns: json::get(row, "before_ns")
                        .ok()
                        .and_then(json::Value::as_u64),
                    iters: json::get_u64(row, "iters")?,
                    samples: u32::try_from(json::get_u64(row, "samples")?)
                        .map_err(|_| "`samples` out of range".to_string())?,
                });
            }
            Ok(BenchReport {
                schema,
                profile,
                benchmarks,
            })
        }
    }

    /// One benchmark that got slower than the baseline allows.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// `group/name` of the offending benchmark.
        pub key: String,
        /// Baseline median, nanoseconds.
        pub baseline_ns: u64,
        /// Fresh median, nanoseconds.
        pub fresh_ns: u64,
        /// `fresh / baseline`.
        pub factor: f64,
    }

    /// Compares a fresh run against a committed baseline: every benchmark
    /// present in both whose fresh median exceeds `max_regress ×` the
    /// baseline median is reported. Benchmarks present in only one report
    /// are ignored (adding or retiring a benchmark is not a regression).
    pub fn regressions(
        fresh: &BenchReport,
        baseline: &BenchReport,
        max_regress: f64,
    ) -> Vec<Regression> {
        let mut out = Vec::new();
        for f in &fresh.benchmarks {
            let Some(b) = baseline.find(&f.key()) else {
                continue;
            };
            let factor = f.median_ns as f64 / b.median_ns.max(1) as f64;
            if factor > max_regress {
                out.push(Regression {
                    key: f.key(),
                    baseline_ns: b.median_ns,
                    fresh_ns: f.median_ns,
                    factor,
                });
            }
        }
        out
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if (c as u32) < 0x20 => vec![' '],
                c => vec![c],
            })
            .collect()
    }

    mod json {
        //! A parser for the JSON subset [`super::BenchReport::to_json`]
        //! emits: objects, arrays, strings without exotic escapes,
        //! unsigned/float numbers.

        use std::collections::BTreeMap;

        #[derive(Debug, Clone, PartialEq)]
        pub enum Value {
            Object(BTreeMap<String, Value>),
            Array(Vec<Value>),
            String(String),
            Number(f64),
        }

        impl Value {
            pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
                match self {
                    Value::Object(m) => Some(m),
                    _ => None,
                }
            }

            pub fn as_array(&self) -> Option<&Vec<Value>> {
                match self {
                    Value::Array(a) => Some(a),
                    _ => None,
                }
            }

            pub fn as_u64(&self) -> Option<u64> {
                match self {
                    Value::Number(n) if *n >= 0.0 => Some(*n as u64),
                    _ => None,
                }
            }
        }

        pub fn get<'a>(
            obj: &'a BTreeMap<String, Value>,
            key: &str,
        ) -> Result<&'a Value, String> {
            obj.get(key).ok_or_else(|| format!("missing key `{key}`"))
        }

        pub fn get_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
            match get(obj, key)? {
                Value::String(s) => Ok(s.clone()),
                _ => Err(format!("`{key}` is not a string")),
            }
        }

        pub fn get_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
            get(obj, key)?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not an unsigned number"))
        }

        pub fn parse(text: &str) -> Result<Value, String> {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            let v = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(format!("trailing input at byte {}", p.pos));
            }
            Ok(v)
        }

        struct Parser<'a> {
            bytes: &'a [u8],
            pos: usize,
        }

        impl Parser<'_> {
            fn skip_ws(&mut self) {
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_whitespace())
                {
                    self.pos += 1;
                }
            }

            fn peek(&mut self) -> Result<u8, String> {
                self.skip_ws();
                self.bytes
                    .get(self.pos)
                    .copied()
                    .ok_or_else(|| "unexpected end of input".to_string())
            }

            fn expect(&mut self, b: u8) -> Result<(), String> {
                let got = self.peek()?;
                if got != b {
                    return Err(format!(
                        "expected `{}` at byte {}, found `{}`",
                        b as char, self.pos, got as char
                    ));
                }
                self.pos += 1;
                Ok(())
            }

            fn value(&mut self) -> Result<Value, String> {
                match self.peek()? {
                    b'{' => self.object(),
                    b'[' => self.array(),
                    b'"' => Ok(Value::String(self.string()?)),
                    b'0'..=b'9' | b'-' => self.number(),
                    other => Err(format!(
                        "unexpected `{}` at byte {}",
                        other as char, self.pos
                    )),
                }
            }

            fn object(&mut self) -> Result<Value, String> {
                self.expect(b'{')?;
                let mut map = BTreeMap::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let value = self.value()?;
                    map.insert(key, value);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        other => {
                            return Err(format!(
                                "expected `,` or `}}` at byte {}, found `{}`",
                                self.pos, other as char
                            ))
                        }
                    }
                }
            }

            fn array(&mut self) -> Result<Value, String> {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(format!(
                                "expected `,` or `]` at byte {}, found `{}`",
                                self.pos, other as char
                            ))
                        }
                    }
                }
            }

            fn string(&mut self) -> Result<String, String> {
                self.expect(b'"')?;
                let mut out = String::new();
                loop {
                    match self.bytes.get(self.pos) {
                        None => return Err("unterminated string".to_string()),
                        Some(b'"') => {
                            self.pos += 1;
                            return Ok(out);
                        }
                        Some(b'\\') => {
                            let escaped = self
                                .bytes
                                .get(self.pos + 1)
                                .ok_or("unterminated escape")?;
                            match escaped {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                other => {
                                    return Err(format!(
                                        "unsupported escape `\\{}`",
                                        *other as char
                                    ))
                                }
                            }
                            self.pos += 2;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8 sequences pass through
                            // byte-by-byte; the input was a valid &str.
                            let start = self.pos;
                            let mut end = self.pos + 1;
                            if b >= 0x80 {
                                while self.bytes.get(end).is_some_and(|&n| n & 0xC0 == 0x80) {
                                    end += 1;
                                }
                            }
                            out.push_str(
                                std::str::from_utf8(&self.bytes[start..end])
                                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
                            );
                            self.pos = end;
                        }
                    }
                }
            }

            fn number(&mut self) -> Result<Value, String> {
                self.skip_ws();
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Value::Number)
                    .ok_or_else(|| format!("malformed number at byte {start}"))
            }
        }
    }
}

pub mod workloads {
    //! Deterministic pseudo-random workloads over symbol tables, arrays
    //! and queues.

    use adt_core::{Spec, SpecBuilder, Term};

    /// Builds a complete synthetic spec with `ctors` constructors (one
    /// nullary, the rest unary-recursive) and `obs` observers, each fully
    /// case-covered — the family the checker-scaling benchmarks measure.
    pub fn synthetic_spec(ctors: usize, obs: usize) -> Spec {
        let mut b = SpecBuilder::new("Synthetic");
        let s = b.sort("S");
        let mut ctor_ids = Vec::new();
        ctor_ids.push((b.ctor("C0", [], s), 0usize));
        for k in 1..ctors {
            ctor_ids.push((b.ctor(&format!("C{k}"), [s], s), 1));
        }
        let x = Term::Var(b.var("x", s));
        for o in 0..obs {
            let op = b.op(&format!("OBS{o}?"), [s], b.bool_sort());
            for (k, &(ctor, arity)) in ctor_ids.iter().enumerate() {
                let lhs = if arity == 0 {
                    b.app(op, [b.app(ctor, [])])
                } else {
                    b.app(op, [b.app(ctor, [x.clone()])])
                };
                let rhs = if (o + k) % 2 == 0 { b.tt() } else { b.ff() };
                b.axiom(format!("a{o}_{k}"), lhs, rhs);
            }
        }
        b.build().expect("synthetic specs are well-formed")
    }

    /// One symbol-table operation of a compiler-like trace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum SymOp {
        /// Open a scope.
        Enter,
        /// Close a scope (generated only when one is open).
        Leave,
        /// Declare identifier `idx` in the current scope.
        Add(usize),
        /// Look the identifier up.
        Retrieve(usize),
    }

    /// A deterministic splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct Stream(u64);

    impl Stream {
        /// Creates a stream from a seed.
        pub fn new(seed: u64) -> Self {
            Stream(seed)
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Next value below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Generates a compiler-like symbol-table trace: `len` operations,
    /// roughly 50% ADD, 30% RETRIEVE, 10% ENTER, 10% LEAVE, drawn from
    /// `idents` distinct identifiers. Block structure is kept well formed
    /// (never leaves the outermost block).
    pub fn symtab_trace(len: usize, idents: usize, seed: u64) -> Vec<SymOp> {
        let mut s = Stream::new(seed);
        let mut depth = 1usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let roll = s.below(10);
            let op = match roll {
                0 => {
                    depth += 1;
                    SymOp::Enter
                }
                1 if depth > 1 => {
                    depth -= 1;
                    SymOp::Leave
                }
                2..=6 => SymOp::Add(s.below(idents)),
                _ => SymOp::Retrieve(s.below(idents)),
            };
            out.push(op);
        }
        out
    }

    /// Builds the ground Symboltable *term* corresponding to the
    /// state-building prefix of a trace (ENTER/ADD/LEAVE; RETRIEVE ops are
    /// returned separately as observer applications on the final state).
    ///
    /// The specification's sample identifiers stand in for the trace's
    /// identifier indices (reduced modulo 3) and `ATTR_1` is used for
    /// every declaration — the shape of the term, not the payload, is
    /// what drives the rewriting cost.
    pub fn symtab_term(spec: &Spec, trace: &[SymOp]) -> (Term, Vec<Term>) {
        let sig = spec.sig();
        let idents = ["ID_X", "ID_Y", "ID_Z"];
        let mut state = sig.apply("INIT", vec![]).expect("INIT exists");
        let mut depth = 1usize;
        let mut observers = Vec::new();
        let attr = sig.apply("ATTR_1", vec![]).expect("ATTR_1 exists");
        for op in trace {
            match op {
                SymOp::Enter => {
                    depth += 1;
                    state = sig.apply("ENTERBLOCK", vec![state]).expect("well-sorted");
                }
                SymOp::Leave => {
                    if depth > 1 {
                        depth -= 1;
                        state = sig.apply("LEAVEBLOCK", vec![state]).expect("well-sorted");
                    }
                }
                SymOp::Add(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    state = sig
                        .apply("ADD", vec![state, id, attr.clone()])
                        .expect("well-sorted");
                }
                SymOp::Retrieve(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    observers.push((id, ()));
                }
            }
        }
        let observers = observers
            .into_iter()
            .map(|(id, ())| {
                sig.apply("RETRIEVE", vec![state.clone(), id])
                    .expect("well-sorted")
            })
            .collect();
        (state, observers)
    }

    /// Builds a ground Queue term of `adds` enqueues followed by
    /// `removes` dequeues.
    pub fn queue_term(spec: &Spec, adds: usize, removes: usize, seed: u64) -> Term {
        let sig = spec.sig();
        let items = ["A", "B", "C"];
        let mut s = Stream::new(seed);
        let mut t = sig.apply("NEW", vec![]).expect("NEW exists");
        for _ in 0..adds {
            let item = sig.apply(items[s.below(3)], vec![]).expect("item exists");
            t = sig.apply("ADD", vec![t, item]).expect("well-sorted");
        }
        for _ in 0..removes {
            t = sig.apply("REMOVE", vec![t]).expect("well-sorted");
        }
        t
    }

    /// Identifier names for array benchmarks: `v0`, `v1`, ….
    pub fn ident_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::*;
    use adt_rewrite::Rewriter;
    use adt_structures::specs::{queue_spec, symboltable_spec};

    #[test]
    fn streams_are_deterministic() {
        let mut a = Stream::new(7);
        let mut b = Stream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Stream::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn traces_keep_block_structure_well_formed() {
        let trace = symtab_trace(500, 10, 3);
        assert_eq!(trace.len(), 500);
        let mut depth = 1i64;
        for op in &trace {
            match op {
                SymOp::Enter => depth += 1,
                SymOp::Leave => depth -= 1,
                _ => {}
            }
            assert!(depth >= 1);
        }
    }

    #[test]
    fn symtab_terms_normalize() {
        let spec = symboltable_spec();
        let trace = symtab_trace(60, 5, 11);
        let (state, observers) = symtab_term(&spec, &trace);
        let rw = Rewriter::new(&spec);
        // The state normalizes to a constructor term (LEAVEBLOCKs fold away).
        let state_nf = rw.normalize(&state).unwrap();
        assert!(state_nf.is_constructor_term(spec.sig()));
        for obs in observers {
            let nf = rw.normalize(&obs).unwrap();
            assert!(nf.is_constructor_term(spec.sig()) || nf.is_error());
        }
    }

    #[test]
    fn queue_terms_normalize_to_values_or_error() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        for (adds, removes) in [(0, 0), (5, 2), (3, 5), (20, 20)] {
            let t = queue_term(&spec, adds, removes, 42);
            let nf = rw.normalize(&t).unwrap();
            assert!(nf.is_constructor_term(spec.sig()));
        }
    }

    #[test]
    fn ident_names_are_distinct() {
        let names = ident_names(100);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn synthetic_specs_are_complete() {
        use adt_check::check_completeness;
        let spec = synthetic_spec(4, 8);
        assert!(check_completeness(&spec).is_sufficiently_complete());
    }

    mod report {
        use crate::report::{regressions, BenchRecord, BenchReport};

        fn row(group: &str, name: &str, median_ns: u64) -> BenchRecord {
            BenchRecord {
                group: group.to_string(),
                name: name.to_string(),
                median_ns,
                before_ns: None,
                iters: 100,
                samples: 10,
            }
        }

        fn sample_report() -> BenchReport {
            let mut r = BenchReport::new("full");
            r.benchmarks.push(row("rewrite_queue", "front/128", 5_000));
            r.benchmarks.push(row("memoization", "queries_memo/32", 900));
            r.benchmarks[1].before_ns = Some(2_700);
            r
        }

        #[test]
        fn json_round_trips() {
            let report = sample_report();
            let text = report.to_json();
            let parsed = BenchReport::from_json(&text).expect("parses");
            assert_eq!(parsed, report);
        }

        #[test]
        fn speedup_is_before_over_after() {
            let report = sample_report();
            assert_eq!(report.benchmarks[0].speedup(), None);
            let s = report.benchmarks[1].speedup().expect("has before");
            assert!((s - 3.0).abs() < 1e-9, "got {s}");
        }

        #[test]
        fn merge_before_fills_matching_rows_only() {
            let mut after = sample_report();
            after.benchmarks.push(row("rewrite_queue", "drain/64", 10));
            let mut before = BenchReport::new("full");
            before.benchmarks.push(row("rewrite_queue", "front/128", 20_000));
            after.merge_before(&before);
            assert_eq!(after.benchmarks[0].before_ns, Some(20_000));
            // Untouched: no matching row in `before`.
            assert_eq!(after.benchmarks[2].before_ns, None);
        }

        #[test]
        fn regressions_flag_only_slowdowns_past_threshold() {
            let baseline = sample_report();
            let mut fresh = sample_report();
            fresh.benchmarks[0].median_ns = 11_000; // 2.2x slower
            fresh.benchmarks[1].median_ns = 1_700; // 1.89x slower
            fresh.benchmarks.push(row("new", "bench/1", 1)); // not in baseline
            let regs = regressions(&fresh, &baseline, 2.0);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].key, "rewrite_queue/front/128");
            assert!((regs[0].factor - 2.2).abs() < 1e-9);
            assert!(regressions(&fresh, &baseline, 2.5).is_empty());
        }

        #[test]
        fn from_json_rejects_malformed_input() {
            assert!(BenchReport::from_json("").is_err());
            assert!(BenchReport::from_json("[1, 2]").is_err());
            assert!(BenchReport::from_json("{\"schema\": \"other/v9\"}").is_err());
            let mut text = sample_report().to_json();
            text.push('x');
            assert!(BenchReport::from_json(&text).is_err());
        }
    }

    mod harness {
        use crate::harness::{fmt_duration, Group};
        use std::time::Duration;

        fn quick_group(name: &str) -> Group {
            Group::new(name)
                .samples(3)
                .budget(Duration::from_millis(2), Duration::from_millis(9))
        }

        #[test]
        fn bench_measures_and_orders_work() {
            let g = quick_group("harness_test");
            let fast = g.bench("fast", || std::hint::black_box(1u64 + 1));
            let slow = g.bench("slow", || {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                acc
            });
            assert!(fast.iters >= 1 && slow.iters >= 1);
            assert!(slow.per_iter >= fast.per_iter);
            assert!(slow.speedup_over(&fast) <= 1.0 + f64::EPSILON);
        }

        #[test]
        fn bench_batched_runs_setup_per_iteration() {
            let g = quick_group("harness_test");
            let m = g.bench_batched(
                "batched",
                || vec![1u32, 2, 3],
                |v| v.into_iter().sum::<u32>(),
            );
            assert!(m.per_iter > Duration::ZERO);
        }

        #[test]
        fn bench_paired_alternates_and_shares_the_iteration_count() {
            let g = quick_group("harness_test");
            let (fast, slow) = g.bench_paired(
                "paired_fast",
                "paired_slow",
                || 200u64,
                |n| std::hint::black_box(n + 1),
                |n| {
                    let mut acc = 0u64;
                    for i in 0..n * 100 {
                        acc = acc.wrapping_add(std::hint::black_box(i));
                    }
                    acc
                },
            );
            // Both sides of a pair are measured at the same iteration
            // count — that is the point of pairing.
            assert_eq!(fast.iters, slow.iters);
            assert!(slow.per_iter >= fast.per_iter);
        }

        #[test]
        fn durations_format_with_adaptive_units() {
            assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
            assert_eq!(fmt_duration(Duration::from_nanos(2_500)), "2.50 µs");
            assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
            assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        }
    }
}
