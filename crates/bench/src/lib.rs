//! # adt-bench — workload generators for the benchmark harness
//!
//! The Criterion benches under `benches/` regenerate every measured row
//! of EXPERIMENTS.md; this library holds the deterministic workload
//! generators they share, so a bench and its corresponding test exercise
//! identical operation sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workloads {
    //! Deterministic pseudo-random workloads over symbol tables, arrays
    //! and queues.

    use adt_core::{Spec, Term};

    /// One symbol-table operation of a compiler-like trace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum SymOp {
        /// Open a scope.
        Enter,
        /// Close a scope (generated only when one is open).
        Leave,
        /// Declare identifier `idx` in the current scope.
        Add(usize),
        /// Look the identifier up.
        Retrieve(usize),
    }

    /// A deterministic splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct Stream(u64);

    impl Stream {
        /// Creates a stream from a seed.
        pub fn new(seed: u64) -> Self {
            Stream(seed)
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Next value below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Generates a compiler-like symbol-table trace: `len` operations,
    /// roughly 50% ADD, 30% RETRIEVE, 10% ENTER, 10% LEAVE, drawn from
    /// `idents` distinct identifiers. Block structure is kept well formed
    /// (never leaves the outermost block).
    pub fn symtab_trace(len: usize, idents: usize, seed: u64) -> Vec<SymOp> {
        let mut s = Stream::new(seed);
        let mut depth = 1usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let roll = s.below(10);
            let op = match roll {
                0 => {
                    depth += 1;
                    SymOp::Enter
                }
                1 if depth > 1 => {
                    depth -= 1;
                    SymOp::Leave
                }
                2..=6 => SymOp::Add(s.below(idents)),
                _ => SymOp::Retrieve(s.below(idents)),
            };
            out.push(op);
        }
        out
    }

    /// Builds the ground Symboltable *term* corresponding to the
    /// state-building prefix of a trace (ENTER/ADD/LEAVE; RETRIEVE ops are
    /// returned separately as observer applications on the final state).
    ///
    /// The specification's sample identifiers stand in for the trace's
    /// identifier indices (reduced modulo 3) and `ATTR_1` is used for
    /// every declaration — the shape of the term, not the payload, is
    /// what drives the rewriting cost.
    pub fn symtab_term(spec: &Spec, trace: &[SymOp]) -> (Term, Vec<Term>) {
        let sig = spec.sig();
        let idents = ["ID_X", "ID_Y", "ID_Z"];
        let mut state = sig.apply("INIT", vec![]).expect("INIT exists");
        let mut depth = 1usize;
        let mut observers = Vec::new();
        let attr = sig.apply("ATTR_1", vec![]).expect("ATTR_1 exists");
        for op in trace {
            match op {
                SymOp::Enter => {
                    depth += 1;
                    state = sig.apply("ENTERBLOCK", vec![state]).expect("well-sorted");
                }
                SymOp::Leave => {
                    if depth > 1 {
                        depth -= 1;
                        state = sig.apply("LEAVEBLOCK", vec![state]).expect("well-sorted");
                    }
                }
                SymOp::Add(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    state = sig
                        .apply("ADD", vec![state, id, attr.clone()])
                        .expect("well-sorted");
                }
                SymOp::Retrieve(i) => {
                    let id = sig.apply(idents[i % 3], vec![]).expect("ident exists");
                    observers.push((id, ()));
                }
            }
        }
        let observers = observers
            .into_iter()
            .map(|(id, ())| {
                sig.apply("RETRIEVE", vec![state.clone(), id])
                    .expect("well-sorted")
            })
            .collect();
        (state, observers)
    }

    /// Builds a ground Queue term of `adds` enqueues followed by
    /// `removes` dequeues.
    pub fn queue_term(spec: &Spec, adds: usize, removes: usize, seed: u64) -> Term {
        let sig = spec.sig();
        let items = ["A", "B", "C"];
        let mut s = Stream::new(seed);
        let mut t = sig.apply("NEW", vec![]).expect("NEW exists");
        for _ in 0..adds {
            let item = sig.apply(items[s.below(3)], vec![]).expect("item exists");
            t = sig.apply("ADD", vec![t, item]).expect("well-sorted");
        }
        for _ in 0..removes {
            t = sig.apply("REMOVE", vec![t]).expect("well-sorted");
        }
        t
    }

    /// Identifier names for array benchmarks: `v0`, `v1`, ….
    pub fn ident_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::*;
    use adt_rewrite::Rewriter;
    use adt_structures::specs::{queue_spec, symboltable_spec};

    #[test]
    fn streams_are_deterministic() {
        let mut a = Stream::new(7);
        let mut b = Stream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Stream::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn traces_keep_block_structure_well_formed() {
        let trace = symtab_trace(500, 10, 3);
        assert_eq!(trace.len(), 500);
        let mut depth = 1i64;
        for op in &trace {
            match op {
                SymOp::Enter => depth += 1,
                SymOp::Leave => depth -= 1,
                _ => {}
            }
            assert!(depth >= 1);
        }
    }

    #[test]
    fn symtab_terms_normalize() {
        let spec = symboltable_spec();
        let trace = symtab_trace(60, 5, 11);
        let (state, observers) = symtab_term(&spec, &trace);
        let rw = Rewriter::new(&spec);
        // The state normalizes to a constructor term (LEAVEBLOCKs fold away).
        let state_nf = rw.normalize(&state).unwrap();
        assert!(state_nf.is_constructor_term(spec.sig()));
        for obs in observers {
            let nf = rw.normalize(&obs).unwrap();
            assert!(nf.is_constructor_term(spec.sig()) || nf.is_error());
        }
    }

    #[test]
    fn queue_terms_normalize_to_values_or_error() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        for (adds, removes) in [(0, 0), (5, 2), (3, 5), (20, 20)] {
            let t = queue_term(&spec, adds, removes, 42);
            let nf = rw.normalize(&t).unwrap();
            assert!(nf.is_constructor_term(spec.sig()));
        }
    }

    #[test]
    fn ident_names_are_distinct() {
        let names = ident_names(100);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 100);
    }
}
