//! `cargo run -p adt-bench` — the fixed-seed benchmark runner behind the
//! committed `BENCH_rewrite.json`.
//!
//! Measures a curated subset of the `benches/` workloads (memoization,
//! rewrite_queue, checker_scaling — all deterministic, seed 7) and emits
//! the medians as machine-readable JSON. CI runs this with `--quick
//! --baseline BENCH_rewrite.json` to catch >2× regressions; the
//! committed baseline itself is produced with `--merge-before` so it
//! carries the pre-arena medians alongside the current ones.
//!
//! ```text
//! adt-bench [--json PATH] [--baseline PATH] [--max-regress FACTOR]
//!           [--merge-before PATH] [--quick]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use adt_bench::harness::Group;
use adt_bench::report::{regressions, BenchRecord, BenchReport};
use adt_bench::workloads::{queue_term, synthetic_spec};
use adt_check::{check_completeness_jobs, check_consistency_jobs, ProbeConfig};
use adt_core::{Deadline, Session, Supervisor};
use adt_rewrite::Rewriter;
use adt_structures::specs::queue_spec;

const USAGE: &str = "\
usage: adt-bench [options]

options:
  --json PATH          write the report as JSON to PATH (default: stdout)
  --baseline PATH      compare against a committed report; exit non-zero
                       if any shared benchmark regresses past the threshold
  --max-regress FACTOR regression threshold for --baseline (default: 2.0)
  --merge-before PATH  copy medians from a previous report into the
                       `before_ns` field of matching benchmarks
  --quick              ~10x smaller time budgets (smoke profile)
  --help               print this help
";

#[derive(Debug, Default)]
struct Options {
    json: Option<String>,
    baseline: Option<String>,
    merge_before: Option<String>,
    max_regress: f64,
    quick: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        max_regress: 2.0,
        ..Options::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = Some(value("--json")?),
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--merge-before" => opts.merge_before = Some(value("--merge-before")?),
            "--max-regress" => {
                let raw = value("--max-regress")?;
                let factor: f64 = raw
                    .parse()
                    .map_err(|_| format!("--max-regress: `{raw}` is not a number"))?;
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(format!("--max-regress must be >= 1.0, got {raw}"));
                }
                opts.max_regress = factor;
            }
            "--quick" => opts.quick = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

/// The fixed benchmark set. Labels match the interactive `benches/`
/// programs so numbers are comparable; seeds and sizes are pinned so two
/// runs on the same machine measure identical work.
fn run_benchmarks(quick: bool) -> Vec<BenchRecord> {
    let group = |name: &str| {
        let g = Group::new(name);
        if quick {
            g.budget(Duration::from_millis(20), Duration::from_millis(90))
        } else {
            g
        }
    };
    let mut rows: Vec<BenchRecord> = Vec::new();
    let mut push = |group: &str, name: &str, m: adt_bench::harness::Measurement| {
        rows.push(BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            median_ns: u64::try_from(m.per_iter.as_nanos()).unwrap_or(u64::MAX),
            before_ns: None,
            iters: m.iters,
            samples: m.samples,
        });
    };

    let spec = queue_spec();
    let sig = spec.sig();

    // memoization: the overhead case (one FRONT over a fresh cache) and
    // the amortized case (32 alternating observers over one shared state).
    {
        let g = group("memoization");
        let n = 128;
        let front = sig
            .apply("FRONT", vec![queue_term(&spec, n, 0, 7)])
            .expect("well-sorted");
        let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
        push(
            "memoization",
            &format!("single_plain/{n}"),
            g.bench(&format!("single_plain/{n}"), || {
                plain.normalize(std::hint::black_box(&front)).expect("normalizes")
            }),
        );
        push(
            "memoization",
            &format!("single_memo/{n}"),
            g.bench_batched(
                &format!("single_memo/{n}"),
                || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
                |rw| rw.normalize(std::hint::black_box(&front)).expect("normalizes"),
            ),
        );

        let queries = 32;
        let state = queue_term(&spec, 64, 32, 7);
        let observations: Vec<_> = (0..queries)
            .map(|k| {
                let op = if k % 2 == 0 { "FRONT" } else { "IS_EMPTY?" };
                sig.apply(op, vec![state.clone()]).expect("well-sorted")
            })
            .collect();
        push(
            "memoization",
            &format!("queries_plain/{queries}"),
            g.bench(&format!("queries_plain/{queries}"), || {
                observations
                    .iter()
                    .map(|t| plain.normalize(std::hint::black_box(t)).expect("normalizes").size())
                    .sum::<usize>()
            }),
        );
        push(
            "memoization",
            &format!("queries_memo/{queries}"),
            g.bench_batched(
                &format!("queries_memo/{queries}"),
                || Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing(),
                |rw| {
                    observations
                        .iter()
                        .map(|t| rw.normalize(std::hint::black_box(t)).expect("normalizes").size())
                        .sum::<usize>()
                },
            ),
        );
    }

    // rewrite_queue: raw single-threaded normalization throughput.
    {
        let g = group("rewrite_queue");
        let rw = Rewriter::new(&spec).with_fuel(100_000_000);
        for &n in &[32usize, 128] {
            let chain = queue_term(&spec, n, 0, 7);
            let front = sig.apply("FRONT", vec![chain]).expect("well-sorted");
            push(
                "rewrite_queue",
                &format!("front/{n}"),
                g.bench(&format!("front/{n}"), || {
                    rw.normalize(std::hint::black_box(&front)).expect("normalizes")
                }),
            );
        }
        let is_empty = sig
            .apply("IS_EMPTY?", vec![queue_term(&spec, 128, 0, 7)])
            .expect("well-sorted");
        push(
            "rewrite_queue",
            "is_empty/128",
            g.bench("is_empty/128", || {
                rw.normalize(std::hint::black_box(&is_empty)).expect("normalizes")
            }),
        );
        let drain = queue_term(&spec, 64, 64, 7);
        push(
            "rewrite_queue",
            "drain/64",
            g.bench("drain/64", || {
                rw.normalize(std::hint::black_box(&drain)).expect("normalizes")
            }),
        );
    }

    // checker_scaling: the full completeness partition analysis, and the
    // parallel completeness+consistency pipeline at 1 and 4 workers.
    {
        let g = group("checker_scaling");
        let small = synthetic_spec(8, 32);
        push(
            "checker_scaling",
            "complete/8ctors_32obs",
            g.bench("complete/8ctors_32obs", || {
                let report = adt_check::check_completeness(std::hint::black_box(&small));
                assert!(report.is_sufficiently_complete());
                report.coverage().len()
            }),
        );

        let big = synthetic_spec(8, 64);
        let probe = ProbeConfig {
            samples: 64,
            ..ProbeConfig::default()
        };
        for jobs in [1usize, 4] {
            push(
                "checker_scaling",
                &format!("parallel/64ops_jobs{jobs}"),
                g.bench(&format!("parallel/64ops_jobs{jobs}"), || {
                    let comp = check_completeness_jobs(std::hint::black_box(&big), jobs);
                    assert!(comp.is_sufficiently_complete());
                    let cons = check_consistency_jobs(&big, &probe, jobs);
                    (comp.coverage().len(), cons.pairs_checked())
                }),
            );
        }
    }

    // session_reuse: the same batch of observer checks run N times — once
    // against a single long-lived session (the CLI/REPL shape: the first
    // check warms the arena, memo and nf cache for the other N-1), and
    // once with a fresh session built per check. The shared row carries
    // the fresh median as its `before_ns`, so the committed JSON records
    // the reuse speedup directly.
    {
        let g = group("session_reuse");
        let checks = 8usize;
        let state = queue_term(&spec, 96, 48, 7);
        let observers: Vec<_> = (0..16)
            .map(|k| {
                let op = if k % 2 == 0 { "FRONT" } else { "IS_EMPTY?" };
                sig.apply(op, vec![state.clone()]).expect("well-sorted")
            })
            .collect();
        let run_checks = |session: &Session| {
            let rw = Rewriter::for_session(session).with_fuel(1_000_000_000);
            let mut total = 0usize;
            for _ in 0..checks {
                for t in &observers {
                    let id = session.intern(std::hint::black_box(t));
                    let nf = rw.normalize_id(session, id).expect("normalizes");
                    total += usize::from(nf != id);
                }
            }
            total
        };
        let fresh = g.bench(&format!("fresh_per_check/{checks}x16"), || {
            let mut total = 0usize;
            for _ in 0..checks {
                let session = Session::new(spec.clone());
                let rw = Rewriter::for_session(&session).with_fuel(1_000_000_000);
                for t in &observers {
                    let id = session.intern(std::hint::black_box(t));
                    let nf = rw.normalize_id(&session, id).expect("normalizes");
                    total += usize::from(nf != id);
                }
            }
            total
        });
        let shared = g.bench_batched(
            &format!("one_session/{checks}x16"),
            || Session::new(spec.clone()),
            |session| run_checks(&session),
        );
        push(
            "session_reuse",
            &format!("fresh_per_check/{checks}x16"),
            fresh,
        );
        push("session_reuse", &format!("one_session/{checks}x16"), shared);
        // fresh-per-check becomes the shared row's "before" below: the
        // speedup field then reads as "reuse is this many times faster".
    }

    // retry_ladder: the supervision tax and the cost of a rescue. The same
    // long normalization runs once bare and once under an armed (but
    // never-firing) deadline supervisor — the supervised row carries the
    // bare median as its `before_ns`, so the committed JSON records the
    // polling overhead directly (budget: under 3%). Both pairs are
    // measured with `bench_paired`: the effect is smaller than this
    // machine's run-to-run drift, so back-to-back rows cannot see it.
    // The rescue rows compare a starved-then-escalated two-pass
    // normalization against a right-sized single pass: the price of
    // discovering a budget was too small, which is what the adaptive
    // retry ladder pays per rung.
    {
        // A wider budget than the quick default: these rows compare
        // ~4 ms routines whose delta is the payload, so each sample
        // needs several interleaved iterations even in the smoke
        // profile or the 2x CI regression gate can trip on noise.
        let g = if quick {
            Group::new("retry_ladder")
                .budget(Duration::from_millis(100), Duration::from_millis(450))
        } else {
            group("retry_ladder")
        };
        let state = queue_term(&spec, 96, 48, 7);
        let front = sig
            .apply("FRONT", vec![state.clone()])
            .expect("well-sorted");
        let far_deadline =
            || Supervisor::none().with_deadline(Deadline::after(Duration::from_secs(3600)));
        let (bare, supervised) = g.bench_paired(
            "unsupervised/front96",
            "supervised/front96",
            || (),
            |()| {
                let rw = Rewriter::new(&spec).with_fuel(1_000_000_000);
                rw.normalize_full(std::hint::black_box(&front))
                    .expect("normalizes")
                    .steps
            },
            |()| {
                let rw = Rewriter::new(&spec)
                    .with_fuel(1_000_000_000)
                    .supervised(far_deadline());
                rw.normalize_full(std::hint::black_box(&front))
                    .expect("normalizes")
                    .steps
            },
        );
        push("retry_ladder", "unsupervised/front96", bare);
        push("retry_ladder", "supervised/front96", supervised);
        let (sized, rescued) = g.bench_paired(
            "right_sized/front96",
            "rescue_two_pass/front96",
            || (),
            |()| {
                let rw = Rewriter::new(&spec).with_fuel(1_000_000);
                rw.normalize_full(std::hint::black_box(&front))
                    .expect("normalizes")
                    .steps
            },
            |()| {
                // Rung 0 starves on purpose; the ladder's next rung finishes.
                let starved = Rewriter::new(&spec).with_fuel(16);
                match starved.normalize_full(std::hint::black_box(&front)) {
                    Ok(norm) => norm.steps,
                    Err(_) => {
                        let rung1 = Rewriter::new(&spec).with_fuel(1_000_000);
                        rung1
                            .normalize_full(std::hint::black_box(&front))
                            .expect("normalizes")
                            .steps
                    }
                }
            },
        );
        push("retry_ladder", "right_sized/front96", sized);
        push("retry_ladder", "rescue_two_pass/front96", rescued);
    }

    // Comparison rows carry their counterpart's median as `before_ns`, so
    // the committed JSON reads as "reuse is this much faster" /
    // "supervision costs this much" without consulting a second report.
    for (group, row, baseline) in [
        ("session_reuse", "one_session/8x16", "fresh_per_check/8x16"),
        ("retry_ladder", "supervised/front96", "unsupervised/front96"),
        ("retry_ladder", "rescue_two_pass/front96", "right_sized/front96"),
    ] {
        let before = rows
            .iter()
            .find(|r| r.group == group && r.name == baseline)
            .map(|r| r.median_ns);
        if let Some(r) = rows
            .iter_mut()
            .find(|r| r.group == group && r.name == row)
        {
            r.before_ns = before;
        }
    }

    rows
}

fn read_report(path: &str) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn run(opts: &Options) -> Result<(), String> {
    let quick = opts.quick || std::env::var_os("ADT_BENCH_QUICK").is_some_and(|v| v != "0");
    let mut report = BenchReport::new(if quick { "quick" } else { "full" });
    report.benchmarks = run_benchmarks(quick);

    if let Some(path) = &opts.merge_before {
        report.merge_before(&read_report(path)?);
    }

    let json = report.to_json();
    match &opts.json {
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?,
        None => print!("{json}"),
    }

    if let Some(path) = &opts.baseline {
        let baseline = read_report(path)?;
        let regs = regressions(&report, &baseline, opts.max_regress);
        if !regs.is_empty() {
            let mut msg = format!(
                "{} benchmark(s) regressed past {:.1}x the baseline `{path}`:\n",
                regs.len(),
                opts.max_regress
            );
            for r in &regs {
                msg.push_str(&format!(
                    "  {}: {} ns -> {} ns ({:.2}x)\n",
                    r.key, r.baseline_ns, r.fresh_ns, r.factor
                ));
            }
            return Err(msg);
        }
        println!(
            "baseline `{path}`: {} shared benchmark(s), none past {:.1}x",
            report
                .benchmarks
                .iter()
                .filter(|b| baseline.find(&b.key()).is_some())
                .count(),
            opts.max_regress
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let opts = parse_args(&strings(&[
            "--json",
            "out.json",
            "--baseline",
            "base.json",
            "--max-regress",
            "1.5",
            "--merge-before",
            "before.json",
            "--quick",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(opts.json.as_deref(), Some("out.json"));
        assert_eq!(opts.baseline.as_deref(), Some("base.json"));
        assert_eq!(opts.merge_before.as_deref(), Some("before.json"));
        assert!((opts.max_regress - 1.5).abs() < 1e-9);
        assert!(opts.quick);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&strings(&["--wat"])).is_err());
        assert!(parse_args(&strings(&["--json"])).is_err());
        assert!(parse_args(&strings(&["--max-regress", "0.5"])).is_err());
        assert!(parse_args(&strings(&["--max-regress", "nan"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&strings(&["--help"])).expect("ok").is_none());
    }
}
