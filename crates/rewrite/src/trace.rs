//! Rewrite traces: step-by-step derivations.
//!
//! A trace records each rule application during a normalization, in the
//! style of the derivations the paper carries out by hand, e.g.
//!
//! ```text
//! FRONT(ADD(ADD(NEW, A), B))
//!   =[q4]=> if IS_EMPTY?(ADD(NEW, A)) then B else FRONT(ADD(NEW, A))
//!   =[q2]=> if false then B else FRONT(ADD(NEW, A))
//!   ...
//! ```

use std::fmt;

use adt_core::{display, Signature, Term};

/// One rewrite step: the rule that fired and the redex/contractum pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Label of the rule that fired (axiom label, or a built-in tag such as
    /// `"if-true"`, `"if-false"`, `"if-lift"`, `"if-merge"`, `"strict"`).
    pub rule: String,
    /// The subterm that was rewritten.
    pub redex: Term,
    /// What it was rewritten to.
    pub contractum: Term,
}

/// A complete derivation: the initial term and every step taken.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    initial: Option<Term>,
    steps: Vec<Step>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn set_initial(&mut self, term: &Term) {
        if self.initial.is_none() {
            self.initial = Some(term.clone());
        }
    }

    pub(crate) fn record(&mut self, rule: &str, redex: &Term, contractum: &Term) {
        self.steps.push(Step {
            rule: rule.to_owned(),
            redex: redex.clone(),
            contractum: contractum.clone(),
        });
    }

    /// The term the derivation started from, if any step was recorded.
    pub fn initial(&self) -> Option<&Term> {
        self.initial.as_ref()
    }

    /// All recorded steps, in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded (the term was already normal).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Labels of the axioms used, in firing order (built-in reductions
    /// excluded). Useful for asserting *which* axioms a derivation used.
    pub fn axioms_used(&self) -> Vec<&str> {
        self.steps
            .iter()
            .map(|s| s.rule.as_str())
            .filter(|r| {
                !matches!(
                    *r,
                    "if-true"
                        | "if-false"
                        | "if-lift"
                        | "if-merge"
                        | "if-eta"
                        | "arg-lift"
                        | "strict"
                )
            })
            .collect()
    }

    /// Renders the derivation against a signature.
    pub fn render<'a>(&'a self, sig: &'a Signature) -> TraceDisplay<'a> {
        TraceDisplay { trace: self, sig }
    }
}

/// [`fmt::Display`] adapter for a [`Trace`].
#[derive(Debug, Clone, Copy)]
pub struct TraceDisplay<'a> {
    trace: &'a Trace,
    sig: &'a Signature,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(initial) = &self.trace.initial {
            writeln!(f, "{}", display::term(self.sig, initial))?;
        }
        for step in &self.trace.steps {
            writeln!(
                f,
                "  =[{}]=> {} ~> {}",
                step.rule,
                display::term(self.sig, &step.redex),
                display::term(self.sig, &step.contractum)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    #[test]
    fn trace_records_and_renders() {
        let mut b = SpecBuilder::new("T");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f_op = b.op("F", [s], s);
        let spec_term = b.app(f_op, [b.app(c, [])]);
        let c_term = b.app(c, []);
        let spec = {
            let b2 = b;
            // no axioms needed for the trace test
            b2.build().unwrap()
        };

        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.set_initial(&spec_term);
        trace.record("a1", &spec_term, &c_term);
        trace.record("if-true", &c_term, &c_term);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.axioms_used(), vec!["a1"]);
        assert_eq!(trace.initial(), Some(&spec_term));

        let rendered = trace.render(spec.sig()).to_string();
        assert!(rendered.contains("F(C)"));
        assert!(rendered.contains("=[a1]=>"));
        assert!(rendered.contains("=[if-true]=>"));
    }

    #[test]
    fn set_initial_only_keeps_first() {
        let mut b = SpecBuilder::new("T");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let ct = b.app(c, []);
        let dt = b.app(d, []);
        let _spec = b.build().unwrap();

        let mut trace = Trace::new();
        trace.set_initial(&ct);
        trace.set_initial(&dt);
        assert_eq!(trace.initial(), Some(&ct));
    }
}
