//! Symbolic interpretation of a specification.
//!
//! "Given suitable restrictions on the form that axiomatizations may take,
//! a system in which implementations and algebraic specifications of
//! abstract types are interchangeable can be constructed. In the absence of
//! an implementation, the operations of the algebra may be interpreted
//! symbolically." (paper, §5.)
//!
//! A [`SymbolicSession`] is that system: a little machine whose program
//! variables hold *normalized terms* of the algebra. Programs like the
//! paper's bounded-queue example
//!
//! ```text
//! x := EMPTY_Q
//! x := ADD_Q(x, A)
//! x := REMOVE_Q(x)
//! ```
//!
//! run directly against the axioms, no implementation required — the
//! "significant loss in efficiency" relative to a real implementation is
//! measured by the `symbolic_vs_direct` benchmark.

use std::collections::HashMap;

use adt_core::{Spec, Term};

use crate::engine::Rewriter;
use crate::error::RewriteError;
use crate::Result;

/// An argument to a symbolic operation call: either a reference to a
/// program variable of the session, or a literal term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymArg {
    /// The current value of the named program variable.
    Ref(String),
    /// A literal term.
    Lit(Term),
}

impl From<&str> for SymArg {
    fn from(name: &str) -> Self {
        SymArg::Ref(name.to_owned())
    }
}

impl From<Term> for SymArg {
    fn from(t: Term) -> Self {
        SymArg::Lit(t)
    }
}

/// A symbolic interpreter for one specification.
///
/// ```
/// use adt_core::{SpecBuilder, Term};
/// use adt_rewrite::SymbolicSession;
///
/// let mut b = SpecBuilder::new("Counter");
/// let s = b.sort("S");
/// let zero = b.ctor("ZERO", [], s);
/// let succ = b.ctor("SUCC", [s], s);
/// let pred = b.op("PRED", [s], s);
/// let x = b.var("x", s);
/// b.axiom("p1", b.app(pred, [b.app(zero, [])]), Term::Error(s));
/// b.axiom("p2", b.app(pred, [b.app(succ, [Term::Var(x)])]), Term::Var(x));
/// let spec = b.build()?;
///
/// let mut session = SymbolicSession::new(&spec);
/// session.assign("x", "ZERO", [])?;
/// session.assign("x", "SUCC", ["x".into()])?;
/// session.assign("x", "PRED", ["x".into()])?;
/// assert_eq!(session.get("x").unwrap(), &spec.sig().apply("ZERO", vec![])?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SymbolicSession<'a> {
    rw: Rewriter<'a>,
    env: HashMap<String, Term>,
}

impl<'a> SymbolicSession<'a> {
    /// Starts a session over `spec` with the default fuel limit.
    pub fn new(spec: &'a Spec) -> Self {
        SymbolicSession {
            rw: Rewriter::new(spec),
            env: HashMap::new(),
        }
    }

    /// Starts a session that shares an existing rewriter configuration.
    pub fn with_rewriter(rw: Rewriter<'a>) -> Self {
        SymbolicSession {
            rw,
            env: HashMap::new(),
        }
    }

    /// The underlying rewriter.
    pub fn rewriter(&self) -> &Rewriter<'a> {
        &self.rw
    }

    /// The current value of a program variable.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.env.get(name)
    }

    /// Binds a program variable to a term (normalized first).
    ///
    /// # Errors
    ///
    /// Returns any normalization error.
    pub fn set(&mut self, name: &str, term: Term) -> Result<&Term> {
        let nf = self.rw.normalize(&term)?;
        Ok(self
            .env
            .entry(name.to_owned())
            .and_modify(|t| *t = nf.clone())
            .or_insert(nf))
    }

    fn resolve(&self, arg: SymArg) -> Result<Term> {
        match arg {
            SymArg::Lit(t) => Ok(t),
            SymArg::Ref(name) => {
                self.env
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| RewriteError::Session {
                        detail: format!("program variable `{name}` is unbound"),
                    })
            }
        }
    }

    /// Applies an operation of the specification to the given arguments
    /// and returns the normalized result without binding it.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown operations, unbound variable
    /// references, ill-sorted applications, or normalization failure.
    pub fn call(&self, op: &str, args: impl IntoIterator<Item = SymArg>) -> Result<Term> {
        let resolved: Vec<Term> = args
            .into_iter()
            .map(|a| self.resolve(a))
            .collect::<Result<_>>()?;
        let term = self.rw.spec().sig().apply(op, resolved)?;
        self.rw.normalize(&term)
    }

    /// `var := op(args…)` — applies an operation and binds the normalized
    /// result to a program variable, as in the paper's program segments.
    ///
    /// # Errors
    ///
    /// As for [`SymbolicSession::call`].
    pub fn assign(
        &mut self,
        var: &str,
        op: &str,
        args: impl IntoIterator<Item = SymArg>,
    ) -> Result<&Term> {
        let value = self.call(op, args)?;
        Ok(self
            .env
            .entry(var.to_owned())
            .and_modify(|t| *t = value.clone())
            .or_insert(value))
    }

    /// Normalizes an arbitrary term in this session's specification.
    ///
    /// # Errors
    ///
    /// Returns any normalization error.
    pub fn eval(&self, term: &Term) -> Result<Term> {
        self.rw.normalize(term)
    }

    /// The names of all bound program variables, sorted.
    pub fn bound_vars(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.env.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    fn queue_spec() -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let remove = b.op("REMOVE", [queue], queue);
        let front = b.op("FRONT", [queue], item);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        b.ctor("A", [], item);
        b.ctor("B", [], item);
        let q = b.var("q", queue);
        let i = b.var("i", item);
        let qv = Term::Var(q);
        let iv = Term::Var(i);
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        b.axiom(
            "q2",
            b.app(is_empty, [b.app(add, [qv.clone(), iv.clone()])]),
            ff,
        );
        b.axiom("q3", b.app(front, [b.app(new, [])]), Term::Error(item));
        b.axiom(
            "q4",
            b.app(front, [b.app(add, [qv.clone(), iv.clone()])]),
            Term::ite(
                b.app(is_empty, [qv.clone()]),
                iv.clone(),
                b.app(front, [qv.clone()]),
            ),
        );
        b.axiom("q5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
        b.axiom(
            "q6",
            b.app(remove, [b.app(add, [qv.clone(), iv.clone()])]),
            Term::ite(
                b.app(is_empty, [qv.clone()]),
                b.app(new, []),
                b.app(add, [b.app(remove, [qv]), iv]),
            ),
        );
        b.build().unwrap()
    }

    #[test]
    fn program_segment_runs_against_axioms() {
        let spec = queue_spec();
        let mut s = SymbolicSession::new(&spec);
        let a = spec.sig().apply("A", vec![]).unwrap();
        let b = spec.sig().apply("B", vec![]).unwrap();

        s.assign("x", "NEW", []).unwrap();
        s.assign("x", "ADD", ["x".into(), a.clone().into()])
            .unwrap();
        s.assign("x", "ADD", ["x".into(), b.clone().into()])
            .unwrap();
        s.assign("x", "REMOVE", ["x".into()]).unwrap();

        // After NEW, ADD A, ADD B, REMOVE: the queue holds just B.
        let expected = spec
            .sig()
            .apply("ADD", vec![spec.sig().apply("NEW", vec![]).unwrap(), b])
            .unwrap();
        assert_eq!(s.get("x").unwrap(), &expected);

        let front = s.call("FRONT", ["x".into()]).unwrap();
        assert_eq!(front, spec.sig().apply("B", vec![]).unwrap());
        let _ = a;
    }

    #[test]
    fn unbound_variable_reference_errors() {
        let spec = queue_spec();
        let s = SymbolicSession::new(&spec);
        let err = s.call("REMOVE", ["nope".into()]).unwrap_err();
        assert!(err.to_string().contains("`nope`"));
    }

    #[test]
    fn unknown_operation_errors() {
        let spec = queue_spec();
        let mut s = SymbolicSession::new(&spec);
        s.assign("x", "NEW", []).unwrap();
        let err = s.call("POP", ["x".into()]).unwrap_err();
        assert!(err.to_string().contains("POP"));
    }

    #[test]
    fn ill_sorted_call_errors() {
        let spec = queue_spec();
        let mut s = SymbolicSession::new(&spec);
        s.assign("x", "NEW", []).unwrap();
        // ADD(x, x): second argument must be an Item.
        let err = s.call("ADD", ["x".into(), "x".into()]).unwrap_err();
        assert!(matches!(err, RewriteError::IllSorted { .. }));
    }

    #[test]
    fn error_values_flow_through_programs() {
        let spec = queue_spec();
        let mut s = SymbolicSession::new(&spec);
        s.assign("x", "NEW", []).unwrap();
        s.assign("x", "REMOVE", ["x".into()]).unwrap(); // REMOVE(NEW) = error
        let queue = spec.sig().find_sort("Queue").unwrap();
        assert_eq!(s.get("x").unwrap(), &Term::Error(queue));
        // Further operations stay error.
        let a = spec.sig().apply("A", vec![]).unwrap();
        s.assign("x", "ADD", ["x".into(), a.into()]).unwrap();
        assert_eq!(s.get("x").unwrap(), &Term::Error(queue));
    }

    #[test]
    fn set_and_bound_vars() {
        let spec = queue_spec();
        let mut s = SymbolicSession::new(&spec);
        let new = spec.sig().apply("NEW", vec![]).unwrap();
        s.set("y", new.clone()).unwrap();
        s.set("x", new).unwrap();
        assert_eq!(s.bound_vars(), vec!["x", "y"]);
        assert!(s.get("z").is_none());
    }
}
