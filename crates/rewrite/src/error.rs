//! Errors raised by the rewrite engine.

use std::error::Error;
use std::fmt;

/// Errors raised during normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RewriteError {
    /// The fuel limit was reached before a normal form. Either the axiom
    /// set is non-terminating on this term (e.g. a circular equation) or
    /// the limit is simply too small for the input.
    FuelExhausted {
        /// The configured maximum number of rule applications.
        limit: u64,
    },
    /// A term was ill-sorted where the engine needed its sort (strict
    /// `error` propagation requires the result sort of a poisoned
    /// application).
    IllSorted {
        /// Human-readable description from the core sort checker.
        detail: String,
    },
    /// A symbolic-interpretation session was misused (e.g. a reference to
    /// an unbound program variable).
    Session {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::FuelExhausted { limit } => write!(
                f,
                "normalization exceeded the fuel limit of {limit} rule applications \
                 (non-terminating axiom set, or raise the limit with `with_fuel`)"
            ),
            RewriteError::IllSorted { detail } => {
                write!(f, "term became ill-sorted during rewriting: {detail}")
            }
            RewriteError::Session { detail } => {
                write!(f, "symbolic session error: {detail}")
            }
        }
    }
}

impl Error for RewriteError {}

impl From<adt_core::CoreError> for RewriteError {
    fn from(e: adt_core::CoreError) -> Self {
        RewriteError::IllSorted {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fuel_limit() {
        let e = RewriteError::FuelExhausted { limit: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn core_errors_convert() {
        let core = adt_core::CoreError::Unknown {
            kind: "sort",
            name: "Q".into(),
        };
        let e: RewriteError = core.into();
        assert!(matches!(e, RewriteError::IllSorted { .. }));
    }
}
