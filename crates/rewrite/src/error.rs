//! Errors raised by the rewrite engine.

use std::error::Error;
use std::fmt;

use adt_core::{EngineError, ExhaustionCause, Fuel, FuelSpent, Interrupt};

/// Errors raised during normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RewriteError {
    /// The fuel budget ran out before a normal form was reached. Either
    /// the axiom set is non-terminating on this term (e.g. a circular
    /// equation) or the budget is simply too small for the input.
    ///
    /// The receipt says exactly what was spent and which bound tripped;
    /// when `spent.cause == Steps`, `spent.steps` equals the configured
    /// step budget exactly, on every job count.
    Exhausted {
        /// What was consumed before the budget ran out.
        spent: FuelSpent,
        /// The budget that was configured.
        budget: Fuel,
    },
    /// A term was ill-sorted where the engine needed its sort (strict
    /// `error` propagation requires the result sort of a poisoned
    /// application).
    IllSorted {
        /// Human-readable description from the core sort checker.
        detail: String,
    },
    /// A symbolic-interpretation session was misused (e.g. a reference to
    /// an unbound program variable).
    Session {
        /// Human-readable description.
        detail: String,
    },
    /// The run's supervisor stopped this normalization (cooperative
    /// cancellation or an expired wall-clock deadline). Unlike
    /// [`RewriteError::Exhausted`], an interrupt is never retried with
    /// a bigger budget — the run itself is over.
    Interrupted {
        /// Why the supervisor fired.
        kind: Interrupt,
        /// Rewrite steps taken before the interrupt was observed.
        steps: u64,
    },
    /// A structural fault inside the engine itself (dangling id, poisoned
    /// lock) surfaced as a value instead of a panic.
    Engine(EngineError),
}

impl RewriteError {
    /// The fuel receipt, if this error reports budget exhaustion.
    pub fn exhaustion(&self) -> Option<FuelSpent> {
        match self {
            RewriteError::Exhausted { spent, .. } => Some(*spent),
            _ => None,
        }
    }

    /// The interrupt kind, if this error reports a supervised stop.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self {
            RewriteError::Interrupted { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Exhausted { spent, budget } => match spent.cause {
                ExhaustionCause::Steps => write!(
                    f,
                    "normalization exhausted its budget of {} rewrite step(s) \
                     (non-terminating axiom set, or raise the limit with `with_fuel`)",
                    budget.steps
                ),
                ExhaustionCause::Depth => write!(
                    f,
                    "normalization exceeded the depth bound of {} after {} step(s)",
                    budget.max_depth.unwrap_or(spent.depth),
                    spent.steps
                ),
                ExhaustionCause::Deadline => write!(
                    f,
                    "normalization hit its wall-clock deadline after {} step(s)",
                    spent.steps
                ),
            },
            RewriteError::Interrupted { kind, steps } => {
                write!(
                    f,
                    "normalization was interrupted ({kind}) after {steps} step(s)"
                )
            }
            RewriteError::IllSorted { detail } => {
                write!(f, "term became ill-sorted during rewriting: {detail}")
            }
            RewriteError::Session { detail } => {
                write!(f, "symbolic session error: {detail}")
            }
            RewriteError::Engine(e) => write!(f, "engine fault: {e}"),
        }
    }
}

impl Error for RewriteError {}

impl From<adt_core::CoreError> for RewriteError {
    fn from(e: adt_core::CoreError) -> Self {
        RewriteError::IllSorted {
            detail: e.to_string(),
        }
    }
}

impl From<EngineError> for RewriteError {
    fn from(e: EngineError) -> Self {
        RewriteError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_step_budget() {
        let e = RewriteError::Exhausted {
            spent: FuelSpent {
                steps: 42,
                depth: 3,
                cause: ExhaustionCause::Steps,
            },
            budget: Fuel::steps(42),
        };
        assert!(e.to_string().contains("42"));
        assert_eq!(
            e.exhaustion().map(|s| s.steps),
            Some(42),
            "receipt is recoverable from the error"
        );
    }

    #[test]
    fn core_errors_convert() {
        let core = adt_core::CoreError::Unknown {
            kind: "sort",
            name: "Q".into(),
        };
        let e: RewriteError = core.into();
        assert!(matches!(e, RewriteError::IllSorted { .. }));
    }

    #[test]
    fn engine_errors_convert() {
        let e: RewriteError = EngineError::LockPoisoned {
            what: "memo shard".into(),
        }
        .into();
        assert!(e.to_string().contains("memo shard"));
    }
}
