//! A deliberately simple tree-walking evaluator, kept as a
//! differential-testing oracle for the arena-backed engine.
//!
//! This is the engine `adt-rewrite` shipped before terms were
//! hash-consed (see `engine.rs`): it clones and walks [`Term`] trees
//! directly, with no memoization, no tracing, and no interning — slow,
//! but so straightforward that its verdicts are easy to trust. The
//! cross-engine equivalence suite normalizes every ground probe with
//! both engines and demands byte-identical normal forms; any
//! divergence is a bug in the fast path. Step counts may legitimately
//! differ in one direction only: hash-consing gives duplicated ground
//! subterms a single identity, so the arena engine normalizes each
//! shared redex once per run where this oracle re-derives every
//! occurrence — the fast path's count is never *higher*.

use adt_core::{match_pattern, Ite, Term};

use crate::engine::{EvalState, Normalization, Rewriter};
use crate::Result;

fn lookup(asms: &[(Term, bool)], cond: &Term) -> Option<bool> {
    asms.iter().rev().find(|(t, _)| t == cond).map(|&(_, b)| b)
}

impl Rewriter<'_> {
    /// Normalizes a term with the reference (tree-walking) evaluator,
    /// reporting the normal form and step count.
    ///
    /// The normal form is identical to [`Rewriter::normalize_full`]'s;
    /// step accounting differs only where the arena engine shares a
    /// duplicated ground subterm that this evaluator re-derives, so
    /// the reference count is an upper bound on the fast path's.
    /// Memoization is never consulted, so repeated calls do the full
    /// work every time. Intended for tests; the hot path is
    /// `normalize`.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_reference(&self, term: &Term) -> Result<Normalization> {
        let mut st = EvalState::new(&self.budget(), self.supervisor().clone(), None);
        let nf = self.reference_eval(term.clone(), &mut st, &Vec::new())?;
        Ok(Normalization {
            term: nf,
            steps: st.steps,
        })
    }

    /// [`Rewriter::normalize_under`] with the reference (tree-walking)
    /// evaluator: the same contextual-assumption semantics, executed
    /// without arenas or caches. The cross-engine equivalence suite uses
    /// this to pin the fast path's assumption handling.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_under_reference(
        &self,
        term: &Term,
        asms: &[(Term, bool)],
    ) -> Result<Term> {
        let mut st = EvalState::new(&self.budget(), self.supervisor().clone(), None);
        self.reference_eval(term.clone(), &mut st, &asms.to_vec())
    }

    fn reference_eval(
        &self,
        term: Term,
        st: &mut EvalState,
        asms: &Vec<(Term, bool)>,
    ) -> Result<Term> {
        let budget = self.budget();
        st.enter(&budget)?;
        let result = self.reference_eval_loop(term, st, asms);
        st.exit();
        result
    }

    fn reference_eval_loop(
        &self,
        term: Term,
        st: &mut EvalState,
        asms: &Vec<(Term, bool)>,
    ) -> Result<Term> {
        let budget = self.budget();
        let mut current = term;
        loop {
            match current {
                Term::Var(_) | Term::Error(_) => return Ok(current),
                Term::Ite(ite) => {
                    let Ite {
                        cond,
                        then_branch,
                        else_branch,
                    } = *ite;
                    let cond = self.reference_eval(cond, st, asms)?;
                    let sig = self.spec().sig();
                    let decided = if cond == sig.tt() {
                        Some(true)
                    } else if cond == sig.ff() {
                        Some(false)
                    } else {
                        lookup(asms, &cond)
                    };
                    if let Some(value) = decided {
                        st.tick(&budget)?;
                        current = if value { then_branch } else { else_branch };
                        continue;
                    }
                    if cond.is_error() {
                        st.tick(&budget)?;
                        let sort = then_branch.sort(self.spec().sig())?;
                        return Ok(Term::Error(sort));
                    }
                    if let Term::Ite(inner) = cond {
                        st.tick(&budget)?;
                        let Ite {
                            cond: c0,
                            then_branch: a,
                            else_branch: b,
                        } = *inner;
                        current = Term::ite(
                            c0,
                            Term::ite(a, then_branch.clone(), else_branch.clone()),
                            Term::ite(b, then_branch, else_branch),
                        );
                        continue;
                    }
                    let mut then_asms = asms.clone();
                    then_asms.push((cond.clone(), true));
                    let t = self.reference_eval(then_branch, st, &then_asms)?;
                    let mut else_asms = asms.clone();
                    else_asms.push((cond.clone(), false));
                    let e = self.reference_eval(else_branch, st, &else_asms)?;
                    if t == e {
                        st.tick(&budget)?;
                        return Ok(t);
                    }
                    let sig = self.spec().sig();
                    if t == sig.tt() && e == sig.ff() {
                        st.tick(&budget)?;
                        return Ok(cond);
                    }
                    return Ok(Term::ite(cond, t, e));
                }
                Term::App(op, args) => {
                    let mut new_args = Vec::with_capacity(args.len());
                    for a in args {
                        new_args.push(self.reference_eval(a, st, asms)?);
                    }
                    if new_args.iter().any(Term::is_error) {
                        st.tick(&budget)?;
                        return Ok(Term::Error(self.spec().sig().try_op(op)?.result()));
                    }
                    let stuck_arg = new_args.iter().enumerate().find_map(|(idx, a)| match a {
                        Term::Ite(inner) => Some((idx, inner.clone())),
                        _ => None,
                    });
                    if let Some((idx, inner)) = stuck_arg {
                        st.tick(&budget)?;
                        let mut then_args = new_args.clone();
                        then_args[idx] = inner.then_branch.clone();
                        let mut else_args = new_args;
                        else_args[idx] = inner.else_branch.clone();
                        current = Term::ite(
                            inner.cond.clone(),
                            Term::App(op, then_args),
                            Term::App(op, else_args),
                        );
                        continue;
                    }
                    let subject = Term::App(op, new_args);
                    let mut fired = None;
                    for rule in self.rules().for_head(op) {
                        if let Some(subst) = match_pattern(rule.lhs(), &subject) {
                            fired = Some((rule, subst));
                            break;
                        }
                    }
                    match fired {
                        Some((rule, subst)) => {
                            st.tick(&budget)?;
                            current = subst.apply(rule.rhs());
                        }
                        None => return Ok(subject),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use adt_core::{SpecBuilder, Term};

    use crate::Rewriter;

    fn flip_spec() -> adt_core::Spec {
        let mut b = SpecBuilder::new("Flip");
        let s = b.sort("S");
        let a = b.ctor("A", [], s);
        let bb = b.ctor("B", [], s);
        let flip = b.op("FLIP", [s], s);
        b.axiom("f1", b.app(flip, [b.app(a, [])]), b.app(bb, []));
        b.axiom("f2", b.app(flip, [b.app(bb, [])]), b.app(a, []));
        b.build().unwrap()
    }

    #[test]
    fn reference_engine_matches_the_arena_engine() {
        let spec = flip_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let mut t = sig.apply("A", vec![]).unwrap();
        for _ in 0..5 {
            t = sig.apply("FLIP", vec![t]).unwrap();
        }
        let fast = rw.normalize_full(&t).unwrap();
        let slow = rw.normalize_reference(&t).unwrap();
        assert_eq!(fast.term, slow.term);
        assert_eq!(fast.steps, slow.steps);
    }

    #[test]
    fn reference_engine_respects_fuel() {
        let mut b = SpecBuilder::new("Loop");
        let s = b.sort("S");
        let _c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x = b.var("x", s);
        b.axiom("loop", b.app(f, [Term::Var(x)]), b.app(f, [Term::Var(x)]));
        let spec = b.build().unwrap();
        let rw = Rewriter::new(&spec).with_fuel(50);
        let t = spec
            .sig()
            .apply("F", vec![spec.sig().apply("C", vec![]).unwrap()])
            .unwrap();
        let err = rw.normalize_reference(&t).unwrap_err();
        let spent = err.exhaustion().expect("step exhaustion");
        assert_eq!(spent.steps, 50);
    }
}
