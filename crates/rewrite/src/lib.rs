//! # adt-rewrite — the operational reading of algebraic specifications
//!
//! Guttag's axioms are equations, but read left-to-right they are rewrite
//! rules, and that reading is what makes a specification *executable*: "In
//! the absence of an implementation, the operations of the algebra may be
//! interpreted symbolically. Thus, except for a significant loss in
//! efficiency, the lack of an implementation can be made completely
//! transparent to the user." (paper, §5.)
//!
//! This crate provides:
//!
//! * [`Rewriter`] — leftmost-innermost normalization with the paper's
//!   strict `error` propagation (`f(…, error, …) = error`), built-in
//!   `if-then-else` reduction, conditional *lifting* and branch merging
//!   (needed when normal forms contain symbolic conditions, as in the
//!   Symboltable representation proof), and a fuel limit.
//! * [`RuleSet`] — axioms compiled into head-indexed rules, extensible with
//!   extra rules (induction hypotheses, environment assumptions).
//! * [`Trace`] — a step-by-step record of a normalization, printable as the
//!   kind of derivation the paper walks through by hand.
//! * [`critical_pairs`] — superposition of rule left-hand sides and
//!   joinability checking, the machinery behind the consistency check in
//!   `adt-check`.
//! * [`SymbolicSession`] — the paper's "symbolic interpretation" facility: a
//!   little machine whose program variables hold normalized terms of the
//!   algebra.
//!
//! # Example
//!
//! ```
//! use adt_core::{SpecBuilder, Term};
//! use adt_rewrite::Rewriter;
//!
//! let mut b = SpecBuilder::new("Tiny");
//! let s = b.sort("S");
//! let zero = b.ctor("ZERO", [], s);
//! let succ = b.ctor("SUCC", [s], s);
//! let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
//! let x = b.var("x", s);
//! let tt = b.tt();
//! let ff = b.ff();
//! b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
//! b.axiom("z2", b.app(is_zero, [b.app(succ, [Term::Var(x)])]), ff);
//! let spec = b.build()?;
//!
//! let rw = Rewriter::new(&spec);
//! let one = spec.sig().apply("SUCC", vec![spec.sig().apply("ZERO", vec![])?])?;
//! let t = spec.sig().apply("IS_ZERO?", vec![one])?;
//! assert_eq!(rw.normalize(&t)?, spec.sig().ff());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod critical;
mod engine;
mod error;
mod reference;
mod rule;
mod symbolic;
mod trace;

pub use critical::{
    classify_superposition, critical_pairs, superpositions, CriticalPair, PairStatus,
    Superposition, SuperpositionSet,
};
pub use engine::{
    normalize_id, normalize_ids, residual_conditionals, Normalization, Proof, Rewriter,
};
pub use error::RewriteError;
pub use rule::{Rule, RuleSet};
pub use symbolic::SymbolicSession;
pub use trace::{Step, Trace};

/// Convenient result alias for fallible rewrite operations.
pub type Result<T, E = RewriteError> = std::result::Result<T, E>;
