//! The rewrite engine: innermost normalization with strict `error`,
//! boolean conditionals, contextual assumptions, and a case-splitting
//! equality prover.
//!
//! # The hash-consed hot path
//!
//! The public API speaks [`Term`] — an ordinary boxed tree — but the
//! evaluator itself runs on [`TermId`]s drawn from a per-normalization
//! [`TermArena`]. Interning gives the hot loop three things the tree
//! representation cannot:
//!
//! * **O(1) equality** — hash-consing makes structural equality an id
//!   compare, so condition decisions, assumption lookups, branch
//!   merging, and nonlinear pattern occurrences cost a `u32` compare
//!   instead of a tree walk;
//! * **O(1) groundness and depth** — both are computed once per node at
//!   interning time and cached, so the memo probe and the instantiation
//!   shortcut read a bit instead of traversing;
//! * **allocation-free sharing** — a rule's contractum reuses the ids of
//!   the matched subject fragments outright; no subtree is ever copied
//!   to be substituted.
//!
//! The arena is run-local: ids never escape a [`Rewriter::run`] call
//! (normal forms are converted back to [`Term`] at the boundary), so the
//! rewriter stays `Sync` without any locking on the evaluation path, and
//! observable behaviour — normal forms, step counts, traces, exhaustion
//! receipts — is byte-identical to the tree-walking evaluator it
//! replaced.
//!
//! # The session surface
//!
//! A [`Session`] owns the cross-check shared state (spec, compiled rules,
//! a long-lived arena, the sharded memo). [`Rewriter::for_session`] builds
//! a rewriter that *borrows* all of it, and the id-native entry points
//! ([`normalize_id`], [`normalize_ids`], [`Rewriter::normalize_id`])
//! accept and return session [`TermId`]s, so callers can hold interned
//! handles end-to-end and only materialize trees when a report needs one.

use std::sync::Arc;
use std::time::Instant;

use adt_core::{
    ExhaustionCause, Fuel, FuelSpent, OpId, Session, ShardedMemo, SortId, Spec, Supervisor, Term,
    TermArena, TermId, TermNode, VarId,
};

use crate::error::RewriteError;
use crate::rule::{Rule, RuleSet};
use crate::trace::Trace;
use crate::Result;

/// The outcome of a successful normalization, with the number of rule
/// applications performed (built-in `if` reductions included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Normalization {
    /// The normal form.
    pub term: Term,
    /// How many reduction steps were taken.
    pub steps: u64,
}

/// The outcome of [`Rewriter::prove_equal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proof {
    /// The two terms were shown equal in every case of the analysis.
    Proved {
        /// Number of leaf cases closed (1 if no split was needed).
        cases: usize,
    },
    /// The prover got stuck: under the recorded assumptions the two normal
    /// forms differ syntactically. This refutes the equation when the
    /// normal forms are distinct constructor terms; otherwise it merely
    /// means the axioms (plus case analysis) could not join them.
    Undecided {
        /// The truth assignment to stuck conditions on the failing path
        /// (empty if no split happened).
        assumptions: Vec<(Term, bool)>,
        /// Normal form of the left term on that path.
        lhs_nf: Term,
        /// Normal form of the right term on that path.
        rhs_nf: Term,
    },
}

impl Proof {
    /// Whether the proof succeeded.
    pub fn is_proved(&self) -> bool {
        matches!(self, Proof::Proved { .. })
    }
}

/// Contextual truth assumptions about stuck boolean terms, used when
/// normalizing under a case analysis (`ISSAME?(id, id1) = true`, say).
///
/// Conditions are arena ids: within one run, hash-consing makes id
/// equality coincide with structural equality, so a lookup is a linear
/// scan of `u32` compares.
type Assumptions = Vec<(TermId, bool)>;

fn lookup(asms: &Assumptions, cond: TermId) -> Option<bool> {
    asms.iter().rev().find(|&&(t, _)| t == cond).map(|&(_, b)| b)
}

/// How often (in steps) the wall-clock deadline and the supervisor are
/// polled. Checking every step would put a syscall in the hot loop;
/// every 1024th step bounds the overshoot while keeping the common
/// (unsupervised, no-deadline) path branch-only.
const DEADLINE_CHECK_INTERVAL: u64 = 1024;

pub(crate) struct EvalState {
    remaining: u64,
    pub(crate) steps: u64,
    depth: usize,
    max_depth: usize,
    /// Only sampled when the budget carries a deadline, so budgets
    /// without one stay fully deterministic.
    started: Option<Instant>,
    /// The run's supervisor, polled at the deadline cadence.
    supervisor: Supervisor,
    /// Cached `supervisor.is_active()` so the inert case costs one
    /// branch per poll window instead of two `Option` inspections.
    supervised: bool,
    pub(crate) trace: Option<Trace>,
}

impl EvalState {
    pub(crate) fn new(budget: &Fuel, supervisor: Supervisor, trace: Option<Trace>) -> Self {
        let supervised = supervisor.is_active();
        EvalState {
            remaining: budget.steps,
            steps: 0,
            depth: 0,
            max_depth: 0,
            started: budget.deadline.map(|_| Instant::now()),
            supervisor,
            supervised,
            trace,
        }
    }

    fn spent(&self, cause: ExhaustionCause) -> FuelSpent {
        FuelSpent {
            steps: self.steps,
            depth: self.max_depth,
            cause,
        }
    }

    pub(crate) fn tick(&mut self, budget: &Fuel) -> Result<()> {
        if self.remaining == 0 {
            return Err(RewriteError::Exhausted {
                spent: self.spent(ExhaustionCause::Steps),
                budget: *budget,
            });
        }
        self.remaining -= 1;
        self.steps += 1;
        // Poll on the very first step as well: a short normalization must
        // still observe an already-expired deadline or cancellation.
        if self.steps == 1 || self.steps.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
            if let (Some(deadline), Some(started)) = (budget.deadline, self.started) {
                if started.elapsed() >= deadline {
                    return Err(RewriteError::Exhausted {
                        spent: self.spent(ExhaustionCause::Deadline),
                        budget: *budget,
                    });
                }
            }
            if self.supervised {
                if let Some(kind) = self.supervisor.interrupted() {
                    return Err(RewriteError::Interrupted {
                        kind,
                        steps: self.steps,
                    });
                }
            }
        }
        Ok(())
    }

    pub(crate) fn enter(&mut self, budget: &Fuel) -> Result<()> {
        self.depth += 1;
        if let Some(cap) = budget.max_depth {
            if self.depth > cap {
                // Report only levels actually entered: the receipt's
                // depth is the deepest admitted, i.e. the cap itself.
                return Err(RewriteError::Exhausted {
                    spent: self.spent(ExhaustionCause::Depth),
                    budget: *budget,
                });
            }
        }
        if self.depth > self.max_depth {
            self.max_depth = self.depth;
        }
        Ok(())
    }

    pub(crate) fn exit(&mut self) {
        self.depth -= 1;
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn note(&mut self, rule: &str, redex: &Term, contractum: &Term) {
        if let Some(t) = &mut self.trace {
            t.record(rule, redex, contractum);
        }
    }
}

/// A term normalizer for one specification.
///
/// The strategy is leftmost-innermost (call-by-value): arguments are
/// normalized before rules are tried at an application, matching the
/// paper's evaluation reading of axiom sets. Four built-in behaviours are
/// layered on top of the user's rules:
///
/// * **strict `error`** — `f(…, error, …)` reduces to `error` of `f`'s
///   result sort, for *every* operation (paper, §3);
/// * **conditional reduction** — `if true/false/error then … else …`;
/// * **conditional lifting** — `if (if c then a else b) then x else y`
///   becomes `if c then (if a then x else y) else (if b then x else y)`
///   when the outer condition is stuck, which puts symbolic normal forms
///   into a canonical "condition tree" shape;
/// * **branch merging / eta** — `if c then x else x` reduces to `x`, and
///   `if c then true else false` to `c`.
///
/// Terms containing variables normalize symbolically: a conditional whose
/// condition cannot be decided is kept, its branches normalized under the
/// corresponding contextual assumption.
///
/// ```
/// use adt_core::{SpecBuilder, Term};
/// use adt_rewrite::Rewriter;
///
/// let mut b = SpecBuilder::new("Flip");
/// let s = b.sort("S");
/// let a = b.ctor("A", [], s);
/// let bb = b.ctor("B", [], s);
/// let flip = b.op("FLIP", [s], s);
/// b.axiom("f1", b.app(flip, [b.app(a, [])]), b.app(bb, []));
/// b.axiom("f2", b.app(flip, [b.app(bb, [])]), b.app(a, []));
/// let spec = b.build()?;
/// let rw = Rewriter::new(&spec);
/// let t = spec.sig().apply("FLIP", vec![spec.sig().apply("FLIP", vec![
///     spec.sig().apply("A", vec![])?])?])?;
/// assert_eq!(rw.normalize(&t)?, spec.sig().apply("A", vec![])?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Rewriter<'a> {
    spec: &'a Spec,
    rules: RuleSet,
    budget: Fuel,
    /// The cross-run ground-term memo ([`adt_core::ShardedMemo`] — it
    /// lives in `adt-core` so a [`Session`] can own it). Held behind an
    /// `Arc`: cloning a memoizing rewriter *shares* the memo (clones are
    /// how callers derive same-rules variants, e.g. with a different
    /// budget, and facts stay valid across those), and
    /// [`Rewriter::for_session`] shares the session's memo the same way.
    memo: Option<Arc<ShardedMemo>>,
    /// Cooperative supervision (deadline/cancellation), polled by every
    /// normalization this rewriter runs. Inert by default.
    supervisor: Supervisor,
}

/// A rule whose sides are interned into the run's arena, paired with its
/// position in the rewriter's [`RuleSet`] bucket for that head (trace
/// labels are read back through the index, so no strings are copied).
struct InternedRule {
    lhs: TermId,
    rhs: TermId,
    index: usize,
}

/// Per-normalization working state: the arena all terms of this run live
/// in, plus everything interned into it.
///
/// A fresh context is built for every [`Rewriter::run`] call. Arenas are
/// append-only and unsynchronized, so run-local contexts are what keep
/// the rewriter `Sync` — the parallel checker shares one rewriter across
/// its workers — with zero locks on the evaluation path, and what
/// guarantee ids never leak between runs.
struct RunCx {
    arena: TermArena,
    /// The interned boolean constants: deciding a condition is an id
    /// compare against these.
    tt: TermId,
    ff: TermId,
    /// Rules compiled per head operation, indexed by `OpId::index` and
    /// populated lazily the first time that head is evaluated (most runs
    /// touch a handful of the specification's operations).
    rules: Vec<Option<Box<[InternedRule]>>>,
    /// Context-free evaluation results: `cache[id.index()]` is the
    /// normal form of `id`, filled in as subterms finish evaluating
    /// outside assumption contexts and traces. This is what makes
    /// re-examining an already-normalized subterm O(1): innermost
    /// rewriting otherwise re-walks the whole normalized portion of the
    /// term after every step. Indexed densely by id — ids are arena
    /// offsets — so a lookup is two array reads, no hashing.
    cache: Vec<Option<TermId>>,
}

impl RunCx {
    fn new(spec: &Spec) -> Self {
        let mut arena = TermArena::new();
        let tt = arena.intern(&spec.sig().tt());
        let ff = arena.intern(&spec.sig().ff());
        RunCx {
            arena,
            tt,
            ff,
            rules: Vec::new(),
            cache: Vec::new(),
        }
    }

    fn cached_nf(&self, id: TermId) -> Option<TermId> {
        self.cache.get(id.index()).copied().flatten()
    }

    fn record_nf(&mut self, id: TermId, nf: TermId) {
        let index = id.index();
        if self.cache.len() <= index {
            self.cache.resize(self.arena.len(), None);
        }
        self.cache[index] = Some(nf);
    }
}

/// Matches an interned rule pattern against an interned subject.
///
/// Bindings accumulate in a vector rather than a map: axiom patterns
/// have a handful of variables, and a linear scan of `u32` pairs beats
/// hashing. A nonlinear occurrence checks id equality — O(1) under
/// hash-consing where the tree matcher re-walked the subject. Recursion
/// is bounded by the *pattern* (axiom-sized), never by the subject.
fn match_id(
    arena: &TermArena,
    pattern: TermId,
    subject: TermId,
    bindings: &mut Vec<(VarId, TermId)>,
) -> bool {
    if pattern == subject && arena.is_ground(pattern) {
        // Identical ids denote identical terms, and a ground pattern
        // binds nothing — nothing further to check.
        return true;
    }
    match (arena.node(pattern), arena.node(subject)) {
        (TermNode::Var(v), _) => match bindings.iter().find(|(bound_var, _)| bound_var == v) {
            Some(&(_, bound)) => bound == subject,
            None => {
                bindings.push((*v, subject));
                true
            }
        },
        (TermNode::Error(a), TermNode::Error(b)) => a == b,
        (TermNode::App(f, ps), TermNode::App(g, ss)) => {
            f == g
                && ps.len() == ss.len()
                && ps
                    .iter()
                    .zip(ss.iter())
                    .all(|(&p, &s)| match_id(arena, p, s, bindings))
        }
        (TermNode::Ite(pc, pt, pe), TermNode::Ite(sc, st, se)) => {
            match_id(arena, *pc, *sc, bindings)
                && match_id(arena, *pt, *st, bindings)
                && match_id(arena, *pe, *se, bindings)
        }
        _ => false,
    }
}

/// Builds a contractum: the rule's right-hand side with bound variables
/// replaced by the matched subject fragments.
///
/// Ground template subtrees are returned as-is — under hash-consing the
/// instantiation of a ground subtree *is* that subtree — so each step
/// costs O(axiom), never O(subject): the bound fragments are shared by
/// id, not copied. An unbound template variable instantiates to itself,
/// mirroring `Subst::apply`. Recursion is bounded by the template.
fn instantiate(arena: &mut TermArena, template: TermId, bindings: &[(VarId, TermId)]) -> TermId {
    if arena.is_ground(template) {
        return template;
    }
    match arena.node(template).clone() {
        // Errors are ground, so the shortcut above already returned.
        TermNode::Error(_) => template,
        TermNode::Var(v) => bindings
            .iter()
            .find(|&&(bound_var, _)| bound_var == v)
            .map_or(template, |&(_, bound)| bound),
        TermNode::App(op, args) => {
            let args = args
                .iter()
                .map(|&a| instantiate(arena, a, bindings))
                .collect();
            arena.app(op, args)
        }
        TermNode::Ite(c, t, e) => {
            let c = instantiate(arena, c, bindings);
            let t = instantiate(arena, t, bindings);
            let e = instantiate(arena, e, bindings);
            arena.ite(c, t, e)
        }
    }
}

/// Rebuilds an `if-then-else` over interned parts as a plain term, for
/// trace output only — never on the untraced path.
fn reify_ite(arena: &TermArena, cond: TermId, then_id: TermId, else_id: TermId) -> Term {
    Term::ite(
        arena.to_term(cond),
        arena.to_term(then_id),
        arena.to_term(else_id),
    )
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter whose rules are the specification's axioms.
    pub fn new(spec: &'a Spec) -> Self {
        Rewriter {
            spec,
            rules: RuleSet::from_spec(spec),
            budget: Fuel::default(),
            memo: None,
            supervisor: Supervisor::none(),
        }
    }

    /// Creates a rewriter with an explicit rule set (e.g. axioms plus
    /// induction hypotheses).
    pub fn with_rules(spec: &'a Spec, rules: RuleSet) -> Self {
        Rewriter {
            spec,
            rules,
            budget: Fuel::default(),
            memo: None,
            supervisor: Supervisor::none(),
        }
    }

    /// Creates a rewriter that borrows a [`Session`]'s world: its spec,
    /// a copy of its compiled rules, and (shared, not copied) its
    /// cross-run memo. This is the constructor that makes
    /// [`Rewriter::normalize_id`] eligible to record into the session's
    /// normal-form cache — the rules are the session's by construction.
    pub fn for_session(session: &'a Session) -> Self {
        Rewriter {
            spec: session.spec(),
            rules: session.rules().clone(),
            budget: Fuel::default(),
            memo: Some(Arc::clone(session.memo())),
            supervisor: Supervisor::none(),
        }
    }

    /// Attaches an existing cross-run memo (shared, not copied).
    ///
    /// Sharing a memo between rewriters is sound only when their rule
    /// sets agree and their signatures assign the same [`OpId`] indices
    /// to the same operations (the memo is keyed by structural hashes,
    /// which bake in op indices). Extending a signature with variables
    /// only preserves both; minting operations or adding rules does not.
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<ShardedMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Enables ground-subterm memoization: the normal form of every
    /// ground subterm encountered is cached for the lifetime of this
    /// rewriter (across `normalize` calls).
    ///
    /// Sound because ground normalization is context-independent; the
    /// cache is bypassed under contextual assumptions and while tracing
    /// (a memo hit would hide derivation steps). Turns the quadratic
    /// re-derivation pattern of observers like `FRONT` into near-linear
    /// work — measured by the `memoization` benchmark.
    ///
    /// The cache is a sharded, mutex-guarded map keyed by the
    /// arena-independent structural hash, so a memoizing rewriter is
    /// `Sync`: the parallel checking engine shares one rewriter (and one
    /// cache) across its worker threads, and facts learned in one run's
    /// arena are found from every other run. Clones of a memoizing
    /// rewriter share the same memo (see [`Rewriter::with_memo`] for the
    /// sharing rules).
    #[must_use]
    pub fn memoizing(mut self) -> Self {
        self.memo = Some(Arc::new(ShardedMemo::new()));
        self
    }

    /// Replaces the step budget (number of reduction steps allowed per
    /// normalization), keeping any depth or deadline bound.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.budget.steps = fuel;
        self
    }

    /// Replaces the whole resource budget (steps, depth, deadline).
    #[must_use]
    pub fn with_budget(mut self, budget: Fuel) -> Self {
        self.budget = budget;
        self
    }

    /// The resource budget in effect for each normalization.
    pub fn budget(&self) -> Fuel {
        self.budget
    }

    /// Places this rewriter under a [`Supervisor`]: every normalization
    /// polls the deadline/cancel token at the same cadence as the fuel
    /// deadline check and fails with [`RewriteError::Interrupted`] once
    /// it fires. An inert supervisor (the default) costs one predicted
    /// branch per poll window.
    #[must_use]
    pub fn supervised(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// The supervisor in effect for each normalization.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Adds an extra rule (tried after earlier rules with the same head).
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.add(rule);
    }

    /// The rule set in use.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The specification this rewriter executes.
    pub fn spec(&self) -> &Spec {
        self.spec
    }

    /// Normalizes a term.
    ///
    /// # Errors
    ///
    /// Returns [`RewriteError::Exhausted`] if no normal form is reached
    /// within the fuel budget (with a [`FuelSpent`] receipt saying which
    /// bound tripped), or [`RewriteError::IllSorted`] if strict error
    /// propagation needed the sort of an ill-sorted subterm.
    pub fn normalize(&self, term: &Term) -> Result<Term> {
        Ok(self.run(term, None, &[])?.0.term)
    }

    /// Normalizes a term, also reporting the number of steps taken.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_full(&self, term: &Term) -> Result<Normalization> {
        Ok(self.run(term, None, &[])?.0)
    }

    /// Normalizes a session-interned term, returning the session id of
    /// its normal form.
    ///
    /// The session's id-keyed normal-form cache is consulted first (a
    /// hit costs one map probe, no evaluation, and no fuel); on a miss
    /// the term is materialized under the session's read lock, run
    /// through the ordinary hot path — a run-local arena plus the
    /// session's shared cross-run memo, if this rewriter carries it —
    /// and the normal form is interned back and recorded, along with
    /// the step count, in the session's counters.
    ///
    /// **Contract:** this rewriter's rules must equal the session's
    /// (guaranteed by [`Rewriter::for_session`]); otherwise the recorded
    /// normal forms would poison the session cache for every other
    /// caller. Budgets may differ: a successful normal form is the same
    /// under any budget that reaches it. Conversely, a caller relying on
    /// exhaustion at a *tiny* budget (fault injection) must not route
    /// through the session — a cache or memo hit would return the normal
    /// form without spending the fuel the caller expects to run out.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_id(&self, session: &Session, id: TermId) -> Result<TermId> {
        if let Some(nf) = session.cached_nf(id) {
            return Ok(nf);
        }
        let term = session.term(id);
        let (norm, _) = self.run(&term, None, &[])?;
        let nf = session.intern(&norm.term);
        session.record_nf(id, nf);
        session.note_normalization(norm.steps);
        Ok(nf)
    }

    /// Normalizes a term, recording every step in a [`Trace`].
    ///
    /// This routes through the same run-local arena hot path as
    /// [`Rewriter::normalize`] — terms are interned and rewritten by id,
    /// not tree-walked — so traced and untraced runs reach the same
    /// normal form by construction. What tracing changes is caching: a
    /// cache or memo hit would deliver a normal form *without* the
    /// derivation steps the trace exists to record, so traced runs skip
    /// both the run cache and the cross-run memo and re-derive every
    /// reduction.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_traced(&self, term: &Term) -> Result<(Term, Trace)> {
        let (norm, trace) = self.run(term, Some(Trace::new()), &[])?;
        Ok((norm.term, trace.unwrap_or_else(Trace::new)))
    }

    /// Normalizes a term under contextual truth assumptions about stuck
    /// boolean terms.
    ///
    /// Assumptions are interned into the same run-local arena as the
    /// subject term, and evaluation runs on the identical id-native hot
    /// path as [`Rewriter::normalize`]. Subterms evaluated under a
    /// non-empty assumption context are excluded from the run cache and
    /// the cross-run memo: a normal form that is only valid because
    /// `ISSAME?(id, id1) = true` was assumed must not be replayed in a
    /// context where it wasn't. The reference-engine counterpart is
    /// [`Rewriter::normalize_under_reference`].
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn normalize_under(&self, term: &Term, assumptions: &[(Term, bool)]) -> Result<Term> {
        Ok(self.run(term, None, assumptions)?.0.term)
    }

    /// Whether two terms have the same normal form.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn equal_nf(&self, a: &Term, b: &Term) -> Result<bool> {
        Ok(self.normalize(a)? == self.normalize(b)?)
    }

    /// Attempts to prove `a = b` by normalization plus case analysis on
    /// stuck boolean conditions (up to `max_splits` nested splits).
    ///
    /// This is the engine behind the representation-correctness proofs of
    /// §4: when normal forms still contain symbolic conditions such as
    /// `ISSAME?(id, id1)`, the prover considers both truth values of the
    /// first stuck condition and recursively closes each case.
    ///
    /// Every normalization inside the proof search runs on the shared
    /// run-local arena hot path (see [`Rewriter::normalize_under`] for
    /// how assumption contexts interact with the caches), so the proof a
    /// memoizing or session-backed rewriter finds is identical to a
    /// plain one's — the caches can change how much work is repeated,
    /// never which [`Proof`] comes back.
    ///
    /// # Errors
    ///
    /// As for [`Rewriter::normalize`].
    pub fn prove_equal(&self, a: &Term, b: &Term, max_splits: usize) -> Result<Proof> {
        self.prove_under(a, b, &mut Vec::new(), max_splits)
    }

    fn prove_under(
        &self,
        a: &Term,
        b: &Term,
        asms: &mut Vec<(Term, bool)>,
        splits_left: usize,
    ) -> Result<Proof> {
        let (na, _) = self.run(a, None, asms)?;
        let (nb, _) = self.run(b, None, asms)?;
        let na = na.term;
        let nb = nb.term;
        if na == nb {
            return Ok(Proof::Proved { cases: 1 });
        }
        if splits_left == 0 {
            return Ok(Proof::Undecided {
                assumptions: asms.clone(),
                lhs_nf: na,
                rhs_nf: nb,
            });
        }
        let cond = first_stuck_cond(&na)
            .or_else(|| first_stuck_cond(&nb))
            .cloned();
        let Some(cond) = cond else {
            return Ok(Proof::Undecided {
                assumptions: asms.clone(),
                lhs_nf: na,
                rhs_nf: nb,
            });
        };
        let mut cases = 0;
        for value in [true, false] {
            asms.push((cond.clone(), value));
            let sub = self.prove_under(&na, &nb, asms, splits_left - 1)?;
            asms.pop();
            match sub {
                Proof::Proved { cases: c } => cases += c,
                undecided @ Proof::Undecided { .. } => return Ok(undecided),
            }
        }
        Ok(Proof::Proved { cases })
    }

    fn run(
        &self,
        term: &Term,
        trace: Option<Trace>,
        asms: &[(Term, bool)],
    ) -> Result<(Normalization, Option<Trace>)> {
        let mut st = EvalState::new(&self.budget, self.supervisor.clone(), trace);
        if let Some(t) = &mut st.trace {
            t.set_initial(term);
        }
        let mut cx = RunCx::new(self.spec);
        let root = cx.arena.intern(term);
        let asms: Assumptions = asms.iter().map(|(t, b)| (cx.arena.intern(t), *b)).collect();
        let nf = self.eval(&mut cx, root, &mut st, &asms)?;
        Ok((
            Normalization {
                term: cx.arena.to_term(nf),
                steps: st.steps,
            },
            st.trace,
        ))
    }

    fn eval(
        &self,
        cx: &mut RunCx,
        id: TermId,
        st: &mut EvalState,
        asms: &Assumptions,
    ) -> Result<TermId> {
        st.enter(&self.budget)?;
        let result = self.eval_memo(cx, id, st, asms);
        st.exit();
        result
    }

    fn eval_memo(
        &self,
        cx: &mut RunCx,
        id: TermId,
        st: &mut EvalState,
        asms: &Assumptions,
    ) -> Result<TermId> {
        // Evaluation outside assumption contexts and traces is
        // context-free, so its results are stable for the whole run:
        // consult the run-local cache first (two array reads), then the
        // cross-run memo for ground applications. The run cache is what
        // makes innermost rewriting near-linear here — without it, every
        // step re-walks the entire already-normalized portion of the
        // term looking for redexes that cannot exist.
        let cacheable = asms.is_empty() && !st.tracing();
        if cacheable {
            if let Some(nf) = cx.cached_nf(id) {
                return Ok(nf);
            }
        }
        // Ground-subterm memoization (see `memoizing`): only applications
        // are worth caching. Groundness is a cached bit, so the probe
        // costs one hash lookup instead of a tree walk.
        let memo_key = match &self.memo {
            Some(memo)
                if cacheable
                    && matches!(cx.arena.node(id), TermNode::App(_, _))
                    && cx.arena.is_ground(id) =>
            {
                if let Some(hit) = memo.get(&cx.arena, id) {
                    let nf = cx.arena.intern(&hit);
                    cx.record_nf(id, nf);
                    return Ok(nf);
                }
                Some(id)
            }
            _ => None,
        };
        let result = self.eval_loop(cx, id, st, asms)?;
        if cacheable {
            cx.record_nf(id, result);
            // A normal form evaluates to itself; recording that fact
            // spares the no-op walk when the result id resurfaces as an
            // argument elsewhere.
            cx.record_nf(result, result);
        }
        if let (Some(memo), Some(key)) = (&self.memo, memo_key) {
            memo.insert(&cx.arena, key, result);
        }
        Ok(result)
    }

    fn eval_loop(
        &self,
        cx: &mut RunCx,
        id: TermId,
        st: &mut EvalState,
        asms: &Assumptions,
    ) -> Result<TermId> {
        let mut current = id;
        let mut bindings: Vec<(VarId, TermId)> = Vec::new();
        loop {
            match cx.arena.node(current) {
                TermNode::Var(_) | TermNode::Error(_) => return Ok(current),
                TermNode::Ite(c, t, e) => {
                    let (c, then_id, else_id) = (*c, *t, *e);
                    let cond = self.eval(cx, c, st, asms)?;
                    let decided = if cond == cx.tt {
                        Some(true)
                    } else if cond == cx.ff {
                        Some(false)
                    } else {
                        lookup(asms, cond)
                    };
                    if let Some(value) = decided {
                        st.tick(&self.budget)?;
                        if st.tracing() {
                            let redex = reify_ite(&cx.arena, cond, then_id, else_id);
                            let rule = if value { "if-true" } else { "if-false" };
                            let taken = cx.arena.to_term(if value { then_id } else { else_id });
                            st.note(rule, &redex, &taken);
                        }
                        current = if value { then_id } else { else_id };
                        continue;
                    }
                    if matches!(cx.arena.node(cond), TermNode::Error(_)) {
                        st.tick(&self.budget)?;
                        let sort = self.branch_sort(&cx.arena, then_id)?;
                        let result = cx.arena.error(sort);
                        if st.tracing() {
                            let redex = reify_ite(&cx.arena, cond, then_id, else_id);
                            st.note("strict", &redex, &cx.arena.to_term(result));
                        }
                        return Ok(result);
                    }
                    // Stuck condition that is itself a conditional: lift it.
                    if let TermNode::Ite(c0, a, b) = cx.arena.node(cond) {
                        let (c0, a, b) = (*c0, *a, *b);
                        st.tick(&self.budget)?;
                        let then_inner = cx.arena.ite(a, then_id, else_id);
                        let else_inner = cx.arena.ite(b, then_id, else_id);
                        let lifted = cx.arena.ite(c0, then_inner, else_inner);
                        if st.tracing() {
                            let redex = reify_ite(&cx.arena, cond, then_id, else_id);
                            st.note("if-lift", &redex, &cx.arena.to_term(lifted));
                        }
                        current = lifted;
                        continue;
                    }
                    // Atomic stuck condition: normalize the branches under
                    // the corresponding contextual assumption.
                    let mut then_asms = asms.clone();
                    then_asms.push((cond, true));
                    let t_nf = self.eval(cx, then_id, st, &then_asms)?;
                    let mut else_asms = asms.clone();
                    else_asms.push((cond, false));
                    let e_nf = self.eval(cx, else_id, st, &else_asms)?;
                    if t_nf == e_nf {
                        st.tick(&self.budget)?;
                        if st.tracing() {
                            let redex = reify_ite(&cx.arena, cond, t_nf, e_nf);
                            st.note("if-merge", &redex, &cx.arena.to_term(t_nf));
                        }
                        return Ok(t_nf);
                    }
                    if t_nf == cx.tt && e_nf == cx.ff {
                        st.tick(&self.budget)?;
                        if st.tracing() {
                            let redex = reify_ite(&cx.arena, cond, t_nf, e_nf);
                            st.note("if-eta", &redex, &cx.arena.to_term(cond));
                        }
                        return Ok(cond);
                    }
                    return Ok(cx.arena.ite(cond, t_nf, e_nf));
                }
                TermNode::App(op, args) => {
                    let op = *op;
                    let args = args.to_vec();
                    let mut new_args = Vec::with_capacity(args.len());
                    for &a in &args {
                        new_args.push(self.eval(cx, a, st, asms)?);
                    }
                    // Strict error propagation: any operation applied to an
                    // argument list containing error is error (paper, §3).
                    if new_args
                        .iter()
                        .any(|&a| matches!(cx.arena.node(a), TermNode::Error(_)))
                    {
                        st.tick(&self.budget)?;
                        let result = cx.arena.error(self.spec.sig().try_op(op)?.result());
                        if st.tracing() {
                            let redex = self.reify_app(&cx.arena, op, &new_args);
                            st.note("strict", &redex, &cx.arena.to_term(result));
                        }
                        return Ok(result);
                    }
                    // A stuck conditional in argument position blocks every
                    // rule (rules match constructor patterns), so lift it
                    // out: f(…, if c then x else y, …) becomes
                    // if c then f(…, x, …) else f(…, y, …). Sound for all
                    // values of c (true, false, and error, by strictness).
                    let stuck_arg =
                        new_args
                            .iter()
                            .enumerate()
                            .find_map(|(idx, &a)| match cx.arena.node(a) {
                                TermNode::Ite(c, t, e) => Some((idx, *c, *t, *e)),
                                _ => None,
                            });
                    if let Some((idx, c, t, e)) = stuck_arg {
                        st.tick(&self.budget)?;
                        let redex = if st.tracing() {
                            Some(self.reify_app(&cx.arena, op, &new_args))
                        } else {
                            None
                        };
                        let mut then_args = new_args.clone();
                        then_args[idx] = t;
                        let mut else_args = new_args;
                        else_args[idx] = e;
                        let then_app = cx.arena.app(op, then_args);
                        let else_app = cx.arena.app(op, else_args);
                        let lifted = cx.arena.ite(c, then_app, else_app);
                        if let Some(redex) = redex {
                            st.note("arg-lift", &redex, &cx.arena.to_term(lifted));
                        }
                        current = lifted;
                        continue;
                    }
                    // If no argument changed, `current` is already the
                    // interned application — skip the dedup probe.
                    let subject = if new_args == args {
                        current
                    } else {
                        cx.arena.app(op, new_args)
                    };
                    let op_index = op.index();
                    if cx.rules.len() <= op_index {
                        cx.rules.resize_with(op_index + 1, || None);
                    }
                    if cx.rules[op_index].is_none() {
                        let compiled: Box<[InternedRule]> = self
                            .rules
                            .for_head(op)
                            .iter()
                            .enumerate()
                            .map(|(index, rule)| InternedRule {
                                lhs: cx.arena.intern(rule.lhs()),
                                rhs: cx.arena.intern(rule.rhs()),
                                index,
                            })
                            .collect();
                        cx.rules[op_index] = Some(compiled);
                    }
                    // Split borrows: the compiled rules (shared) and the
                    // arena (mutable) are disjoint fields of the context.
                    let RunCx { arena, rules, .. } = cx;
                    let mut fired = None;
                    if let Some(Some(compiled)) = rules.get(op_index) {
                        for rule in compiled.iter() {
                            bindings.clear();
                            if match_id(arena, rule.lhs, subject, &mut bindings) {
                                fired = Some(rule);
                                break;
                            }
                        }
                    }
                    match fired {
                        Some(rule) => {
                            st.tick(&self.budget)?;
                            let contractum = instantiate(arena, rule.rhs, &bindings);
                            if st.tracing() {
                                let label = self.rules.for_head(op)[rule.index].label();
                                let redex = arena.to_term(subject);
                                let contractum_term = arena.to_term(contractum);
                                st.note(label, &redex, &contractum_term);
                            }
                            current = contractum;
                        }
                        None => return Ok(subject),
                    }
                }
            }
        }
    }

    /// Rebuilds an application over interned arguments as a plain term,
    /// for trace output only.
    fn reify_app(&self, arena: &TermArena, op: OpId, args: &[TermId]) -> Term {
        Term::App(op, args.iter().map(|&a| arena.to_term(a)).collect())
    }

    /// The sort of the term `id` denotes, read off its head symbol
    /// (following `then`-branches through conditionals).
    ///
    /// Strict error propagation only needs the *sort* of the poisoned
    /// conditional; terms reaching the engine were already validated
    /// when built, so no well-sortedness re-check happens here — and
    /// unlike `Term::sort` this never recurses into arguments, so it is
    /// safe on terms of any size.
    fn branch_sort(&self, arena: &TermArena, mut id: TermId) -> Result<SortId> {
        let sig = self.spec.sig();
        loop {
            match arena.node(id) {
                TermNode::Var(v) => return Ok(sig.var(*v).sort()),
                TermNode::Error(s) => return Ok(*s),
                TermNode::App(op, _) => return Ok(sig.try_op(*op)?.result()),
                TermNode::Ite(_, t, _) => id = *t,
            }
        }
    }
}

/// Finds the first stuck boolean condition in a normalized term (the
/// condition of the outermost conditional, in pre-order).
fn first_stuck_cond(term: &Term) -> Option<&Term> {
    match term {
        Term::Ite(ite) => Some(&ite.cond),
        Term::App(_, args) => args.iter().find_map(first_stuck_cond),
        _ => None,
    }
}

/// Normalizes a session-interned term with a rewriter borrowed from the
/// session (its rules, its memo, the default budget), returning the
/// session id of the normal form.
///
/// Convenience wrapper over [`Rewriter::for_session`] +
/// [`Rewriter::normalize_id`]; callers issuing many calls should build
/// the rewriter once (or use [`normalize_ids`]) to amortize the rule-set
/// copy.
///
/// # Errors
///
/// As for [`Rewriter::normalize`].
pub fn normalize_id(session: &Session, id: TermId) -> Result<TermId> {
    Rewriter::for_session(session).normalize_id(session, id)
}

/// Normalizes a batch of session-interned terms through one borrowed
/// rewriter, returning normal-form ids in input order (failing fast on
/// the first error).
///
/// # Errors
///
/// As for [`Rewriter::normalize`].
pub fn normalize_ids(session: &Session, ids: &[TermId]) -> Result<Vec<TermId>> {
    let rw = Rewriter::for_session(session);
    ids.iter().map(|&id| rw.normalize_id(session, id)).collect()
}

/// Counts the conditional nodes remaining in a term — a quick measure of
/// "how symbolic" a normal form still is.
pub fn residual_conditionals(term: &Term) -> usize {
    match term {
        Term::Ite(ite) => {
            1 + residual_conditionals(&ite.cond)
                + residual_conditionals(&ite.then_branch)
                + residual_conditionals(&ite.else_branch)
        }
        Term::App(_, args) => args.iter().map(residual_conditionals).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::{SpecBuilder, VarId};

    /// The full Queue specification of §3 (axioms 1–6), with Item
    /// instantiated by three constants so ground terms exist.
    fn queue_spec() -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let front = b.op("FRONT", [queue], item);
        let remove = b.op("REMOVE", [queue], queue);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        b.ctor("A", [], item);
        b.ctor("B", [], item);
        b.ctor("C", [], item);
        let q = b.var("q", queue);
        let i = b.var("i", item);
        let qv = Term::Var(q);
        let iv = Term::Var(i);
        let tt = b.tt();
        let ff = b.ff();

        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        b.axiom(
            "q2",
            b.app(is_empty, [b.app(add, [qv.clone(), iv.clone()])]),
            ff,
        );
        b.axiom("q3", b.app(front, [b.app(new, [])]), Term::Error(item));
        b.axiom(
            "q4",
            b.app(front, [b.app(add, [qv.clone(), iv.clone()])]),
            Term::ite(
                b.app(is_empty, [qv.clone()]),
                iv.clone(),
                b.app(front, [qv.clone()]),
            ),
        );
        b.axiom("q5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
        b.axiom(
            "q6",
            b.app(remove, [b.app(add, [qv.clone(), iv.clone()])]),
            Term::ite(
                b.app(is_empty, [qv.clone()]),
                b.app(new, []),
                b.app(add, [b.app(remove, [qv]), iv]),
            ),
        );
        b.build().unwrap()
    }

    fn q(spec: &Spec, name: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(name, args).unwrap()
    }

    #[test]
    fn fifo_behaviour_is_derived() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        // FRONT(ADD(ADD(NEW, A), B)) = A — first in, first out.
        let new = q(&spec, "NEW", vec![]);
        let a = q(&spec, "A", vec![]);
        let b = q(&spec, "B", vec![]);
        let two = q(&spec, "ADD", vec![q(&spec, "ADD", vec![new, a.clone()]), b]);
        let front = q(&spec, "FRONT", vec![two.clone()]);
        assert_eq!(rw.normalize(&front).unwrap(), a);

        // REMOVE then FRONT yields B.
        let removed = q(&spec, "REMOVE", vec![two]);
        let front2 = q(&spec, "FRONT", vec![removed]);
        assert_eq!(rw.normalize(&front2).unwrap(), q(&spec, "B", vec![]));
    }

    #[test]
    fn boundary_conditions_yield_error() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let item = spec.sig().find_sort("Item").unwrap();
        let queue = spec.sig().find_sort("Queue").unwrap();
        let new = q(&spec, "NEW", vec![]);
        assert_eq!(
            rw.normalize(&q(&spec, "FRONT", vec![new.clone()])).unwrap(),
            Term::Error(item)
        );
        assert_eq!(
            rw.normalize(&q(&spec, "REMOVE", vec![new])).unwrap(),
            Term::Error(queue)
        );
    }

    #[test]
    fn errors_propagate_strictly() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let queue = spec.sig().find_sort("Queue").unwrap();
        let item = spec.sig().find_sort("Item").unwrap();
        // ADD(REMOVE(NEW), A) = error, and FRONT of that is error too.
        let bad = q(
            &spec,
            "ADD",
            vec![
                q(&spec, "REMOVE", vec![q(&spec, "NEW", vec![])]),
                q(&spec, "A", vec![]),
            ],
        );
        assert_eq!(rw.normalize(&bad).unwrap(), Term::Error(queue));
        let front = q(&spec, "FRONT", vec![bad]);
        assert_eq!(rw.normalize(&front).unwrap(), Term::Error(item));
    }

    #[test]
    fn error_in_condition_poisons_conditional() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let item = spec.sig().find_sort("Item").unwrap();
        let bool_sort = spec.sig().bool_sort();
        let t = Term::ite(
            Term::Error(bool_sort),
            q(&spec, "A", vec![]),
            q(&spec, "B", vec![]),
        );
        assert_eq!(rw.normalize(&t).unwrap(), Term::Error(item));
    }

    #[test]
    fn traces_record_the_derivation() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let new = q(&spec, "NEW", vec![]);
        let a = q(&spec, "A", vec![]);
        let b = q(&spec, "B", vec![]);
        let two = q(&spec, "ADD", vec![q(&spec, "ADD", vec![new, a.clone()]), b]);
        let front = q(&spec, "FRONT", vec![two]);
        let (nf, trace) = rw.normalize_traced(&front).unwrap();
        assert_eq!(nf, a);
        let used = trace.axioms_used();
        // q4 fires on the outer ADD, q2 decides the emptiness test, then q4
        // and q1 finish the inner queue.
        assert_eq!(used, vec!["q4", "q2", "q4", "q1"]);
        let rendered = trace.render(spec.sig()).to_string();
        assert!(rendered.contains("FRONT(ADD(ADD(NEW, A), B))"));
        assert!(rendered.contains("=[q4]=>"));
    }

    #[test]
    fn step_counts_are_reported() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let new = q(&spec, "NEW", vec![]);
        let norm = rw
            .normalize_full(&q(&spec, "IS_EMPTY?", vec![new]))
            .unwrap();
        assert_eq!(norm.term, spec.sig().tt());
        assert_eq!(norm.steps, 1);
    }

    #[test]
    fn symbolic_normal_forms_keep_stuck_conditions() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        // FRONT(ADD(q, i)) normalizes to if IS_EMPTY?(q) then i else FRONT(q).
        let t = q(
            &spec,
            "FRONT",
            vec![q(&spec, "ADD", vec![qv.clone(), iv.clone()])],
        );
        let nf = rw.normalize(&t).unwrap();
        let expected = Term::ite(
            q(&spec, "IS_EMPTY?", vec![qv.clone()]),
            iv,
            q(&spec, "FRONT", vec![qv]),
        );
        assert_eq!(nf, expected);
        assert_eq!(residual_conditionals(&nf), 1);
    }

    #[test]
    fn assumptions_decide_stuck_conditions() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        let t = q(
            &spec,
            "FRONT",
            vec![q(&spec, "ADD", vec![qv.clone(), iv.clone()])],
        );
        let cond = q(&spec, "IS_EMPTY?", vec![qv.clone()]);
        let under_true = rw.normalize_under(&t, &[(cond.clone(), true)]).unwrap();
        assert_eq!(under_true, iv);
        let under_false = rw.normalize_under(&t, &[(cond, false)]).unwrap();
        assert_eq!(under_false, q(&spec, "FRONT", vec![qv]));
    }

    #[test]
    fn branch_merge_and_eta_fire() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let cond = q(&spec, "IS_EMPTY?", vec![qv.clone()]);
        let a = q(&spec, "A", vec![]);
        // if IS_EMPTY?(q) then A else A = A.
        let merged = Term::ite(cond.clone(), a.clone(), a.clone());
        assert_eq!(rw.normalize(&merged).unwrap(), a);
        // if IS_EMPTY?(q) then true else false = IS_EMPTY?(q).
        let eta = Term::ite(cond.clone(), spec.sig().tt(), spec.sig().ff());
        assert_eq!(rw.normalize(&eta).unwrap(), cond);
    }

    #[test]
    fn conditional_lifting_canonicalizes_nested_conditions() {
        // ite(ite(c, false, u), false, true) == ite(c, true, ite(u, false, true))
        // — the shape that arises in the Symboltable representation proof.
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let new = q(&spec, "NEW", vec![]);
        let c = q(&spec, "IS_EMPTY?", vec![qv.clone()]);
        let u = q(
            &spec,
            "IS_EMPTY?",
            vec![q(&spec, "REMOVE", vec![qv.clone()])],
        );
        let tt = spec.sig().tt();
        let ff = spec.sig().ff();
        let lhs = Term::ite(
            Term::ite(c.clone(), ff.clone(), u.clone()),
            ff.clone(),
            tt.clone(),
        );
        let rhs = Term::ite(c, tt.clone(), Term::ite(u, ff, tt));
        assert_eq!(rw.normalize(&lhs).unwrap(), rw.normalize(&rhs).unwrap());
        let _ = new;
    }

    #[test]
    fn stuck_conditionals_lift_out_of_argument_positions() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        let cond = q(&spec, "IS_EMPTY?", vec![qv.clone()]);
        let new = q(&spec, "NEW", vec![]);
        // FRONT(if IS_EMPTY?(q) then NEW else ADD(q, i))
        let t = q(
            &spec,
            "FRONT",
            vec![Term::ite(
                cond.clone(),
                new.clone(),
                q(&spec, "ADD", vec![qv.clone(), iv.clone()]),
            )],
        );
        let nf = rw.normalize(&t).unwrap();
        // Lifts to if IS_EMPTY?(q) then FRONT(NEW) else FRONT(ADD(q, i));
        // FRONT(NEW) = error, and the else branch reduces under the
        // contextual assumption IS_EMPTY?(q) = false to FRONT(ADD(q,i))'s
        // else arm, i.e. … = FRONT(q) — wait, with the assumption it picks
        // the *else* arm of axiom q4's conditional: FRONT(q).
        let item = spec.sig().find_sort("Item").unwrap();
        let expected = Term::ite(cond, Term::Error(item), q(&spec, "FRONT", vec![qv]));
        assert_eq!(nf, expected);
    }

    #[test]
    fn prove_equal_splits_on_stuck_conditions() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        // FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q): trivially
        // provable (it *is* axiom q4), but route it through the prover.
        let lhs = q(
            &spec,
            "FRONT",
            vec![q(&spec, "ADD", vec![qv.clone(), iv.clone()])],
        );
        let rhs = Term::ite(
            q(&spec, "IS_EMPTY?", vec![qv.clone()]),
            iv,
            q(&spec, "FRONT", vec![qv]),
        );
        assert!(rw.prove_equal(&lhs, &rhs, 4).unwrap().is_proved());
    }

    #[test]
    fn prove_equal_reports_undecided_with_nfs() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let a = q(&spec, "A", vec![]);
        let b = q(&spec, "B", vec![]);
        match rw.prove_equal(&a, &b, 4).unwrap() {
            Proof::Undecided {
                assumptions,
                lhs_nf,
                rhs_nf,
            } => {
                assert!(assumptions.is_empty());
                assert_eq!(lhs_nf, a);
                assert_eq!(rhs_nf, b);
            }
            other => panic!("expected undecided, got {other:?}"),
        }
    }

    /// The circular specification F(x) = F(x): never reaches a normal form.
    fn loop_spec() -> Spec {
        let mut b = SpecBuilder::new("Loop");
        let s = b.sort("S");
        let _c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x: VarId = b.var("x", s);
        b.axiom("loop", b.app(f, [Term::Var(x)]), b.app(f, [Term::Var(x)]));
        b.build().unwrap()
    }

    #[test]
    fn fuel_exhaustion_is_detected_at_exactly_the_budget() {
        let spec = loop_spec();
        let rw = Rewriter::new(&spec).with_fuel(100);
        let t = spec.sig().apply("F", vec![q(&spec, "C", vec![])]).unwrap();
        match rw.normalize(&t) {
            Err(RewriteError::Exhausted { spent, budget }) => {
                assert_eq!(spent.cause, adt_core::ExhaustionCause::Steps);
                assert_eq!(spent.steps, 100, "spent equals the budget exactly");
                assert_eq!(budget.steps, 100);
            }
            other => panic!("expected step exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn depth_bound_trips_on_deep_terms() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec).with_budget(Fuel::default().with_max_depth(4));
        // Nest ADDs deeper than the bound allows.
        let mut t = q(&spec, "NEW", vec![]);
        for _ in 0..8 {
            t = q(&spec, "ADD", vec![t, q(&spec, "A", vec![])]);
        }
        let front = q(&spec, "FRONT", vec![t]);
        match rw.normalize(&front) {
            Err(RewriteError::Exhausted { spent, .. }) => {
                assert_eq!(spent.cause, adt_core::ExhaustionCause::Depth);
                assert_eq!(spent.depth, 4, "receipt records the deepest level seen");
            }
            other => panic!("expected depth exhaustion, got {other:?}"),
        }
        // A shallow term still normalizes under the same budget.
        let shallow = q(&spec, "IS_EMPTY?", vec![q(&spec, "NEW", vec![])]);
        assert_eq!(rw.normalize(&shallow).unwrap(), spec.sig().tt());
    }

    #[test]
    fn deadline_trips_on_divergence() {
        use std::time::Duration;
        let spec = loop_spec();
        // An already-expired deadline with ample steps: the divergent
        // term must stop at the first deadline poll.
        let rw =
            Rewriter::new(&spec).with_budget(Fuel::default().with_deadline(Duration::ZERO));
        let t = spec.sig().apply("F", vec![q(&spec, "C", vec![])]).unwrap();
        match rw.normalize(&t) {
            Err(RewriteError::Exhausted { spent, .. }) => {
                assert_eq!(spent.cause, adt_core::ExhaustionCause::Deadline);
            }
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn rules_fire_in_declaration_order() {
        // Two overlapping rules for the same head: the first declared wins.
        let mut b = SpecBuilder::new("Order");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let f = b.op("F", [s], s);
        let x = b.var("x", s);
        b.axiom("first", b.app(f, [Term::Var(x)]), b.app(c, []));
        b.axiom("second", b.app(f, [b.app(c, [])]), b.app(d, []));
        let spec = b.build().unwrap();
        let rw = Rewriter::new(&spec);
        let t = spec.sig().apply("F", vec![Term::App(c, vec![])]).unwrap();
        let (nf, trace) = rw.normalize_traced(&t).unwrap();
        assert_eq!(nf, Term::App(c, vec![]));
        assert_eq!(trace.axioms_used(), vec!["first"]);
    }

    #[test]
    fn memoizing_rewriter_agrees_with_the_plain_one() {
        let spec = queue_spec();
        let plain = Rewriter::new(&spec);
        let memo = Rewriter::new(&spec).memoizing();
        // A mix of ground and symbolic terms.
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        let mut ground = q(&spec, "NEW", vec![]);
        for name in ["A", "B", "C", "A", "B"] {
            ground = q(&spec, "ADD", vec![ground, q(&spec, name, vec![])]);
        }
        let samples = vec![
            q(&spec, "FRONT", vec![ground.clone()]),
            q(
                &spec,
                "REMOVE",
                vec![q(&spec, "REMOVE", vec![ground.clone()])],
            ),
            q(&spec, "IS_EMPTY?", vec![ground.clone()]),
            q(&spec, "FRONT", vec![q(&spec, "ADD", vec![qv, iv])]),
            q(&spec, "REMOVE", vec![q(&spec, "NEW", vec![])]),
        ];
        for t in &samples {
            assert_eq!(plain.normalize(t).unwrap(), memo.normalize(t).unwrap());
        }
        // The cache persists across calls: a second normalization of the
        // big ground term takes zero steps.
        let again = memo
            .normalize_full(&q(&spec, "FRONT", vec![ground]))
            .unwrap();
        assert_eq!(again.steps, 0);
    }

    #[test]
    fn memoization_skips_assumption_contexts() {
        // A memoizing rewriter must still be correct for prove_equal,
        // which normalizes under assumptions.
        let spec = queue_spec();
        let rw = Rewriter::new(&spec).memoizing();
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let iv = Term::Var(spec.sig().find_var("i").unwrap());
        let lhs = q(
            &spec,
            "FRONT",
            vec![q(&spec, "ADD", vec![qv.clone(), iv.clone()])],
        );
        let rhs = Term::ite(
            q(&spec, "IS_EMPTY?", vec![qv.clone()]),
            iv,
            q(&spec, "FRONT", vec![qv]),
        );
        assert!(rw.prove_equal(&lhs, &rhs, 4).unwrap().is_proved());
    }

    #[test]
    fn deep_ground_terms_exhaust_depth_instead_of_overflowing() {
        // Before `Fuel::default` carried a depth bound, normalizing a
        // deep enough ground term recursed off the native stack and
        // aborted the whole process. It must yield an `Exhausted`
        // verdict instead. The spawned thread's large stack is for the
        // *construction and drop* of the 100k-deep input `Term` (whose
        // drop glue is recursive), not for the evaluator: the evaluator
        // stops at DEFAULT_MAX_DEPTH levels.
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn(|| {
                let spec = queue_spec();
                let rw = Rewriter::new(&spec);
                let add = spec.sig().find_op("ADD").unwrap();
                let a = q(&spec, "A", vec![]);
                // Raw `Term::App` construction: `Signature::apply` would
                // sort-check every level recursively.
                let mut t = q(&spec, "NEW", vec![]);
                for _ in 0..100_000 {
                    t = Term::App(add, vec![t, a.clone()]);
                }
                let front = spec.sig().find_op("FRONT").unwrap();
                match rw.normalize(&Term::App(front, vec![t])) {
                    Err(RewriteError::Exhausted { spent, budget }) => {
                        assert_eq!(spent.cause, adt_core::ExhaustionCause::Depth);
                        assert_eq!(spent.depth, adt_core::DEFAULT_MAX_DEPTH);
                        assert_eq!(budget.max_depth, Some(adt_core::DEFAULT_MAX_DEPTH));
                    }
                    Err(other) => panic!("expected depth exhaustion, got {other:?}"),
                    Ok(_) => panic!("expected depth exhaustion, got a normal form"),
                }
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn session_normalize_id_agrees_with_tree_normalize() {
        let spec = queue_spec();
        let session = Session::new(spec.clone());
        let plain = Rewriter::new(&spec);
        let qv = Term::Var(spec.sig().find_var("q").unwrap());
        let mut ground = q(&spec, "NEW", vec![]);
        for name in ["A", "B", "C"] {
            ground = q(&spec, "ADD", vec![ground, q(&spec, name, vec![])]);
        }
        let samples = vec![
            q(&spec, "FRONT", vec![ground.clone()]),
            q(&spec, "REMOVE", vec![ground.clone()]),
            q(&spec, "IS_EMPTY?", vec![q(&spec, "NEW", vec![])]),
            // Symbolic terms flow through the same path.
            q(&spec, "FRONT", vec![qv]),
        ];
        for t in &samples {
            let id = session.intern(t);
            let nf_id = super::normalize_id(&session, id).unwrap();
            assert_eq!(session.term(nf_id), plain.normalize(t).unwrap(), "{t:?}");
        }
        let stats = session.stats();
        assert_eq!(stats.normalizations, samples.len() as u64);
        assert!(stats.rewrite_steps > 0);
    }

    #[test]
    fn session_nf_cache_short_circuits_repeat_queries() {
        let spec = queue_spec();
        let session = Session::new(spec.clone());
        let rw = Rewriter::for_session(&session);
        let mut ground = q(&spec, "NEW", vec![]);
        for name in ["A", "B", "C", "A"] {
            ground = q(&spec, "ADD", vec![ground, q(&spec, name, vec![])]);
        }
        let front = q(&spec, "FRONT", vec![ground]);
        let id = session.intern(&front);
        let first = rw.normalize_id(&session, id).unwrap();
        let before = session.stats();
        let second = rw.normalize_id(&session, id).unwrap();
        assert_eq!(first, second);
        let after = session.stats();
        assert_eq!(after.nf_cache_hits, before.nf_cache_hits + 1);
        assert_eq!(
            after.normalizations, before.normalizations,
            "a cache hit runs no evaluation"
        );
        // A normal form is its own normal form, without evaluation.
        assert_eq!(rw.normalize_id(&session, first).unwrap(), first);
    }

    #[test]
    fn session_memo_is_shared_across_for_session_rewriters() {
        let spec = queue_spec();
        let session = Session::new(spec.clone());
        let mut ground = q(&spec, "NEW", vec![]);
        for name in ["A", "B", "C", "A", "B"] {
            ground = q(&spec, "ADD", vec![ground, q(&spec, name, vec![])]);
        }
        let front = q(&spec, "FRONT", vec![ground]);
        // Warm the session memo through one borrowed rewriter…
        let warm = Rewriter::for_session(&session);
        let want = warm.normalize(&front).unwrap();
        // …then a *fresh* borrowed rewriter sees the warm facts: the
        // second run answers from the memo in zero steps.
        let cold = Rewriter::for_session(&session);
        let norm = cold.normalize_full(&front).unwrap();
        assert_eq!(norm.term, want);
        assert_eq!(norm.steps, 0, "cross-rewriter memo hit");
        assert!(session.stats().memo_hits > 0);
    }

    #[test]
    fn normalize_ids_batches_in_input_order() {
        let spec = queue_spec();
        let session = Session::new(spec.clone());
        let terms = [
            q(&spec, "IS_EMPTY?", vec![q(&spec, "NEW", vec![])]),
            q(
                &spec,
                "FRONT",
                vec![q(
                    &spec,
                    "ADD",
                    vec![q(&spec, "NEW", vec![]), q(&spec, "A", vec![])],
                )],
            ),
        ];
        let ids: Vec<_> = terms.iter().map(|t| session.intern(t)).collect();
        let nfs = super::normalize_ids(&session, &ids).unwrap();
        assert_eq!(session.term(nfs[0]), spec.sig().tt());
        assert_eq!(session.term(nfs[1]), q(&spec, "A", vec![]));
    }

    #[test]
    fn equal_nf_convenience() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let new = q(&spec, "NEW", vec![]);
        let a = q(&spec, "A", vec![]);
        // REMOVE(ADD(NEW, A)) == NEW
        let lhs = q(&spec, "REMOVE", vec![q(&spec, "ADD", vec![new.clone(), a])]);
        assert!(rw.equal_nf(&lhs, &new).unwrap());
        let b_ = q(&spec, "B", vec![]);
        assert!(!rw.equal_nf(&b_, &new).unwrap());
    }
}
