//! Compiled rewrite rules, indexed by head operation.
//!
//! The types themselves now live in `adt-core` (so an
//! [`adt_core::Session`] can own the compiled rule set alongside the
//! signature and term arena); this module re-exports them under their
//! historical path for the engine and its callers.

pub use adt_core::{Rule, RuleSet};
