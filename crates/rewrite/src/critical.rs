//! Critical pairs: superpositions of rule left-hand sides.
//!
//! When two axioms can both rewrite one term, the two results must be
//! joinable or the axiom set equates things it should not — the paper's
//! *consistency* concern ("If any two of these are contradictory, the
//! axiomatization is inconsistent", §3). This module computes all critical
//! pairs of a specification and classifies each as joinable or diverged.

use adt_core::{unify, Fuel, FuelSpent, Interrupt, Position, Spec, Subst, Term, VarId};

use crate::engine::Rewriter;
use crate::error::RewriteError;
use crate::rule::RuleSet;
use crate::Result;

/// How a critical pair resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairStatus {
    /// Both reducts normalize to the same term.
    Joinable(Term),
    /// The reducts normalize to different terms — evidence of
    /// inconsistency if the two normal forms are distinct constructor
    /// terms (e.g. `true` vs `false`).
    Diverged {
        /// Normal form of the root-rewrite reduct.
        left_nf: Term,
        /// Normal form of the inner-rewrite reduct.
        right_nf: Term,
    },
    /// Normalization ran out of fuel, so joinability is unknown — but
    /// structurally so: the receipt lets a retry ladder re-classify the
    /// pair with a bigger budget.
    Exhausted {
        /// What was spent before the budget tripped.
        spent: FuelSpent,
        /// The budget that tripped.
        budget: Fuel,
    },
    /// The run's supervisor stopped the classification (cancellation or
    /// deadline); never retried.
    Interrupted {
        /// Why the supervisor fired.
        kind: Interrupt,
    },
    /// Normalization failed for another reason, so joinability is
    /// unknown.
    Unknown {
        /// Human-readable reason.
        reason: String,
    },
}

/// One critical pair: a *peak* term reducible two ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPair {
    /// Label of the rule applied at the root.
    pub outer_rule: String,
    /// Label of the rule applied at `position`.
    pub inner_rule: String,
    /// The non-variable position of `outer_rule`'s left-hand side where
    /// `inner_rule`'s left-hand side was overlapped.
    pub position: Position,
    /// The common ancestor `σ(l_outer)`.
    pub peak: Term,
    /// The root-rewrite reduct `σ(r_outer)`.
    pub left: Term,
    /// The inner-rewrite reduct `σ(l_outer[r_inner]_p)`.
    pub right: Term,
    /// Joinability classification.
    pub status: PairStatus,
}

impl CriticalPair {
    /// Whether this pair resolved without divergence.
    pub fn is_joinable(&self) -> bool {
        matches!(self.status, PairStatus::Joinable(_))
    }
}

/// The result of a critical-pair analysis.
///
/// Because pairs mention freshly renamed variables, the analysis carries
/// its own extended copy of the specification; render pair terms against
/// [`CriticalPairAnalysis::spec`].
#[derive(Debug, Clone)]
pub struct CriticalPairAnalysis {
    /// The input specification extended with the renamed-apart variables
    /// used by the pairs.
    pub spec: Spec,
    /// All non-trivial critical pairs found.
    pub pairs: Vec<CriticalPair>,
}

impl CriticalPairAnalysis {
    /// Whether every pair joined — i.e. the rules are locally confluent as
    /// far as this analysis can see.
    pub fn all_joinable(&self) -> bool {
        self.pairs.iter().all(CriticalPair::is_joinable)
    }

    /// The diverged pairs only.
    pub fn diverged(&self) -> impl Iterator<Item = &CriticalPair> {
        self.pairs
            .iter()
            .filter(|p| matches!(p.status, PairStatus::Diverged { .. }))
    }
}

/// One superposition: a critical pair before joinability classification.
///
/// Produced by [`superpositions`]; classified into a [`CriticalPair`] by
/// [`classify_superposition`]. The split exists so callers (the parallel
/// checking engine in `adt-check`) can enumerate sequentially — the
/// enumeration order defines report order — and classify each pair on any
/// worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superposition {
    /// Label of the rule applied at the root.
    pub outer_rule: String,
    /// Label of the rule applied at `position`.
    pub inner_rule: String,
    /// The overlap position inside `outer_rule`'s left-hand side.
    pub position: Position,
    /// The common ancestor `σ(l_outer)`.
    pub peak: Term,
    /// The root-rewrite reduct `σ(r_outer)`.
    pub left: Term,
    /// The inner-rewrite reduct `σ(l_outer[r_inner]_p)`.
    pub right: Term,
}

/// All superpositions of a specification, with the variable-renamed
/// extension of the spec their terms live in.
#[derive(Debug, Clone)]
pub struct SuperpositionSet {
    /// The input specification extended with renamed-apart variables.
    pub spec: Spec,
    /// Superpositions in deterministic (outer rule, inner rule, position)
    /// enumeration order.
    pub superpositions: Vec<Superposition>,
}

/// Enumerates every non-trivial superposition of the specification's
/// axioms *without* checking joinability.
///
/// Trivial self-overlaps (a rule superposed on itself at the root) are
/// skipped, as are overlaps at variable positions. The returned order is
/// deterministic: outer rules in axiom order, inner rules in axiom order,
/// positions in `subterms()` order.
///
/// # Errors
///
/// Returns an error only if the extended specification cannot be
/// constructed (which would indicate a bug, not bad input).
pub fn superpositions(spec: &Spec) -> Result<SuperpositionSet> {
    // Extend the signature with a renamed copy of every variable, so the
    // two rules of a pair never share variables.
    let mut sig = spec.sig().clone();
    let mut renaming = Subst::new();
    let var_ids: Vec<VarId> = sig.var_ids().collect();
    for v in var_ids {
        let info_name = sig.var(v).name().to_owned();
        let sort = sig.var(v).sort();
        let fresh_name = format!("{info_name}\u{2032}"); // a prime mark
        let fresh = sig
            .add_var(&fresh_name, sort)
            .expect("fresh variable names cannot collide");
        renaming.bind(v, Term::Var(fresh));
    }
    let extended = Spec::from_parts(
        spec.name().to_owned(),
        sig,
        spec.axioms().to_vec(),
        spec.tois().to_vec(),
        spec.params().to_vec(),
    )
    .map_err(crate::RewriteError::from)?;

    let rules = RuleSet::from_spec(&extended);
    let all_rules: Vec<_> = rules.iter().collect();
    let mut found = Vec::new();
    for (oi, outer) in all_rules.iter().enumerate() {
        for (ii, inner) in all_rules.iter().enumerate() {
            let inner_lhs = renaming.apply(inner.lhs());
            let inner_rhs = renaming.apply(inner.rhs());
            for (pos, sub) in outer.lhs().subterms() {
                if matches!(sub, Term::Var(_)) {
                    continue;
                }
                if oi == ii && pos.is_empty() {
                    continue; // trivial self-overlap
                }
                let Some(unifier) = unify(sub, &inner_lhs) else {
                    continue;
                };
                let subst = &unifier.subst;
                let peak = deep_apply(subst, outer.lhs());
                let left = deep_apply(subst, outer.rhs());
                let replaced = outer
                    .lhs()
                    .replace_at(&pos, inner_rhs.clone())
                    .expect("position came from subterms()");
                let right = deep_apply(subst, &replaced);
                found.push(Superposition {
                    outer_rule: outer.label().to_owned(),
                    inner_rule: inner.label().to_owned(),
                    position: pos,
                    peak,
                    left,
                    right,
                });
            }
        }
    }
    Ok(SuperpositionSet {
        spec: extended,
        superpositions: found,
    })
}

/// Classifies one superposition as joinable, diverged, or unknown, by
/// normalizing both reducts with the given rewriter.
///
/// The rewriter must have been built over [`SuperpositionSet::spec`] (the
/// extended spec), not the original input spec. Safe to call from several
/// threads at once when the rewriter is shared by reference.
pub fn classify_superposition(rw: &Rewriter<'_>, sp: &Superposition) -> CriticalPair {
    let status = join(rw, &sp.left, &sp.right);
    CriticalPair {
        outer_rule: sp.outer_rule.clone(),
        inner_rule: sp.inner_rule.clone(),
        position: sp.position.clone(),
        peak: sp.peak.clone(),
        left: sp.left.clone(),
        right: sp.right.clone(),
        status,
    }
}

/// Computes all critical pairs of the specification's axioms and checks
/// each for joinability by normalization (with a bounded case-split
/// fallback for conditional right-hand sides).
///
/// Trivial self-overlaps (a rule superposed on itself at the root) are
/// skipped, as are overlaps at variable positions.
///
/// Equivalent to [`superpositions`] followed by [`classify_superposition`]
/// on each pair in order.
///
/// # Errors
///
/// Returns an error only if the extended specification cannot be
/// constructed (which would indicate a bug, not bad input).
pub fn critical_pairs(spec: &Spec) -> Result<CriticalPairAnalysis> {
    let set = superpositions(spec)?;
    let rw = Rewriter::new(&set.spec);
    let pairs = set
        .superpositions
        .iter()
        .map(|sp| classify_superposition(&rw, sp))
        .collect();
    Ok(CriticalPairAnalysis {
        spec: set.spec,
        pairs,
    })
}

/// Applies a (possibly triangular) unifier until fixpoint, so chained
/// variable bindings fully resolve.
fn deep_apply(subst: &Subst, term: &Term) -> Term {
    let mut current = subst.apply(term);
    for _ in 0..64 {
        let next = subst.apply(&current);
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

fn join(rw: &Rewriter<'_>, left: &Term, right: &Term) -> PairStatus {
    match rw.prove_equal(left, right, 6) {
        Ok(crate::Proof::Proved { .. }) => match rw.normalize(left) {
            Ok(nf) => PairStatus::Joinable(nf),
            Err(e) => undetermined(e),
        },
        Ok(crate::Proof::Undecided { lhs_nf, rhs_nf, .. }) => PairStatus::Diverged {
            left_nf: lhs_nf,
            right_nf: rhs_nf,
        },
        Err(e) => undetermined(e),
    }
}

/// Maps a normalization error to the matching undetermined status,
/// keeping exhaustion receipts and interrupts structural so the check
/// layer can retry (or refuse to retry) without parsing strings.
fn undetermined(e: RewriteError) -> PairStatus {
    match e {
        RewriteError::Exhausted { spent, budget } => PairStatus::Exhausted { spent, budget },
        RewriteError::Interrupted { kind, .. } => PairStatus::Interrupted { kind },
        other => PairStatus::Unknown {
            reason: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    #[test]
    fn orthogonal_spec_has_no_pairs() {
        // Queue-like axioms on disjoint constructor cases never overlap.
        let mut b = SpecBuilder::new("Tiny");
        let s = b.sort("S");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let x = b.var("x", s);
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [Term::Var(x)])]), ff);
        let spec = b.build().unwrap();
        let analysis = critical_pairs(&spec).unwrap();
        assert!(analysis.pairs.is_empty());
        assert!(analysis.all_joinable());
    }

    #[test]
    fn overlapping_consistent_rules_join() {
        // F(x) = C and F(C) = C overlap at the root; both reduce to C.
        let mut b = SpecBuilder::new("Olap");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x = b.var("x", s);
        b.axiom("general", b.app(f, [Term::Var(x)]), b.app(c, []));
        b.axiom("specific", b.app(f, [b.app(c, [])]), b.app(c, []));
        let spec = b.build().unwrap();
        let analysis = critical_pairs(&spec).unwrap();
        assert!(!analysis.pairs.is_empty());
        assert!(analysis.all_joinable(), "pairs: {:#?}", analysis.pairs);
    }

    #[test]
    fn contradictory_rules_diverge() {
        // F(x) = C and F(C) = D: the peak F(C) rewrites to both C and D.
        let mut b = SpecBuilder::new("Contradiction");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let f = b.op("F", [s], s);
        let x = b.var("x", s);
        b.axiom("general", b.app(f, [Term::Var(x)]), b.app(c, []));
        b.axiom("specific", b.app(f, [b.app(c, [])]), b.app(d, []));
        let spec = b.build().unwrap();
        let analysis = critical_pairs(&spec).unwrap();
        assert!(!analysis.all_joinable());
        let diverged: Vec<_> = analysis.diverged().collect();
        assert!(!diverged.is_empty());
        match &diverged[0].status {
            PairStatus::Diverged { left_nf, right_nf } => {
                assert_ne!(left_nf, right_nf);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn nested_overlap_is_found() {
        // G(F(C)) = C with F(C) = D gives a pair at position [0].
        let mut b = SpecBuilder::new("Nested");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let f = b.op("F", [s], s);
        let g = b.op("G", [s], s);
        b.axiom("outer", b.app(g, [b.app(f, [b.app(c, [])])]), b.app(c, []));
        b.axiom("inner", b.app(f, [b.app(c, [])]), b.app(d, []));
        let spec = b.build().unwrap();
        let analysis = critical_pairs(&spec).unwrap();
        let found = analysis
            .pairs
            .iter()
            .any(|p| p.outer_rule == "outer" && p.inner_rule == "inner" && p.position == vec![0]);
        assert!(found, "pairs: {:#?}", analysis.pairs);
        // G(D) is stuck at G(D) on one side and C on the other — diverged.
        assert!(!analysis.all_joinable());
    }
}
