//! Thread-safety stress tests for the sharded rewrite memo: many threads
//! normalizing through one shared memoizing [`Rewriter`] must produce
//! exactly the normal forms the sequential engine produces, with no
//! deadlock — the property the parallel checking engine relies on when it
//! shares a rewriter across its worker pool.

use adt_core::DetRng;
use adt_rewrite::Rewriter;
use adt_structures::specs::{queue_spec, symboltable_spec};

/// Builds a ground Queue term of `adds` enqueues then `removes` dequeues,
/// with items drawn from a seeded stream.
fn queue_term(spec: &adt_core::Spec, adds: usize, removes: usize, rng: &mut DetRng) -> adt_core::Term {
    let sig = spec.sig();
    let items = ["A", "B", "C"];
    let mut t = sig.apply("NEW", vec![]).unwrap();
    for _ in 0..adds {
        let item = sig.apply(items[rng.below(3)], vec![]).unwrap();
        t = sig.apply("ADD", vec![t, item]).unwrap();
    }
    for _ in 0..removes {
        t = sig.apply("REMOVE", vec![t]).unwrap();
    }
    t
}

#[test]
fn concurrent_normalization_matches_sequential_normal_forms() {
    let spec = queue_spec();
    let sig = spec.sig();

    // A workload with heavy shared structure: observers over overlapping
    // queue states, so threads race on the same memo entries.
    let mut rng = DetRng::new(0xC0_FFEE);
    let mut terms = Vec::new();
    for _ in 0..48 {
        let adds = 1 + rng.below(24);
        let removes = rng.below(adds);
        let state = queue_term(&spec, adds, removes, &mut rng);
        let op = ["FRONT", "IS_EMPTY?", "REMOVE"][rng.below(3)];
        terms.push(sig.apply(op, vec![state]).unwrap());
    }

    // Sequential ground truth from a plain (unmemoized) rewriter.
    let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
    let expected: Vec<_> = terms.iter().map(|t| plain.normalize(t).unwrap()).collect();

    // One shared memoizing rewriter, hammered from 8 threads, each
    // walking the whole term list in a different order.
    let memo = Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing();
    std::thread::scope(|scope| {
        for offset in 0..8 {
            let memo = &memo;
            let terms = &terms;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for k in 0..terms.len() {
                        let idx = (k * (offset + 1) + round * 7) % terms.len();
                        let nf = memo.normalize(&terms[idx]).unwrap();
                        assert_eq!(nf, expected[idx], "term {idx} from thread {offset}");
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_symboltable_queries_share_one_memo() {
    let spec = symboltable_spec();
    let sig = spec.sig();

    // One deep state, many observers — the access pattern the memo is
    // for: every thread's RETRIEVE shares the state's subterms.
    let mut state = sig.apply("INIT", vec![]).unwrap();
    let attr = sig.apply("ATTR_1", vec![]).unwrap();
    let idents = ["ID_X", "ID_Y", "ID_Z"];
    for k in 0..12 {
        if k % 5 == 0 {
            state = sig.apply("ENTERBLOCK", vec![state]).unwrap();
        }
        let id = sig.apply(idents[k % 3], vec![]).unwrap();
        state = sig.apply("ADD", vec![state, id, attr.clone()]).unwrap();
    }
    let queries: Vec<_> = (0..idents.len())
        .map(|k| {
            let id = sig.apply(idents[k], vec![]).unwrap();
            sig.apply("RETRIEVE", vec![state.clone(), id]).unwrap()
        })
        .collect();

    let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
    let expected: Vec<_> = queries.iter().map(|t| plain.normalize(t).unwrap()).collect();

    let memo = Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let memo = &memo;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..4 {
                    for (q, want) in queries.iter().zip(expected) {
                        assert_eq!(&memo.normalize(q).unwrap(), want);
                    }
                }
            });
        }
    });
}

#[test]
fn memoized_results_stay_correct_after_concurrent_warmup() {
    // After the concurrent phase has filled the cache, single-threaded
    // reads must still agree with the plain engine (no torn entries).
    let spec = queue_spec();
    let sig = spec.sig();
    let mut rng = DetRng::new(7);
    let deep = queue_term(&spec, 32, 16, &mut rng);
    let front = sig.apply("FRONT", vec![deep]).unwrap();

    let plain = Rewriter::new(&spec).with_fuel(1_000_000_000);
    let want = plain.normalize(&front).unwrap();

    let memo = Rewriter::new(&spec).with_fuel(1_000_000_000).memoizing();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let memo = &memo;
            let front = &front;
            scope.spawn(move || memo.normalize(front).unwrap());
        }
    });
    assert_eq!(memo.normalize(&front).unwrap(), want);
}
