//! Identifiers and attribute lists — the paper's parameter types.
//!
//! Type `Identifier` comes with `ISSAME?` (footnote 2) and `HASH`
//! ("assumed to be defined in the type Identifier specification", §4);
//! `AttributeList` is the payload a compiler attaches to a declaration.

use std::fmt;

/// An identifier of the compiled language.
///
/// ```
/// use adt_structures::Ident;
///
/// let a = Ident::new("x");
/// let b = Ident::new("x");
/// assert!(a.same(&b));            // ISSAME?
/// let bucket = a.hash_bucket(64); // HASH: Identifier -> [0, 64)
/// assert!(bucket < 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident(String);

impl Ident {
    /// Creates an identifier from its spelling.
    pub fn new(name: impl Into<String>) -> Self {
        Ident(name.into())
    }

    /// The spelling.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The paper's `ISSAME?` operation.
    pub fn same(&self, other: &Ident) -> bool {
        self == other
    }

    /// The paper's `HASH: Identifier → [1, 2, …, n]` operation (0-based
    /// here), a polynomial rolling hash reduced modulo the table size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn hash_bucket(&self, n: usize) -> usize {
        assert!(n > 0, "hash table size must be positive");
        let mut h: u64 = 5381;
        for b in self.0.bytes() {
            h = h.wrapping_mul(33).wrapping_add(u64::from(b));
        }
        (h % n as u64) as usize
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The attributes a compiler associates with a declared identifier
/// (type, kind, offset, …): an ordered list of name/value pairs.
///
/// ```
/// use adt_structures::AttrList;
///
/// let attrs = AttrList::new()
///     .with("kind", "variable")
///     .with("type", "integer");
/// assert_eq!(attrs.get("type"), Some("integer"));
/// assert_eq!(attrs.get("size"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct AttrList {
    attrs: Vec<(String, String)>,
}

impl AttrList {
    /// An empty attribute list.
    pub fn new() -> Self {
        AttrList::default()
    }

    /// Adds (or replaces) an attribute, builder-style.
    #[must_use]
    pub fn with(mut self, name: &str, value: &str) -> Self {
        self.set(name, value);
        self
    }

    /// Adds (or replaces) an attribute in place.
    pub fn set(&mut self, name: &str, value: &str) {
        match self.attrs.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value.to_owned(),
            None => self.attrs.push((name.to_owned(), value.to_owned())),
        }
    }

    /// The value of an attribute.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

impl fmt::Display for AttrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (n, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<(String, String)> for AttrList {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        let mut a = AttrList::new();
        for (n, v) in iter {
            a.set(&n, &v);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issame_is_spelling_equality() {
        assert!(Ident::new("x").same(&Ident::from("x")));
        assert!(!Ident::new("x").same(&Ident::new("y")));
        assert_eq!(Ident::new("foo").to_string(), "foo");
        assert_eq!(Ident::new("foo").as_str(), "foo");
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for n in [1, 7, 64, 1024] {
            for name in ["x", "y", "a_rather_long_identifier", ""] {
                let id = Ident::new(name);
                let b1 = id.hash_bucket(n);
                let b2 = id.hash_bucket(n);
                assert_eq!(b1, b2);
                assert!(b1 < n);
            }
        }
    }

    #[test]
    fn hash_spreads_distinct_names() {
        // Not a statistical test, just a sanity check that the hash is not
        // constant over a realistic name population.
        let buckets: std::collections::HashSet<usize> = (0..100)
            .map(|i| Ident::new(format!("var{i}")).hash_bucket(64))
            .collect();
        assert!(buckets.len() > 20, "only {} buckets used", buckets.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_panics() {
        Ident::new("x").hash_bucket(0);
    }

    #[test]
    fn attr_list_set_get_replace() {
        let mut attrs = AttrList::new();
        assert!(attrs.is_empty());
        attrs.set("kind", "variable");
        attrs.set("type", "integer");
        attrs.set("kind", "constant"); // replace
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs.get("kind"), Some("constant"));
        assert_eq!(attrs.get("type"), Some("integer"));
        assert_eq!(attrs.get("missing"), None);
        assert!(!attrs.is_empty());
    }

    #[test]
    fn attr_list_display_and_iteration_order() {
        let attrs = AttrList::new().with("a", "1").with("b", "2");
        assert_eq!(attrs.to_string(), "[a=1, b=2]");
        let pairs: Vec<_> = attrs.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn attr_list_from_iterator_deduplicates() {
        let attrs: AttrList = vec![
            ("a".to_owned(), "1".to_owned()),
            ("a".to_owned(), "2".to_owned()),
        ]
        .into_iter()
        .collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs.get("a"), Some("2"));
    }
}
