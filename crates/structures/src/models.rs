//! Wiring the Rust implementations to their specifications.
//!
//! Each `*_model` function returns an [`adt_verify::TableModel`] that
//! interprets a specification's operations with the corresponding concrete
//! data structure, so `adt_verify::check_axioms` can test the paper's
//! axioms against real code, and `adt_verify::check_representation` can
//! test the abstraction functions Φ.
//!
//! Value encodings: elements of parameter sorts are carried as
//! [`MValue::Str`] holding the *constructor name* (`"A"`, `"ID_X"`, …),
//! which makes the Φ functions trivially exact.

use adt_core::{Spec, Term};
use adt_verify::{MValue, ModelBuilder, TableModel};

use crate::fifo::Fifo;
use crate::hash_array::{HashArray, ScopeArray};
use crate::ident::{AttrList, Ident};
use crate::linked_stack::LinkedStack;
use crate::ring::RingQueue;
use crate::symbol_table::SymbolTable;

/// A model of the Queue specification ([`crate::specs::queue_spec`]) over
/// the growable ring-buffer [`Fifo`].
pub fn fifo_model(spec: &Spec) -> TableModel<'_> {
    let fifo = |v: &MValue| -> Fifo<String> { v.downcast::<Fifo<String>>().unwrap().clone() };
    let mut b = ModelBuilder::new(spec)
        .op("NEW", |_| MValue::data(Fifo::<String>::new()))
        .op("ADD", move |args| {
            let mut q = fifo(&args[0]);
            q.add(args[1].as_str().unwrap().to_owned());
            MValue::data(q)
        })
        .op("FRONT", move |args| match fifo(&args[0]).front() {
            Some(s) => MValue::Str(s.clone()),
            None => MValue::Error,
        })
        .op("REMOVE", move |args| {
            let mut q = fifo(&args[0]);
            match q.remove() {
                Some(_) => MValue::data(q),
                None => MValue::Error,
            }
        })
        .op("IS_EMPTY?", move |args| {
            MValue::Bool(fifo(&args[0]).is_empty())
        })
        .eq("Queue", move |a, b| {
            a.downcast::<Fifo<String>>()
                .zip(b.downcast::<Fifo<String>>())
                .map(|(x, y)| x == y)
                .unwrap_or(false)
        });
    for item in ["A", "B", "C"] {
        b = b.op(item, move |_| MValue::Str(item.to_owned()));
    }
    b.build().expect("the Queue model is total")
}

/// The abstraction function Φ for [`fifo_model`]: a FIFO value becomes the
/// `ADD` chain that enqueues its elements oldest-first.
pub fn fifo_phi(spec: &Spec) -> impl Fn(&MValue) -> Term + '_ {
    move |v: &MValue| {
        let q = v.downcast::<Fifo<String>>().expect("a Queue value");
        let new = spec.sig().op_named("NEW").expect("NEW exists");
        let add = spec.sig().op_named("ADD").expect("ADD exists");
        let mut t = Term::constant(new);
        for item in q.iter() {
            let item_op = spec.sig().op_named(item).expect("item constant exists");
            t = Term::App(add, vec![t, Term::constant(item_op)]);
        }
        t
    }
}

/// A model of the *same* Queue specification over the fixed-capacity
/// [`RingQueue`]: adding to a full ring is `error`. Correct only for
/// workloads that stay within `capacity` — a *conditionally correct*
/// representation, checked under the [`max_add_chain`] assumption.
pub fn ring_model(spec: &Spec, capacity: usize) -> TableModel<'_> {
    let ring =
        |v: &MValue| -> RingQueue<String> { v.downcast::<RingQueue<String>>().unwrap().clone() };
    let mut b = ModelBuilder::new(spec)
        .op("NEW", move |_| {
            MValue::data(RingQueue::<String>::new(capacity))
        })
        .op("ADD", move |args| {
            let mut q = ring(&args[0]);
            match q.add(args[1].as_str().unwrap().to_owned()) {
                Ok(()) => MValue::data(q),
                Err(_) => MValue::Error,
            }
        })
        .op("FRONT", move |args| match ring(&args[0]).front() {
            Some(s) => MValue::Str(s.clone()),
            None => MValue::Error,
        })
        .op("REMOVE", move |args| {
            let mut q = ring(&args[0]);
            match q.remove() {
                Some(_) => MValue::data(q),
                None => MValue::Error,
            }
        })
        .op("IS_EMPTY?", move |args| {
            MValue::Bool(ring(&args[0]).is_empty())
        })
        .eq("Queue", move |a, b| {
            // Equality of bounded queues is Φ-equality: same live elements
            // in order, regardless of physical layout (Φ⁻¹ one-to-many).
            a.downcast::<RingQueue<String>>()
                .zip(b.downcast::<RingQueue<String>>())
                .map(|(x, y)| x.abstract_value() == y.abstract_value())
                .unwrap_or(false)
        });
    for item in ["A", "B", "C"] {
        b = b.op(item, move |_| MValue::Str(item.to_owned()));
    }
    b.build().expect("the bounded Queue model is total")
}

/// The abstraction function Φ for [`ring_model`]: the live elements,
/// oldest-first, as an `ADD` chain — by construction independent of the
/// ring's physical layout.
pub fn ring_phi(spec: &Spec) -> impl Fn(&MValue) -> Term + '_ {
    move |v: &MValue| {
        let q = v.downcast::<RingQueue<String>>().expect("a Queue value");
        let new = spec.sig().op_named("NEW").expect("NEW exists");
        let add = spec.sig().op_named("ADD").expect("ADD exists");
        let mut t = Term::constant(new);
        for item in q.abstract_value() {
            let item_op = spec.sig().op_named(item).expect("item constant exists");
            t = Term::App(add, vec![t, Term::constant(item_op)]);
        }
        t
    }
}

/// A model of the Queue specification over the
/// [`TwoStackQueue`](crate::TwoStackQueue) — the
/// representation whose Φ⁻¹ is the most dramatically one-to-many (every
/// front/back split of the same sequence is a distinct concrete state).
pub fn two_stack_model(spec: &Spec) -> TableModel<'_> {
    use crate::two_stack_queue::TwoStackQueue;
    let tsq = |v: &MValue| -> TwoStackQueue<String> {
        v.downcast::<TwoStackQueue<String>>().unwrap().clone()
    };
    let mut b = ModelBuilder::new(spec)
        .op("NEW", |_| MValue::data(TwoStackQueue::<String>::new()))
        .op("ADD", move |args| {
            let mut q = tsq(&args[0]);
            q.add(args[1].as_str().unwrap().to_owned());
            MValue::data(q)
        })
        .op("FRONT", move |args| {
            let mut q = tsq(&args[0]);
            match q.front() {
                Some(s) => MValue::Str(s.clone()),
                None => MValue::Error,
            }
        })
        .op("REMOVE", move |args| {
            let mut q = tsq(&args[0]);
            match q.remove() {
                Some(_) => MValue::data(q),
                None => MValue::Error,
            }
        })
        .op("IS_EMPTY?", move |args| {
            MValue::Bool(tsq(&args[0]).is_empty())
        })
        .eq("Queue", move |a, b| {
            a.downcast::<TwoStackQueue<String>>()
                .zip(b.downcast::<TwoStackQueue<String>>())
                .map(|(x, y)| x == y) // Φ-equality
                .unwrap_or(false)
        });
    for item in ["A", "B", "C"] {
        b = b.op(item, move |_| MValue::Str(item.to_owned()));
    }
    b.build().expect("the two-stack Queue model is total")
}

/// The abstraction function Φ for [`two_stack_model`]:
/// `front ++ reverse(back)` as an `ADD` chain.
pub fn two_stack_phi(spec: &Spec) -> impl Fn(&MValue) -> Term + '_ {
    use crate::two_stack_queue::TwoStackQueue;
    move |v: &MValue| {
        let q = v
            .downcast::<TwoStackQueue<String>>()
            .expect("a Queue value");
        let new = spec.sig().op_named("NEW").expect("NEW exists");
        let add = spec.sig().op_named("ADD").expect("ADD exists");
        let mut t = Term::constant(new);
        for item in q.abstract_value() {
            let item_op = spec.sig().op_named(&item).expect("item constant exists");
            t = Term::App(add, vec![t, Term::constant(item_op)]);
        }
        t
    }
}

/// The deepest `ADD` nesting anywhere in `term` — an upper bound on the
/// number of simultaneously live queue elements, used as the environment
/// assumption for the bounded ring ("programs never hold more than
/// `capacity` elements at once").
pub fn max_add_chain(spec: &Spec, term: &Term) -> usize {
    let add = spec.sig().find_op("ADD");
    fn walk(t: &Term, add: Option<adt_core::OpId>) -> usize {
        match t {
            Term::App(op, args) => {
                let inner = args.iter().map(|a| walk(a, add)).max().unwrap_or(0);
                if Some(*op) == add {
                    inner + 1
                } else {
                    inner
                }
            }
            Term::Ite(ite) => walk(&ite.cond, add)
                .max(walk(&ite.then_branch, add))
                .max(walk(&ite.else_branch, add)),
            _ => 0,
        }
    }
    walk(term, add)
}

/// A model of the Stack specification ([`crate::specs::stack_spec`]) over
/// the persistent [`LinkedStack`].
pub fn stack_model(spec: &Spec) -> TableModel<'_> {
    let stack = |v: &MValue| -> LinkedStack<String> {
        v.downcast::<LinkedStack<String>>().unwrap().clone()
    };
    let mut b = ModelBuilder::new(spec)
        .op("NEWSTACK", |_| MValue::data(LinkedStack::<String>::new()))
        .op("PUSH", move |args| {
            MValue::data(stack(&args[0]).push(args[1].as_str().unwrap().to_owned()))
        })
        .op("POP", move |args| match stack(&args[0]).pop() {
            Some(s) => MValue::data(s),
            None => MValue::Error,
        })
        .op("TOP", move |args| match stack(&args[0]).top() {
            Some(s) => MValue::Str(s.clone()),
            None => MValue::Error,
        })
        .op("IS_NEWSTACK?", move |args| {
            MValue::Bool(stack(&args[0]).is_new())
        })
        .op("REPLACE", move |args| {
            match stack(&args[0]).replace(args[1].as_str().unwrap().to_owned()) {
                Some(s) => MValue::data(s),
                None => MValue::Error,
            }
        })
        .eq("Stack", move |a, b| {
            a.downcast::<LinkedStack<String>>()
                .zip(b.downcast::<LinkedStack<String>>())
                .map(|(x, y)| x == y)
                .unwrap_or(false)
        });
    for e in ["E1", "E2"] {
        b = b.op(e, move |_| MValue::Str(e.to_owned()));
    }
    b.build().expect("the Stack model is total")
}

/// The abstraction function Φ for [`stack_model`]: a stack value becomes
/// the `PUSH` chain that builds it bottom-up.
pub fn stack_phi(spec: &Spec) -> impl Fn(&MValue) -> Term + '_ {
    move |v: &MValue| {
        let s = v.downcast::<LinkedStack<String>>().expect("a Stack value");
        let newstack = spec.sig().op_named("NEWSTACK").expect("NEWSTACK exists");
        let push = spec.sig().op_named("PUSH").expect("PUSH exists");
        let mut items: Vec<&String> = s.iter().collect();
        items.reverse(); // bottom-up
        let mut t = Term::constant(newstack);
        for item in items {
            let e = spec.sig().op_named(item).expect("element constant exists");
            t = Term::App(push, vec![t, Term::constant(e)]);
        }
        t
    }
}

/// The sample-identifier universe shared by the Array and Symboltable
/// models.
pub fn sample_ident_universe() -> Vec<Ident> {
    crate::specs::SAMPLE_IDENTIFIERS
        .iter()
        .map(|s| Ident::new(*s))
        .collect()
}

/// A model of the Array specification ([`crate::specs::array_spec`]) over
/// any [`ScopeArray`] representation. Equality at sort `Array` is
/// observational: two arrays are equal when `READ` agrees on every
/// sample identifier (what axioms 17–20 let a client see).
pub fn array_model_with<A>(spec: &Spec) -> TableModel<'_>
where
    A: ScopeArray<String> + Send + Sync + 'static,
{
    let arr = |v: &MValue| -> A { v.downcast::<A>().unwrap().clone() };
    let mut b = ModelBuilder::new(spec)
        .op("EMPTY", |_| MValue::data(A::empty()))
        .op("ASSIGN", move |args| {
            let mut a = arr(&args[0]);
            a.assign(
                Ident::new(args[1].as_str().unwrap()),
                args[2].as_str().unwrap().to_owned(),
            );
            MValue::data(a)
        })
        .op("READ", move |args| {
            match arr(&args[0]).read(&Ident::new(args[1].as_str().unwrap())) {
                Some(v) => MValue::Str(v.clone()),
                None => MValue::Error,
            }
        })
        .op("IS_UNDEFINED?", move |args| {
            MValue::Bool(arr(&args[0]).is_undefined(&Ident::new(args[1].as_str().unwrap())))
        })
        .op("ISSAME?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .eq("Array", move |a, b| {
            let (x, y) = match (a.downcast::<A>(), b.downcast::<A>()) {
                (Some(x), Some(y)) => (x, y),
                _ => return false,
            };
            sample_ident_universe()
                .iter()
                .all(|id| x.read(id) == y.read(id))
        });
    for name in crate::specs::SAMPLE_IDENTIFIERS
        .iter()
        .chain(crate::specs::SAMPLE_ATTRIBUTES.iter())
    {
        let owned = (*name).to_owned();
        b = b.op(name, move |_| MValue::Str(owned.clone()));
    }
    b.build().expect("the Array model is total")
}

/// [`array_model_with`] instantiated with the paper's chained
/// [`HashArray`].
pub fn array_model(spec: &Spec) -> TableModel<'_> {
    array_model_with::<HashArray<String>>(spec)
}

/// A model of the Set specification ([`crate::specs::set_spec`]) over the
/// canonical [`SortedSet`](crate::SortedSet); equality is structural
/// because the representation is canonical.
pub fn set_model(spec: &Spec) -> TableModel<'_> {
    use crate::sorted_set::SortedSet;
    let set =
        |v: &MValue| -> SortedSet<String> { v.downcast::<SortedSet<String>>().unwrap().clone() };
    let mut b = ModelBuilder::new(spec)
        .op("EMPTYSET", |_| MValue::data(SortedSet::<String>::new()))
        .op("INSERT", move |args| {
            let mut s = set(&args[0]);
            s.insert(args[1].as_str().unwrap().to_owned());
            MValue::data(s)
        })
        .op("MEMBER?", move |args| {
            MValue::Bool(set(&args[0]).contains(&args[1].as_str().unwrap().to_owned()))
        })
        .op("DELETE", move |args| {
            let mut s = set(&args[0]);
            s.remove(&args[1].as_str().unwrap().to_owned());
            MValue::data(s)
        })
        .op("IS_EMPTYSET?", move |args| {
            MValue::Bool(set(&args[0]).is_empty())
        })
        .op("SAME?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .eq("Set", move |a, b| {
            a.downcast::<SortedSet<String>>()
                .zip(b.downcast::<SortedSet<String>>())
                .map(|(x, y)| x == y)
                .unwrap_or(false)
        });
    for name in ["E1", "E2", "E3"] {
        b = b.op(name, move |_| MValue::Str(name.to_owned()));
    }
    b.build().expect("the Set model is total")
}

/// A model of the List specification ([`crate::specs::list_spec`]):
/// lists as `Vec<String>`, naturals as `i64`.
pub fn list_model(spec: &Spec) -> TableModel<'_> {
    let list = |v: &MValue| -> Vec<String> { v.downcast::<Vec<String>>().unwrap().clone() };
    let mut b = ModelBuilder::new(spec)
        .op("NIL", |_| MValue::data(Vec::<String>::new()))
        .op("CONS", move |args| {
            let mut l = list(&args[1]);
            l.insert(0, args[0].as_str().unwrap().to_owned());
            MValue::data(l)
        })
        .op("HEAD", move |args| match list(&args[0]).first() {
            Some(e) => MValue::Str(e.clone()),
            None => MValue::Error,
        })
        .op("TAIL", move |args| {
            let l = list(&args[0]);
            if l.is_empty() {
                MValue::Error
            } else {
                MValue::data(l[1..].to_vec())
            }
        })
        .op("IS_NIL?", move |args| {
            MValue::Bool(list(&args[0]).is_empty())
        })
        .op("APPEND", move |args| {
            let mut l = list(&args[0]);
            l.extend(list(&args[1]));
            MValue::data(l)
        })
        .op("LENGTH", move |args| {
            MValue::Int(list(&args[0]).len() as i64)
        })
        .op("REVERSE", move |args| {
            let mut l = list(&args[0]);
            l.reverse();
            MValue::data(l)
        })
        .op("ZERO", |_| MValue::Int(0))
        .op("SUCC", |args| MValue::Int(args[0].as_int().unwrap() + 1))
        .op("PLUS", |args| {
            MValue::Int(args[0].as_int().unwrap() + args[1].as_int().unwrap())
        })
        .eq("List", move |a, b| {
            a.downcast::<Vec<String>>() == b.downcast::<Vec<String>>()
        });
    for name in ["E1", "E2", "E3"] {
        b = b.op(name, move |_| MValue::Str(name.to_owned()));
    }
    b.build().expect("the List model is total")
}

/// A model of the Symboltable specification
/// ([`crate::specs::symboltable_spec`]) over the real [`SymbolTable`]
/// (stack of chained hash arrays). Equality at sort `Symboltable` is the
/// observational equality of
/// [`SymbolTable::observationally_eq`] over the sample identifiers.
pub fn symtab_model(spec: &Spec) -> TableModel<'_> {
    type St = SymbolTable<HashArray<AttrList>>;
    let st = |v: &MValue| -> St { v.downcast::<St>().unwrap().clone() };
    let attr_of = |v: &MValue| AttrList::new().with("name", v.as_str().unwrap());
    let mut b = ModelBuilder::new(spec)
        .op("INIT", |_| MValue::data(St::init()))
        .op("ENTERBLOCK", move |args| {
            let mut t = st(&args[0]);
            t.enter_block();
            MValue::data(t)
        })
        .op("LEAVEBLOCK", move |args| {
            let mut t = st(&args[0]);
            match t.leave_block() {
                Ok(()) => MValue::data(t),
                Err(_) => MValue::Error,
            }
        })
        .op("ADD", move |args| {
            let mut t = st(&args[0]);
            t.add(Ident::new(args[1].as_str().unwrap()), attr_of(&args[2]));
            MValue::data(t)
        })
        .op("IS_INBLOCK?", move |args| {
            MValue::Bool(st(&args[0]).is_in_block(&Ident::new(args[1].as_str().unwrap())))
        })
        .op("RETRIEVE", move |args| {
            match st(&args[0]).retrieve(&Ident::new(args[1].as_str().unwrap())) {
                Ok(attrs) => MValue::Str(attrs.get("name").expect("encoded attribute").to_owned()),
                Err(_) => MValue::Error,
            }
        })
        .op("ISSAME?", |args| {
            MValue::Bool(args[0].as_str() == args[1].as_str())
        })
        .eq("Symboltable", move |a, b| {
            let (x, y) = match (a.downcast::<St>(), b.downcast::<St>()) {
                (Some(x), Some(y)) => (x, y),
                _ => return false,
            };
            x.observationally_eq(y, &sample_ident_universe())
        });
    for name in crate::specs::SAMPLE_IDENTIFIERS
        .iter()
        .chain(crate::specs::SAMPLE_ATTRIBUTES.iter())
    {
        let owned = (*name).to_owned();
        b = b.op(name, move |_| MValue::Str(owned.clone()));
    }
    b.build().expect("the Symboltable model is total")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{array_spec, queue_spec, stack_spec, symboltable_spec};
    use adt_verify::{check_axioms, AxiomCheckConfig, Model};

    #[test]
    fn fifo_model_evaluates_operations() {
        let spec = queue_spec();
        let model = fifo_model(&spec);
        let new = spec.sig().find_op("NEW").unwrap();
        let add = spec.sig().find_op("ADD").unwrap();
        let front = spec.sig().find_op("FRONT").unwrap();
        let q0 = model.apply(new, &[]);
        let q1 = model.apply(add, &[q0, MValue::Str("A".into())]);
        let q2 = model.apply(add, &[q1, MValue::Str("B".into())]);
        assert_eq!(model.apply(front, &[q2]).as_str(), Some("A"));
    }

    #[test]
    fn fifo_model_satisfies_the_queue_axioms() {
        let spec = queue_spec();
        let model = fifo_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn stack_model_satisfies_the_stack_axioms() {
        let spec = stack_spec();
        let model = stack_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn array_model_satisfies_the_array_axioms() {
        let spec = array_spec();
        let model = array_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn all_three_array_representations_satisfy_the_axioms() {
        use crate::bst_array::BstArray;
        use crate::hash_array::LinearArray;
        let spec = array_spec();
        for (name, model) in [
            ("linear", array_model_with::<LinearArray<String>>(&spec)),
            ("bst", array_model_with::<BstArray<String>>(&spec)),
        ] {
            let report = check_axioms(&model, &AxiomCheckConfig::default());
            assert!(report.passed(), "{name}: {}", report.summary());
        }
    }

    #[test]
    fn set_model_satisfies_the_set_axioms() {
        let spec = crate::specs::set_spec();
        let model = set_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn list_model_satisfies_the_list_axioms() {
        let spec = crate::specs::list_spec();
        let model = list_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn symtab_model_satisfies_the_symboltable_axioms() {
        let spec = symboltable_spec();
        let model = symtab_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn max_add_chain_measures_live_elements() {
        let spec = queue_spec();
        let sig = spec.sig();
        let new = sig.apply("NEW", vec![]).unwrap();
        assert_eq!(max_add_chain(&spec, &new), 0);
        let a = sig.apply("A", vec![]).unwrap();
        let q1 = sig.apply("ADD", vec![new, a.clone()]).unwrap();
        let q2 = sig.apply("ADD", vec![q1, a.clone()]).unwrap();
        assert_eq!(max_add_chain(&spec, &q2), 2);
        let removed = sig.apply("REMOVE", vec![q2]).unwrap();
        // REMOVE does not undo the historical peak.
        assert_eq!(max_add_chain(&spec, &removed), 2);
    }

    #[test]
    fn ring_model_errors_beyond_capacity() {
        let spec = queue_spec();
        let model = ring_model(&spec, 2);
        let new = spec.sig().find_op("NEW").unwrap();
        let add = spec.sig().find_op("ADD").unwrap();
        let q0 = model.apply(new, &[]);
        let q1 = model.apply(add, &[q0, MValue::Str("A".into())]);
        let q2 = model.apply(add, &[q1, MValue::Str("B".into())]);
        let q3 = model.apply(add, &[q2, MValue::Str("C".into())]);
        assert!(q3.is_error());
    }
}
