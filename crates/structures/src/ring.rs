//! The paper's bounded queue: a fixed-capacity ring buffer with a top
//! pointer (§4), kept deliberately transparent so the *representation*
//! can be inspected.
//!
//! This is the paper's demonstration that the abstraction function Φ "may
//! not have a proper inverse": the two program segments
//!
//! ```text
//! x := EMPTY_Q                      x := EMPTY_Q
//! x := ADD_Q(x, A)                  x := ADD_Q(x, B)
//! x := ADD_Q(x, B)                  x := ADD_Q(x, C)
//! x := ADD_Q(x, C)                  x := ADD_Q(x, D)
//! x := REMOVE_Q(x)
//! x := ADD_Q(x, D)
//! ```
//!
//! leave the ring buffer in *different concrete states* that denote the
//! *same abstract queue* ⟨B, C, D⟩ — Φ⁻¹ is one-to-many.

use std::fmt;

/// The error returned when adding to a full bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl fmt::Display for RingFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("bounded queue is full")
    }
}

impl std::error::Error for RingFull {}

/// A fixed-capacity FIFO queue over a ring buffer with a top pointer.
///
/// ```
/// use adt_structures::RingQueue;
///
/// let mut q = RingQueue::new(3);
/// q.add('A')?;
/// q.add('B')?;
/// assert_eq!(q.remove(), Some('A'));
/// q.add('C')?;
/// q.add('D')?;
/// assert!(q.add('E').is_err()); // full
/// assert_eq!(q.abstract_value(), vec![&'B', &'C', &'D']);
/// # Ok::<(), adt_structures::RingFull>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RingQueue<T> {
    slots: Vec<Option<T>>,
    /// Index of the next write (the paper's "top pointer").
    top: usize,
    len: usize,
}

impl<T> RingQueue<T> {
    /// Creates a bounded queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded queue capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        RingQueue {
            slots,
            top: 0,
            len: 0,
        }
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// `ADD_Q`: enqueues at the top pointer.
    ///
    /// # Errors
    ///
    /// Returns [`RingFull`] when the queue is at capacity (the bounded
    /// queue's `error` case).
    pub fn add(&mut self, value: T) -> Result<(), RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        self.slots[self.top] = Some(value);
        self.top = (self.top + 1) % self.slots.len();
        self.len += 1;
        Ok(())
    }

    fn head(&self) -> usize {
        // The oldest element sits `len` positions behind the top pointer.
        (self.top + self.slots.len() - self.len) % self.slots.len()
    }

    /// `FRONT_Q`: the oldest element.
    pub fn front(&self) -> Option<&T> {
        if self.is_empty() {
            return None;
        }
        self.slots[self.head()].as_ref()
    }

    /// `REMOVE_Q`: dequeues the oldest element.
    pub fn remove(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let h = self.head();
        let v = self.slots[h].take();
        self.len -= 1;
        v
    }

    /// The raw representation: the slot array as laid out in memory.
    /// Slots that were vacated by `remove` keep `None`; slots whose value
    /// was overwritten keep the *new* value — exactly the residue the
    /// paper's diagrams show.
    pub fn raw_slots(&self) -> &[Option<T>] {
        &self.slots
    }

    /// The raw top pointer.
    pub fn top_pointer(&self) -> usize {
        self.top
    }

    /// The abstract value Φ(self): the live elements oldest-first,
    /// independent of where they physically sit.
    pub fn abstract_value(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len);
        for k in 0..self.len {
            let idx = (self.head() + k) % self.slots.len();
            out.push(self.slots[idx].as_ref().expect("live slot"));
        }
        out
    }
}

impl<T: fmt::Debug> fmt::Debug for RingQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RingQueue {{ slots: {:?}, top: {} }}",
            self.slots, self.top
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's first program segment.
    fn segment_one() -> RingQueue<char> {
        let mut x = RingQueue::new(3);
        x.add('A').unwrap();
        x.add('B').unwrap();
        x.add('C').unwrap();
        x.remove().unwrap();
        x.add('D').unwrap();
        x
    }

    /// The paper's second program segment.
    fn segment_two() -> RingQueue<char> {
        let mut x = RingQueue::new(3);
        x.add('B').unwrap();
        x.add('C').unwrap();
        x.add('D').unwrap();
        x
    }

    #[test]
    fn phi_inverse_is_one_to_many() {
        let one = segment_one();
        let two = segment_two();
        // Different concrete representations…
        assert_ne!(one.raw_slots(), two.raw_slots());
        assert_ne!(one.top_pointer(), two.top_pointer());
        // …same abstract value.
        assert_eq!(one.abstract_value(), two.abstract_value());
        assert_eq!(one.abstract_value(), vec![&'B', &'C', &'D']);
    }

    #[test]
    fn segment_one_layout_matches_the_paper() {
        // ADD A,B,C fills slots [A, B, C]; REMOVE vacates A; ADD D wraps
        // the top pointer and overwrites slot 0.
        let one = segment_one();
        assert_eq!(one.raw_slots(), &[Some('D'), Some('B'), Some('C')]);
        assert_eq!(one.top_pointer(), 1);
    }

    #[test]
    fn full_queue_rejects_add() {
        let mut q = segment_two();
        assert!(q.is_full());
        assert_eq!(q.add('E'), Err(RingFull));
        assert_eq!(RingFull.to_string(), "bounded queue is full");
        // Still intact.
        assert_eq!(q.abstract_value(), vec![&'B', &'C', &'D']);
    }

    #[test]
    fn fifo_semantics_within_the_bound() {
        let mut q = RingQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.remove(), None);
        assert_eq!(q.front(), None);
        q.add(1).unwrap();
        q.add(2).unwrap();
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.remove(), Some(1));
        q.add(3).unwrap();
        assert_eq!(q.remove(), Some(2));
        assert_eq!(q.remove(), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn long_interleaving_stays_fifo() {
        let mut q = RingQueue::new(5);
        let mut model: Vec<u32> = Vec::new();
        let mut state: u64 = 7;
        for _ in 0..5_000 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            if state.is_multiple_of(2) {
                let v = (state >> 13) as u32;
                match q.add(v) {
                    Ok(()) => model.push(v),
                    Err(RingFull) => assert_eq!(model.len(), 5),
                }
            } else {
                let got = q.remove();
                let expected = if model.is_empty() {
                    None
                } else {
                    Some(model.remove(0))
                };
                assert_eq!(got, expected);
            }
            let live: Vec<u32> = q.abstract_value().into_iter().copied().collect();
            assert_eq!(live, model);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingQueue::<u8>::new(0);
    }
}
