//! # adt-structures — the paper's data structures, at both levels
//!
//! Every data structure John Guttag develops in *Abstract Data Types and
//! the Development of Data Structures* (CACM 1977) lives here twice:
//!
//! 1. **As an algebraic specification** ([`specs`]) — Queue (§3),
//!    Symboltable, Stack and Array (§4), the combined
//!    representation-level specification with the primed operations and
//!    the abstraction function Φ, and the Knowlist extension — built
//!    programmatically and mirrored as `.adt` source files under the
//!    repository's `specs/` directory ([`sources`]).
//! 2. **As an efficient Rust implementation** — a growable ring-buffer
//!    FIFO ([`Fifo`]), the paper's fixed-capacity ring buffer with top
//!    pointer ([`RingQueue`]), the PL/I pointer-list stack as a persistent
//!    linked stack ([`LinkedStack`]), the chained hash table
//!    ([`HashArray`], with the deliberately naive [`LinearArray`] as the
//!    representation-choice foil), and the stack-of-arrays symbol table
//!    ([`SymbolTable`], plus the knows-list variant
//!    [`SymbolTableKl`]).
//!
//! The [`models`] module wires each implementation to its specification
//! through `adt-verify`, so the axioms can be checked against the real
//! code — the paper's "inherent invariant" verification, mechanized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sources;
pub mod specs;

mod bst_array;
mod fifo;
mod hash_array;
mod ident;
mod knowlist;
mod linked_stack;
pub mod models;
mod ring;
mod sorted_set;
mod symbol_table;
mod two_stack_queue;

pub use bst_array::BstArray;
pub use fifo::Fifo;
pub use hash_array::{HashArray, LinearArray, ScopeArray};
pub use ident::{AttrList, Ident};
pub use knowlist::{KnowList, SymbolTableKl};
pub use linked_stack::LinkedStack;
pub use ring::{RingFull, RingQueue};
pub use sorted_set::SortedSet;
pub use symbol_table::{ScopeError, SymbolTable};
pub use two_stack_queue::TwoStackQueue;
