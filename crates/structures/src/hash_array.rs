//! The paper's `Array` (a map from Identifier to attributes), in two
//! representations:
//!
//! * [`HashArray`] — the paper's §4 implementation: a fixed table of
//!   buckets, each a chain of entries, with new entries *prepended* so a
//!   re-declaration shadows the old one (exactly the PL/I code's
//!   `new_entry -> next := hash_tab(HASH(indx))`).
//! * [`LinearArray`] — the naive association list, the representation a
//!   designer might freeze prematurely (§5: "The premature choice of a
//!   storage structure … is a common cause of inefficiencies"). The
//!   `array_representations` benchmark measures the cost of that choice.
//!
//! Both implement [`ScopeArray`], the behavioral interface the symbol
//! table is written against — so swapping representations is a one-line
//! change, which is the paper's point.

use std::fmt;

use crate::ident::Ident;

/// The operations of the paper's `Array` type (axioms 17–20), as a trait
/// so the symbol table can be instantiated with any representation.
pub trait ScopeArray<V>: Clone {
    /// The paper's `EMPTY`.
    fn empty() -> Self;

    /// The paper's `ASSIGN` (in-place; the algebraic reading clones
    /// first).
    fn assign(&mut self, id: Ident, value: V);

    /// The paper's `READ`, `None` for the specification's `error` case.
    fn read(&self, id: &Ident) -> Option<&V>;

    /// The paper's `IS_UNDEFINED?`.
    fn is_undefined(&self, id: &Ident) -> bool {
        self.read(id).is_none()
    }
}

/// One chained entry — the PL/I `entry based` structure.
#[derive(Debug, Clone)]
struct Entry<V> {
    id: Ident,
    value: V,
    next: Option<Box<Entry<V>>>,
}

/// A fixed-size chained hash table keyed by [`Ident`].
///
/// ```
/// use adt_structures::{HashArray, Ident, ScopeArray};
///
/// let mut arr: HashArray<u32> = HashArray::empty();
/// arr.assign(Ident::new("x"), 1);
/// arr.assign(Ident::new("x"), 2); // shadows the first entry
/// assert_eq!(arr.read(&Ident::new("x")), Some(&2));
/// assert!(arr.is_undefined(&Ident::new("y")));
/// ```
#[derive(Clone)]
pub struct HashArray<V> {
    buckets: Vec<Option<Box<Entry<V>>>>,
}

/// Default number of buckets (the paper's `n`).
const DEFAULT_BUCKETS: usize = 64;

impl<V> HashArray<V> {
    /// Creates an empty array with `n` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_buckets(n: usize) -> Self {
        assert!(n > 0, "hash table must have at least one bucket");
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, || None);
        HashArray { buckets }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of stored entries, counting shadowed ones (the chains keep
    /// every `ASSIGN`, as the axioms do).
    pub fn entry_count(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                let mut n = 0;
                let mut cur = b.as_deref();
                while let Some(e) = cur {
                    n += 1;
                    cur = e.next.as_deref();
                }
                n
            })
            .sum()
    }

    /// Iterates over the *visible* (unshadowed) bindings in unspecified
    /// order.
    pub fn visible_bindings(&self) -> Vec<(&Ident, &V)> {
        let mut seen: Vec<&Ident> = Vec::new();
        let mut out = Vec::new();
        for b in &self.buckets {
            let mut cur = b.as_deref();
            while let Some(e) = cur {
                if !seen.contains(&&e.id) {
                    seen.push(&e.id);
                    out.push((&e.id, &e.value));
                }
                cur = e.next.as_deref();
            }
        }
        out
    }
}

impl<V: Clone> ScopeArray<V> for HashArray<V> {
    fn empty() -> Self {
        HashArray::with_buckets(DEFAULT_BUCKETS)
    }

    fn assign(&mut self, id: Ident, value: V) {
        let n = self.buckets.len();
        let bucket = id.hash_bucket(n);
        let next = self.buckets[bucket].take();
        self.buckets[bucket] = Some(Box::new(Entry { id, value, next }));
    }

    fn read(&self, id: &Ident) -> Option<&V> {
        let bucket = id.hash_bucket(self.buckets.len());
        let mut cur = self.buckets[bucket].as_deref();
        while let Some(e) = cur {
            if e.id.same(id) {
                return Some(&e.value);
            }
            cur = e.next.as_deref();
        }
        None
    }
}

impl<V: fmt::Debug> fmt::Debug for HashArray<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for b in &self.buckets {
            let mut cur = b.as_deref();
            while let Some(e) = cur {
                map.entry(&e.id, &e.value);
                cur = e.next.as_deref();
            }
        }
        map.finish()
    }
}

/// The association-list representation: every `ASSIGN` prepends, `READ`
/// scans linearly. Semantically identical to [`HashArray`]; O(entries)
/// lookups.
#[derive(Debug, Clone, Default)]
pub struct LinearArray<V> {
    entries: Vec<(Ident, V)>, // newest first
}

impl<V: Clone> ScopeArray<V> for LinearArray<V> {
    fn empty() -> Self {
        LinearArray {
            entries: Vec::new(),
        }
    }

    fn assign(&mut self, id: Ident, value: V) {
        self.entries.insert(0, (id, value));
    }

    fn read(&self, id: &Ident) -> Option<&V> {
        self.entries
            .iter()
            .find(|(i, _)| i.same(id))
            .map(|(_, v)| v)
    }
}

impl<V> LinearArray<V> {
    /// Number of stored entries, counting shadowed ones.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn check_array_semantics<A: ScopeArray<u32>>() {
        let mut arr = A::empty();
        assert!(arr.is_undefined(&id("x")));
        assert_eq!(arr.read(&id("x")), None);
        arr.assign(id("x"), 1);
        arr.assign(id("y"), 2);
        assert_eq!(arr.read(&id("x")), Some(&1));
        assert_eq!(arr.read(&id("y")), Some(&2));
        assert!(!arr.is_undefined(&id("x")));
        assert!(arr.is_undefined(&id("z")));
        // Shadowing: later assignment wins (axiom 20's ISSAME? branch).
        arr.assign(id("x"), 3);
        assert_eq!(arr.read(&id("x")), Some(&3));
        // Cloning gives an independent value.
        let snapshot = arr.clone();
        arr.assign(id("x"), 4);
        assert_eq!(snapshot.read(&id("x")), Some(&3));
        assert_eq!(arr.read(&id("x")), Some(&4));
    }

    #[test]
    fn hash_array_satisfies_the_array_semantics() {
        check_array_semantics::<HashArray<u32>>();
    }

    #[test]
    fn linear_array_satisfies_the_array_semantics() {
        check_array_semantics::<LinearArray<u32>>();
    }

    #[test]
    fn chains_keep_shadowed_entries() {
        let mut arr: HashArray<u32> = HashArray::empty();
        arr.assign(id("x"), 1);
        arr.assign(id("x"), 2);
        assert_eq!(arr.entry_count(), 2);
        assert_eq!(arr.read(&id("x")), Some(&2));
        let mut lin: LinearArray<u32> = LinearArray::empty();
        lin.assign(id("x"), 1);
        lin.assign(id("x"), 2);
        assert_eq!(lin.entry_count(), 2);
    }

    #[test]
    fn collisions_are_resolved_by_chaining() {
        // Force collisions with a single bucket.
        let mut arr: HashArray<u32> = HashArray::with_buckets(1);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            arr.assign(id(name), i as u32);
        }
        assert_eq!(arr.bucket_count(), 1);
        assert_eq!(arr.entry_count(), 4);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(arr.read(&id(name)), Some(&(i as u32)));
        }
    }

    #[test]
    fn visible_bindings_hide_shadowed_entries() {
        let mut arr: HashArray<u32> = HashArray::empty();
        arr.assign(id("x"), 1);
        arr.assign(id("y"), 2);
        arr.assign(id("x"), 3);
        let mut visible: Vec<(String, u32)> = arr
            .visible_bindings()
            .into_iter()
            .map(|(i, v)| (i.to_string(), *v))
            .collect();
        visible.sort();
        assert_eq!(visible, vec![("x".to_owned(), 3), ("y".to_owned(), 2)]);
    }

    #[test]
    fn representations_agree_on_a_random_workload() {
        let mut hash: HashArray<u32> = HashArray::with_buckets(8);
        let mut linear: LinearArray<u32> = LinearArray::empty();
        let mut state: u64 = 99;
        for step in 0..2_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let name = format!("v{}", state % 50);
            if state.is_multiple_of(3) {
                hash.assign(id(&name), step);
                linear.assign(id(&name), step);
            } else {
                assert_eq!(hash.read(&id(&name)), linear.read(&id(&name)));
                assert_eq!(
                    hash.is_undefined(&id(&name)),
                    linear.is_undefined(&id(&name))
                );
            }
        }
        assert_eq!(hash.entry_count(), linear.entry_count());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = HashArray::<u32>::with_buckets(0);
    }

    #[test]
    fn debug_rendering_contains_entries() {
        let mut arr: HashArray<u32> = HashArray::empty();
        arr.assign(id("x"), 1);
        let s = format!("{arr:?}");
        assert!(s.contains('x'), "{s}");
    }
}
