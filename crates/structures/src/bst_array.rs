//! A third representation of the paper's `Array`: an (unbalanced) binary
//! search tree over identifier spellings.
//!
//! With [`ScopeArray`](crate::ScopeArray) as the behavioural boundary,
//! the symbol table can be instantiated with the chained hash table, the
//! association list, or this tree without touching a line of its code —
//! the paper's §5 argument that a representation-free specification lets
//! the storage structure be chosen (and re-chosen) late.

use std::fmt;

use crate::hash_array::ScopeArray;
use crate::ident::Ident;

#[derive(Debug, Clone)]
struct Node<V> {
    id: Ident,
    value: V,
    left: Option<Box<Node<V>>>,
    right: Option<Box<Node<V>>>,
}

/// An unbalanced binary search tree keyed by [`Ident`] ordering.
///
/// Re-assigning an identifier replaces its value in place (the visible
/// last-write-wins behaviour of axioms 18/20; unlike the chained hash
/// array it keeps no shadowed history, which is unobservable anyway).
///
/// ```
/// use adt_structures::{BstArray, Ident, ScopeArray};
///
/// let mut arr: BstArray<u32> = BstArray::empty();
/// arr.assign(Ident::new("m"), 1);
/// arr.assign(Ident::new("a"), 2);
/// arr.assign(Ident::new("z"), 3);
/// arr.assign(Ident::new("a"), 4);
/// assert_eq!(arr.read(&Ident::new("a")), Some(&4));
/// assert_eq!(arr.len(), 3);
/// ```
#[derive(Clone, Default)]
pub struct BstArray<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

impl<V> BstArray<V> {
    /// Number of distinct identifiers stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty) — exposed for the benchmark
    /// discussion of unbalanced worst cases.
    pub fn height(&self) -> usize {
        fn h<V>(n: &Option<Box<Node<V>>>) -> usize {
            match n {
                None => 0,
                Some(node) => 1 + h(&node.left).max(h(&node.right)),
            }
        }
        h(&self.root)
    }

    /// In-order (sorted) iteration over the bindings.
    pub fn bindings(&self) -> Vec<(&Ident, &V)> {
        fn walk<'a, V>(n: &'a Option<Box<Node<V>>>, out: &mut Vec<(&'a Ident, &'a V)>) {
            if let Some(node) = n {
                walk(&node.left, out);
                out.push((&node.id, &node.value));
                walk(&node.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }
}

impl<V: Clone> ScopeArray<V> for BstArray<V> {
    fn empty() -> Self {
        BstArray { root: None, len: 0 }
    }

    fn assign(&mut self, id: Ident, value: V) {
        let mut slot = &mut self.root;
        loop {
            match slot {
                None => {
                    *slot = Some(Box::new(Node {
                        id,
                        value,
                        left: None,
                        right: None,
                    }));
                    self.len += 1;
                    return;
                }
                Some(node) => match id.cmp(&node.id) {
                    std::cmp::Ordering::Equal => {
                        node.value = value;
                        return;
                    }
                    std::cmp::Ordering::Less => slot = &mut node.left,
                    std::cmp::Ordering::Greater => slot = &mut node.right,
                },
            }
        }
    }

    fn read(&self, id: &Ident) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            cur = match id.cmp(&node.id) {
                std::cmp::Ordering::Equal => return Some(&node.value),
                std::cmp::Ordering::Less => node.left.as_deref(),
                std::cmp::Ordering::Greater => node.right.as_deref(),
            };
        }
        None
    }
}

impl<V: fmt::Debug> fmt::Debug for BstArray<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        fn walk<V: fmt::Debug>(n: &Option<Box<Node<V>>>, map: &mut fmt::DebugMap<'_, '_>) {
            if let Some(node) = n {
                walk(&node.left, map);
                map.entry(&node.id, &node.value);
                walk(&node.right, map);
            }
        }
        walk(&self.root, &mut map);
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    #[test]
    fn assign_read_replace() {
        let mut arr: BstArray<u32> = BstArray::empty();
        assert!(arr.is_empty());
        assert!(arr.is_undefined(&id("x")));
        arr.assign(id("m"), 1);
        arr.assign(id("a"), 2);
        arr.assign(id("z"), 3);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.read(&id("a")), Some(&2));
        arr.assign(id("a"), 9);
        assert_eq!(arr.read(&id("a")), Some(&9));
        assert_eq!(arr.len(), 3);
        assert!(arr.is_undefined(&id("q")));
    }

    #[test]
    fn bindings_are_sorted() {
        let mut arr: BstArray<u32> = BstArray::empty();
        for (i, name) in ["m", "c", "x", "a", "t"].iter().enumerate() {
            arr.assign(id(name), i as u32);
        }
        let names: Vec<&str> = arr.bindings().iter().map(|(i, _)| i.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "m", "t", "x"]);
    }

    #[test]
    fn agrees_with_the_hash_array_on_a_random_workload() {
        use crate::hash_array::HashArray;
        let mut bst: BstArray<u32> = BstArray::empty();
        let mut hash: HashArray<u32> = HashArray::empty();
        let mut state: u64 = 5;
        for step in 0..3_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let name = format!("v{}", state % 40);
            if !state.is_multiple_of(3) {
                bst.assign(id(&name), step);
                hash.assign(id(&name), step);
            } else {
                assert_eq!(bst.read(&id(&name)), hash.read(&id(&name)));
            }
        }
    }

    #[test]
    fn degenerate_insertions_grow_height_linearly() {
        let mut arr: BstArray<u32> = BstArray::empty();
        for i in 0..20 {
            arr.assign(id(&format!("v{i:02}")), i);
        }
        // Sorted insertion order → a right spine.
        assert_eq!(arr.height(), 20);
        assert_eq!(arr.len(), 20);
        // Lookups still correct.
        assert_eq!(arr.read(&id("v07")), Some(&7));
    }

    #[test]
    fn clone_is_independent() {
        let mut a: BstArray<u32> = BstArray::empty();
        a.assign(id("x"), 1);
        let snapshot = a.clone();
        a.assign(id("x"), 2);
        assert_eq!(snapshot.read(&id("x")), Some(&1));
        assert_eq!(a.read(&id("x")), Some(&2));
    }
}
