//! The `.adt` source files shipped in the repository's `specs/`
//! directory, embedded and loadable.
//!
//! Every specification exists both programmatically (the [`crate::specs`]
//! builders) and as text in the specification language; the
//! `spec_sources` integration test checks the two are semantically equal,
//! so the files never drift from the code.

use adt_core::Spec;
use adt_dsl::Diagnostics;

/// `specs/queue.adt` — the Queue of §3.
pub const QUEUE: &str = include_str!("../../../specs/queue.adt");
/// `specs/queue_incomplete.adt` — the Queue with axiom 4 omitted.
pub const QUEUE_INCOMPLETE: &str = include_str!("../../../specs/queue_incomplete.adt");
/// `specs/stack.adt` — the Stack of §4.
pub const STACK: &str = include_str!("../../../specs/stack.adt");
/// `specs/array.adt` — the Array of §4.
pub const ARRAY: &str = include_str!("../../../specs/array.adt");
/// `specs/symboltable.adt` — the Symboltable of §4.
pub const SYMBOLTABLE: &str = include_str!("../../../specs/symboltable.adt");
/// `specs/symboltable_rep.adt` — the representation level with Φ.
pub const SYMBOLTABLE_REP: &str = include_str!("../../../specs/symboltable_rep.adt");
/// `specs/knowlist.adt` — the Knowlist extension type.
pub const KNOWLIST: &str = include_str!("../../../specs/knowlist.adt");
/// `specs/symboltable_kl.adt` — the Symboltable with knows lists.
pub const SYMBOLTABLE_KL: &str = include_str!("../../../specs/symboltable_kl.adt");
/// `specs/list.adt` — lists with append/length/reverse (induction playground).
pub const LIST: &str = include_str!("../../../specs/list.adt");
/// `specs/set.adt` — finite sets (non-free constructors).
pub const SET: &str = include_str!("../../../specs/set.adt");
/// `specs/database.adt` — the §5 database case study.
pub const DATABASE: &str = include_str!("../../../specs/database.adt");
/// `specs/arithmetic.adt` — Peano arithmetic with DIVMOD (the §5
/// multiple-return-values workaround via a Pair type).
pub const ARITHMETIC: &str = include_str!("../../../specs/arithmetic.adt");

/// All embedded sources, by file stem.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("queue", QUEUE),
        ("queue_incomplete", QUEUE_INCOMPLETE),
        ("stack", STACK),
        ("array", ARRAY),
        ("symboltable", SYMBOLTABLE),
        ("symboltable_rep", SYMBOLTABLE_REP),
        ("knowlist", KNOWLIST),
        ("symboltable_kl", SYMBOLTABLE_KL),
        ("list", LIST),
        ("set", SET),
        ("database", DATABASE),
        ("arithmetic", ARITHMETIC),
    ]
}

/// Parses an embedded source by file stem.
///
/// # Errors
///
/// Returns parse/lowering diagnostics (only possible if the shipped file
/// is edited into an invalid state).
///
/// # Panics
///
/// Panics if `name` is not one of the embedded file stems.
pub fn load(name: &str) -> Result<Spec, Diagnostics> {
    let source = all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown embedded specification `{name}`"))
        .1;
    adt_dsl::parse(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs;
    use adt_dsl::semantically_equal;

    #[test]
    fn every_embedded_source_parses() {
        for (name, source) in all() {
            match adt_dsl::parse(source) {
                Ok(_) => {}
                Err(e) => panic!("specs/{name}.adt does not parse:\n{}", e.render(source)),
            }
        }
    }

    #[test]
    fn queue_file_matches_the_programmatic_spec() {
        let from_file = load("queue").unwrap();
        assert!(semantically_equal(&from_file, &specs::queue_spec()));
    }

    #[test]
    fn queue_incomplete_file_matches() {
        let from_file = load("queue_incomplete").unwrap();
        assert!(semantically_equal(
            &from_file,
            &specs::queue_spec_incomplete()
        ));
    }

    #[test]
    fn stack_file_matches() {
        let from_file = load("stack").unwrap();
        assert!(semantically_equal(&from_file, &specs::stack_spec()));
    }

    #[test]
    fn array_file_matches() {
        let from_file = load("array").unwrap();
        assert!(semantically_equal(&from_file, &specs::array_spec()));
    }

    #[test]
    fn symboltable_file_matches() {
        let from_file = load("symboltable").unwrap();
        assert!(semantically_equal(&from_file, &specs::symboltable_spec()));
    }

    #[test]
    fn symboltable_rep_file_matches() {
        let from_file = load("symboltable_rep").unwrap();
        assert!(semantically_equal(&from_file, &specs::symtab_rep_spec()));
    }

    #[test]
    fn knowlist_file_matches() {
        let from_file = load("knowlist").unwrap();
        assert!(semantically_equal(&from_file, &specs::knowlist_spec()));
    }

    #[test]
    fn symboltable_kl_file_matches() {
        let from_file = load("symboltable_kl").unwrap();
        assert!(semantically_equal(
            &from_file,
            &specs::symboltable_kl_spec()
        ));
    }

    #[test]
    fn list_file_matches() {
        let from_file = load("list").unwrap();
        assert!(semantically_equal(&from_file, &specs::list_spec()));
    }

    #[test]
    fn set_file_matches() {
        let from_file = load("set").unwrap();
        assert!(semantically_equal(&from_file, &specs::set_spec()));
    }

    #[test]
    #[should_panic(expected = "unknown embedded specification")]
    fn unknown_name_panics() {
        let _ = load("no_such_spec");
    }
}
