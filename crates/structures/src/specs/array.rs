//! The Array of §4 (axioms 17–20).

use adt_core::{Spec, SpecBuilder, Term};

use super::{install_attribute_lists, install_identifiers};

/// Builds the Array specification of §4 (axioms 17–20): a map from
/// `Identifier` to `AttributeList` with last-write-wins lookup.
///
/// ```text
/// (17) IS_UNDEFINED?(EMPTY, id) = true
/// (18) IS_UNDEFINED?(ASSIGN(arr, id, attrs), id1) =
///        if ISSAME?(id, id1) then false else IS_UNDEFINED?(arr, id1)
/// (19) READ(EMPTY, id) = error
/// (20) READ(ASSIGN(arr, id, attrs), id1) =
///        if ISSAME?(id, id1) then attrs else READ(arr, id1)
/// ```
pub fn array_spec() -> Spec {
    let mut b = SpecBuilder::new("Array");
    let array = b.sort("Array");
    let ident = install_identifiers(&mut b);
    let attrs_sort = install_attribute_lists(&mut b);
    let empty = b.ctor("EMPTY", [], array);
    let assign = b.ctor("ASSIGN", [array, ident, attrs_sort], array);
    let read = b.op("READ", [array, ident], attrs_sort);
    let is_undef = b.op("IS_UNDEFINED?", [array, ident], b.bool_sort());
    let issame = b.sig().find_op("ISSAME?").expect("installed above");

    let arr = Term::Var(b.var("arr", array));
    let id = Term::Var(b.var("id", ident));
    let id1 = Term::Var(b.var("id1", ident));
    let attrs = Term::Var(b.var("attrs", attrs_sort));
    let tt = b.tt();

    b.axiom("17", b.app(is_undef, [b.app(empty, []), id.clone()]), tt);
    b.axiom(
        "18",
        b.app(
            is_undef,
            [
                b.app(assign, [arr.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id.clone(), id1.clone()]),
            b.ff(),
            b.app(is_undef, [arr.clone(), id1.clone()]),
        ),
    );
    b.axiom(
        "19",
        b.app(read, [b.app(empty, []), id.clone()]),
        Term::Error(attrs_sort),
    );
    b.axiom(
        "20",
        b.app(
            read,
            [
                b.app(assign, [arr.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id, id1.clone()]),
            attrs,
            b.app(read, [arr, id1]),
        ),
    );
    b.build().expect("the Array specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    #[test]
    fn array_spec_checks() {
        let spec = array_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        let consistency = check_consistency(&spec);
        assert!(consistency.is_consistent(), "{}", consistency.summary());
    }

    #[test]
    fn last_write_wins() {
        let spec = array_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let x = sig.apply("ID_X", vec![]).unwrap();
        let y = sig.apply("ID_Y", vec![]).unwrap();
        let a1 = sig.apply("ATTR_1", vec![]).unwrap();
        let a2 = sig.apply("ATTR_2", vec![]).unwrap();
        let a3 = sig.apply("ATTR_3", vec![]).unwrap();
        // ASSIGN(ASSIGN(ASSIGN(EMPTY, x, a1), y, a2), x, a3)
        let arr = sig
            .apply(
                "ASSIGN",
                vec![
                    sig.apply(
                        "ASSIGN",
                        vec![
                            sig.apply(
                                "ASSIGN",
                                vec![sig.apply("EMPTY", vec![]).unwrap(), x.clone(), a1],
                            )
                            .unwrap(),
                            y.clone(),
                            a2.clone(),
                        ],
                    )
                    .unwrap(),
                    x.clone(),
                    a3.clone(),
                ],
            )
            .unwrap();
        let read_x = rw
            .normalize(&sig.apply("READ", vec![arr.clone(), x]).unwrap())
            .unwrap();
        assert_eq!(read_x, a3); // the later write shadows the earlier one
        let read_y = rw
            .normalize(&sig.apply("READ", vec![arr, y]).unwrap())
            .unwrap();
        assert_eq!(read_y, a2);
    }

    #[test]
    fn undefined_identifiers_read_as_error() {
        let spec = array_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let attrs = sig.find_sort("AttributeList").unwrap();
        let z = sig.apply("ID_Z", vec![]).unwrap();
        let empty = sig.apply("EMPTY", vec![]).unwrap();
        assert_eq!(
            rw.normalize(&sig.apply("READ", vec![empty.clone(), z.clone()]).unwrap())
                .unwrap(),
            Term::Error(attrs)
        );
        assert_eq!(
            rw.normalize(&sig.apply("IS_UNDEFINED?", vec![empty, z]).unwrap())
                .unwrap(),
            spec.sig().tt()
        );
    }

    #[test]
    fn is_undefined_tracks_assignment() {
        let spec = array_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let x = sig.apply("ID_X", vec![]).unwrap();
        let y = sig.apply("ID_Y", vec![]).unwrap();
        let a1 = sig.apply("ATTR_1", vec![]).unwrap();
        let arr = sig
            .apply(
                "ASSIGN",
                vec![sig.apply("EMPTY", vec![]).unwrap(), x.clone(), a1],
            )
            .unwrap();
        let undef_x = rw
            .normalize(&sig.apply("IS_UNDEFINED?", vec![arr.clone(), x]).unwrap())
            .unwrap();
        assert_eq!(undef_x, spec.sig().ff());
        let undef_y = rw
            .normalize(&sig.apply("IS_UNDEFINED?", vec![arr, y]).unwrap())
            .unwrap();
        assert_eq!(undef_y, spec.sig().tt());
    }
}
