//! The representation level of §4: Symboltable as a Stack of Arrays.
//!
//! One combined specification holds everything the paper's proof needs:
//!
//! * the concrete types **Stack** (of Arrays, axioms 10–16) and **Array**
//!   (axioms 17–20);
//! * the **primed operations** `INIT'`, `ENTERBLOCK'`, `LEAVEBLOCK'`,
//!   `ADD'`, `IS_INBLOCK'?`, `RETRIEVE'` — the implementation of the
//!   abstract operations as "code" over Stack and Array;
//! * the **abstract sort** `Symboltable` with its constructors, as the
//!   target of the abstraction function **Φ** (`PHI`), defined by the
//!   paper's clauses (a)–(d).
//!
//! The recursive primed operations are written case-by-constructor rather
//! than with an internal `IS_NEWSTACK?` test (the two are equivalent;
//! pattern form keeps symbolic rewriting terminating). `IS_INBLOCK'?`
//! returns `¬IS_UNDEFINED?(TOP(stk), id)` via a conditional, since the
//! algebra has no primitive negation.

use adt_core::{Spec, SpecBuilder, Term};
use adt_verify::OpMap;

use super::{install_attribute_lists, install_identifiers};

/// The operation/sort map from the abstract Symboltable specification
/// ([`super::symboltable_spec`]) into [`symtab_rep_spec`].
pub fn symtab_rep_op_map() -> OpMap {
    OpMap::new()
        .sort("Symboltable", "Stack")
        .op("INIT", "INIT'")
        .op("ENTERBLOCK", "ENTERBLOCK'")
        .op("LEAVEBLOCK", "LEAVEBLOCK'")
        .op("ADD", "ADD'")
        .op("IS_INBLOCK?", "IS_INBLOCK'?")
        .op("RETRIEVE", "RETRIEVE'")
}

/// Builds the combined representation-level specification.
pub fn symtab_rep_spec() -> Spec {
    let mut b = SpecBuilder::new("SymboltableRep");
    let stack = b.sort("Stack");
    let array = b.sort("Array");
    let st = b.sort("Symboltable"); // abstract level, the range of Φ
    let ident = install_identifiers(&mut b);
    let attrs_sort = install_attribute_lists(&mut b);
    let issame = b.sig().find_op("ISSAME?").expect("installed above");

    // ----- Stack of Arrays (axioms 10–16) -----
    let newstack = b.ctor("NEWSTACK", [], stack);
    let push = b.ctor("PUSH", [stack, array], stack);
    let pop = b.op("POP", [stack], stack);
    let top = b.op("TOP", [stack], array);
    let is_new = b.op("IS_NEWSTACK?", [stack], b.bool_sort());
    let replace = b.op("REPLACE", [stack, array], stack);

    // ----- Array (axioms 17–20) -----
    let empty = b.ctor("EMPTY", [], array);
    let assign = b.ctor("ASSIGN", [array, ident, attrs_sort], array);
    let read = b.op("READ", [array, ident], attrs_sort);
    let is_undef = b.op("IS_UNDEFINED?", [array, ident], b.bool_sort());

    // ----- Abstract Symboltable constructors (the range of Φ) -----
    let init_abs = b.ctor("INIT", [], st);
    let enter_abs = b.ctor("ENTERBLOCK", [st], st);
    let add_abs = b.ctor("ADD", [st, ident, attrs_sort], st);

    // ----- Primed operations -----
    let init_p = b.op("INIT'", [], stack);
    let enter_p = b.op("ENTERBLOCK'", [stack], stack);
    let leave_p = b.op("LEAVEBLOCK'", [stack], stack);
    let add_p = b.op("ADD'", [stack, ident, attrs_sort], stack);
    let inblock_p = b.op("IS_INBLOCK'?", [stack, ident], b.bool_sort());
    let retrieve_p = b.op("RETRIEVE'", [stack, ident], attrs_sort);

    // ----- Φ -----
    let phi = b.op("PHI", [stack], st);

    let stk = Term::Var(b.var("stk", stack));
    let arr = Term::Var(b.var("arr", array));
    let id = Term::Var(b.var("id", ident));
    let id1 = Term::Var(b.var("id1", ident));
    let attrs = Term::Var(b.var("attrs", attrs_sort));
    let tt = b.tt();
    let ff = b.ff();

    // Stack axioms.
    b.axiom("10", b.app(is_new, [b.app(newstack, [])]), tt.clone());
    b.axiom(
        "11",
        b.app(is_new, [b.app(push, [stk.clone(), arr.clone()])]),
        ff.clone(),
    );
    b.axiom("12", b.app(pop, [b.app(newstack, [])]), Term::Error(stack));
    b.axiom(
        "13",
        b.app(pop, [b.app(push, [stk.clone(), arr.clone()])]),
        stk.clone(),
    );
    b.axiom("14", b.app(top, [b.app(newstack, [])]), Term::Error(array));
    b.axiom(
        "15",
        b.app(top, [b.app(push, [stk.clone(), arr.clone()])]),
        arr.clone(),
    );
    b.axiom(
        "16",
        b.app(replace, [stk.clone(), arr.clone()]),
        Term::ite(
            b.app(is_new, [stk.clone()]),
            Term::Error(stack),
            b.app(push, [b.app(pop, [stk.clone()]), arr.clone()]),
        ),
    );

    // Array axioms.
    b.axiom(
        "17",
        b.app(is_undef, [b.app(empty, []), id.clone()]),
        b.tt(),
    );
    b.axiom(
        "18",
        b.app(
            is_undef,
            [
                b.app(assign, [arr.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id.clone(), id1.clone()]),
            b.ff(),
            b.app(is_undef, [arr.clone(), id1.clone()]),
        ),
    );
    b.axiom(
        "19",
        b.app(read, [b.app(empty, []), id.clone()]),
        Term::Error(attrs_sort),
    );
    b.axiom(
        "20",
        b.app(
            read,
            [
                b.app(assign, [arr.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id.clone(), id1.clone()]),
            attrs.clone(),
            b.app(read, [arr.clone(), id1.clone()]),
        ),
    );

    // Primed-operation definitions ("the code for each of these functions").
    b.axiom(
        "def_init",
        b.app(init_p, []),
        b.app(push, [b.app(newstack, []), b.app(empty, [])]),
    );
    b.axiom(
        "def_enter",
        b.app(enter_p, [stk.clone()]),
        b.app(push, [stk.clone(), b.app(empty, [])]),
    );
    b.axiom(
        "def_leave_new",
        b.app(leave_p, [b.app(newstack, [])]),
        Term::Error(stack),
    );
    b.axiom(
        "def_leave_push",
        b.app(leave_p, [b.app(push, [stk.clone(), arr.clone()])]),
        Term::ite(
            b.app(is_new, [stk.clone()]),
            Term::Error(stack),
            stk.clone(),
        ),
    );
    b.axiom(
        "def_add",
        b.app(add_p, [stk.clone(), id.clone(), attrs.clone()]),
        b.app(
            replace,
            [
                stk.clone(),
                b.app(
                    assign,
                    [b.app(top, [stk.clone()]), id.clone(), attrs.clone()],
                ),
            ],
        ),
    );
    b.axiom(
        "def_inblock_new",
        b.app(inblock_p, [b.app(newstack, []), id.clone()]),
        Term::Error(b.bool_sort()),
    );
    b.axiom(
        "def_inblock_push",
        b.app(
            inblock_p,
            [b.app(push, [stk.clone(), arr.clone()]), id.clone()],
        ),
        Term::ite(b.app(is_undef, [arr.clone(), id.clone()]), b.ff(), b.tt()),
    );
    b.axiom(
        "def_retrieve_new",
        b.app(retrieve_p, [b.app(newstack, []), id.clone()]),
        Term::Error(attrs_sort),
    );
    b.axiom(
        "def_retrieve_push",
        b.app(
            retrieve_p,
            [b.app(push, [stk.clone(), arr.clone()]), id.clone()],
        ),
        Term::ite(
            b.app(is_undef, [arr.clone(), id.clone()]),
            b.app(retrieve_p, [stk.clone(), id.clone()]),
            b.app(read, [arr.clone(), id.clone()]),
        ),
    );

    // Φ: clauses (a)–(d). (a), Φ(error) = error, is strictness.
    b.axiom("phi_b", b.app(phi, [b.app(newstack, [])]), Term::Error(st));
    b.axiom(
        "phi_c",
        b.app(phi, [b.app(push, [stk.clone(), b.app(empty, [])])]),
        Term::ite(
            b.app(is_new, [stk.clone()]),
            b.app(init_abs, []),
            b.app(enter_abs, [b.app(phi, [stk.clone()])]),
        ),
    );
    b.axiom(
        "phi_d",
        b.app(
            phi,
            [b.app(
                push,
                [
                    stk.clone(),
                    b.app(assign, [arr.clone(), id.clone(), attrs.clone()]),
                ],
            )],
        ),
        b.app(add_abs, [b.app(phi, [b.app(push, [stk, arr])]), id, attrs]),
    );

    b.build()
        .expect("the representation-level specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_rewrite::Rewriter;

    fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(op, args).unwrap()
    }

    #[test]
    fn the_primed_code_implements_a_symbol_table() {
        let spec = symtab_rep_spec();
        let rw = Rewriter::new(&spec);
        let x = apply(&spec, "ID_X", vec![]);
        let a1 = apply(&spec, "ATTR_1", vec![]);
        let a2 = apply(&spec, "ATTR_2", vec![]);
        // INIT'; ADD'(x, a1); ENTERBLOCK'; ADD'(x, a2).
        let t = apply(
            &spec,
            "ADD'",
            vec![
                apply(
                    &spec,
                    "ENTERBLOCK'",
                    vec![apply(
                        &spec,
                        "ADD'",
                        vec![apply(&spec, "INIT'", vec![]), x.clone(), a1.clone()],
                    )],
                ),
                x.clone(),
                a2.clone(),
            ],
        );
        let got = rw
            .normalize(&apply(&spec, "RETRIEVE'", vec![t.clone(), x.clone()]))
            .unwrap();
        assert_eq!(got, a2);
        // Leave the block: the outer binding reappears.
        let left = apply(&spec, "LEAVEBLOCK'", vec![t.clone()]);
        let got = rw
            .normalize(&apply(&spec, "RETRIEVE'", vec![left, x.clone()]))
            .unwrap();
        assert_eq!(got, a1);
        // IS_INBLOCK'? only sees the innermost array.
        let inblock = rw
            .normalize(&apply(&spec, "IS_INBLOCK'?", vec![t, x]))
            .unwrap();
        assert_eq!(inblock, spec.sig().tt());
    }

    #[test]
    fn phi_abstracts_concrete_stacks_to_symboltable_terms() {
        let spec = symtab_rep_spec();
        let rw = Rewriter::new(&spec);
        let x = apply(&spec, "ID_X", vec![]);
        let a1 = apply(&spec, "ATTR_1", vec![]);
        // Φ(ADD'(ENTERBLOCK'(INIT'), x, a1))
        //   = ADD(ENTERBLOCK(INIT), x, a1).
        let conc = apply(
            &spec,
            "ADD'",
            vec![
                apply(&spec, "ENTERBLOCK'", vec![apply(&spec, "INIT'", vec![])]),
                x.clone(),
                a1.clone(),
            ],
        );
        let abstracted = rw.normalize(&apply(&spec, "PHI", vec![conc])).unwrap();
        let expected = apply(
            &spec,
            "ADD",
            vec![
                apply(&spec, "ENTERBLOCK", vec![apply(&spec, "INIT", vec![])]),
                x,
                a1,
            ],
        );
        assert_eq!(abstracted, expected);
    }

    #[test]
    fn phi_maps_the_empty_stack_to_error() {
        let spec = symtab_rep_spec();
        let rw = Rewriter::new(&spec);
        let st = spec.sig().find_sort("Symboltable").unwrap();
        let nf = rw
            .normalize(&apply(&spec, "PHI", vec![apply(&spec, "NEWSTACK", vec![])]))
            .unwrap();
        assert_eq!(nf, Term::Error(st));
    }

    #[test]
    fn adding_to_the_empty_stack_is_error_without_assumption_1() {
        let spec = symtab_rep_spec();
        let rw = Rewriter::new(&spec);
        let stack = spec.sig().find_sort("Stack").unwrap();
        let x = apply(&spec, "ID_X", vec![]);
        let a1 = apply(&spec, "ATTR_1", vec![]);
        let t = apply(&spec, "ADD'", vec![apply(&spec, "NEWSTACK", vec![]), x, a1]);
        assert_eq!(rw.normalize(&t).unwrap(), Term::Error(stack));
    }

    #[test]
    fn rep_spec_is_consistent() {
        let spec = symtab_rep_spec();
        let report = adt_check::check_consistency(&spec);
        assert!(report.is_consistent(), "{}", report.summary());
    }
}
