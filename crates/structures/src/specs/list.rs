//! Lists with append, length and reverse — the "development of data
//! structures" continued past the paper's own examples, and the natural
//! playground for generator induction (§4 cites Wegbreit's term for it).
//!
//! `LENGTH` forces a second defined sort (`Nat` with `PLUS`), making the
//! specification a two-type module like the paper's layered examples.

use adt_core::{Spec, SpecBuilder, Term};

/// Builds the List specification:
///
/// ```text
/// HEAD(NIL) = error                HEAD(CONS(e, l)) = e
/// TAIL(NIL) = error                TAIL(CONS(e, l)) = l
/// IS_NIL?(NIL) = true              IS_NIL?(CONS(e, l)) = false
/// APPEND(NIL, l2) = l2             APPEND(CONS(e, l1), l2) = CONS(e, APPEND(l1, l2))
/// LENGTH(NIL) = ZERO               LENGTH(CONS(e, l)) = SUCC(LENGTH(l))
/// REVERSE(NIL) = NIL               REVERSE(CONS(e, l)) = APPEND(REVERSE(l), CONS(e, NIL))
/// PLUS(ZERO, n) = n                PLUS(SUCC(m), n) = SUCC(PLUS(m, n))
/// ```
pub fn list_spec() -> Spec {
    let mut b = SpecBuilder::new("List");
    let list = b.sort("List");
    let nat = b.sort("Nat");
    let elem = b.param_sort("Elem");
    for c in ["E1", "E2", "E3"] {
        b.ctor(c, [], elem);
    }

    let nil = b.ctor("NIL", [], list);
    let cons = b.ctor("CONS", [elem, list], list);
    let head = b.op("HEAD", [list], elem);
    let tail = b.op("TAIL", [list], list);
    let is_nil = b.op("IS_NIL?", [list], b.bool_sort());
    let append = b.op("APPEND", [list, list], list);
    let length = b.op("LENGTH", [list], nat);
    let reverse = b.op("REVERSE", [list], list);

    let zero = b.ctor("ZERO", [], nat);
    let succ = b.ctor("SUCC", [nat], nat);
    let plus = b.op("PLUS", [nat, nat], nat);

    let e = Term::Var(b.var("e", elem));
    let l = Term::Var(b.var("l", list));
    let l1 = Term::Var(b.var("l1", list));
    let l2 = Term::Var(b.var("l2", list));
    let m = Term::Var(b.var("m", nat));
    let n = Term::Var(b.var("n", nat));
    let tt = b.tt();
    let ff = b.ff();

    b.axiom("h1", b.app(head, [b.app(nil, [])]), Term::Error(elem));
    b.axiom(
        "h2",
        b.app(head, [b.app(cons, [e.clone(), l.clone()])]),
        e.clone(),
    );
    b.axiom("t1", b.app(tail, [b.app(nil, [])]), Term::Error(list));
    b.axiom(
        "t2",
        b.app(tail, [b.app(cons, [e.clone(), l.clone()])]),
        l.clone(),
    );
    b.axiom("n1", b.app(is_nil, [b.app(nil, [])]), tt);
    b.axiom(
        "n2",
        b.app(is_nil, [b.app(cons, [e.clone(), l.clone()])]),
        ff,
    );
    b.axiom(
        "a1",
        b.app(append, [b.app(nil, []), l2.clone()]),
        l2.clone(),
    );
    b.axiom(
        "a2",
        b.app(append, [b.app(cons, [e.clone(), l1.clone()]), l2.clone()]),
        b.app(cons, [e.clone(), b.app(append, [l1.clone(), l2.clone()])]),
    );
    b.axiom("g1", b.app(length, [b.app(nil, [])]), b.app(zero, []));
    b.axiom(
        "g2",
        b.app(length, [b.app(cons, [e.clone(), l.clone()])]),
        b.app(succ, [b.app(length, [l.clone()])]),
    );
    b.axiom("r1", b.app(reverse, [b.app(nil, [])]), b.app(nil, []));
    b.axiom(
        "r2",
        b.app(reverse, [b.app(cons, [e.clone(), l.clone()])]),
        b.app(
            append,
            [
                b.app(reverse, [l.clone()]),
                b.app(cons, [e.clone(), b.app(nil, [])]),
            ],
        ),
    );
    b.axiom("p1", b.app(plus, [b.app(zero, []), n.clone()]), n.clone());
    b.axiom(
        "p2",
        b.app(plus, [b.app(succ, [m.clone()]), n.clone()]),
        b.app(succ, [b.app(plus, [m, n])]),
    );

    b.build().expect("the List specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(op, args).unwrap()
    }

    #[test]
    fn list_spec_checks() {
        let spec = list_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        assert!(check_consistency(&spec).is_consistent());
    }

    #[test]
    fn append_length_reverse_compute() {
        let spec = list_spec();
        let rw = Rewriter::new(&spec);
        let e1 = apply(&spec, "E1", vec![]);
        let e2 = apply(&spec, "E2", vec![]);
        let nil = apply(&spec, "NIL", vec![]);
        // [E1, E2]
        let l12 = apply(
            &spec,
            "CONS",
            vec![
                e1.clone(),
                apply(&spec, "CONS", vec![e2.clone(), nil.clone()]),
            ],
        );
        // REVERSE([E1,E2]) = [E2,E1]
        let rev = rw
            .normalize(&apply(&spec, "REVERSE", vec![l12.clone()]))
            .unwrap();
        let l21 = apply(
            &spec,
            "CONS",
            vec![
                e2.clone(),
                apply(&spec, "CONS", vec![e1.clone(), nil.clone()]),
            ],
        );
        assert_eq!(rev, l21);
        // LENGTH(APPEND([E1,E2],[E2,E1])) = 4
        let appended = apply(&spec, "APPEND", vec![l12, l21]);
        let len = rw
            .normalize(&apply(&spec, "LENGTH", vec![appended]))
            .unwrap();
        let four = apply(
            &spec,
            "SUCC",
            vec![apply(
                &spec,
                "SUCC",
                vec![apply(
                    &spec,
                    "SUCC",
                    vec![apply(&spec, "SUCC", vec![apply(&spec, "ZERO", vec![])])],
                )],
            )],
        );
        assert_eq!(len, four);
    }

    #[test]
    fn boundary_conditions_error() {
        let spec = list_spec();
        let rw = Rewriter::new(&spec);
        let nil = apply(&spec, "NIL", vec![]);
        let elem = spec.sig().find_sort("Elem").unwrap();
        let list = spec.sig().find_sort("List").unwrap();
        assert_eq!(
            rw.normalize(&apply(&spec, "HEAD", vec![nil.clone()]))
                .unwrap(),
            Term::Error(elem)
        );
        assert_eq!(
            rw.normalize(&apply(&spec, "TAIL", vec![nil])).unwrap(),
            Term::Error(list)
        );
    }
}
