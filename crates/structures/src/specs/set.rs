//! Finite sets — a data structure the paper does not develop but whose
//! algebraic specification is the canonical exercise in the tradition
//! the paper founded (and the first type where *constructors are not
//! free*: INSERT is idempotent and commutative up to observation).

use adt_core::{Spec, SpecBuilder, Term};

/// Builds the Set specification:
///
/// ```text
/// MEMBER?(EMPTYSET, e) = false
/// MEMBER?(INSERT(s, e), e1) = if SAME?(e, e1) then true else MEMBER?(s, e1)
/// DELETE(EMPTYSET, e) = EMPTYSET
/// DELETE(INSERT(s, e), e1) = if SAME?(e, e1) then DELETE(s, e1)
///                            else INSERT(DELETE(s, e1), e)
/// IS_EMPTYSET?(EMPTYSET) = true
/// IS_EMPTYSET?(INSERT(s, e)) = false
/// ```
///
/// Note `DELETE` must recurse *past* a match (`DELETE(s, e1)`, not `s`):
/// INSERT chains may contain duplicates, and deletion removes every
/// occurrence — a classic subtlety the completeness/consistency checkers
/// and the model check both guard.
pub fn set_spec() -> Spec {
    let mut b = SpecBuilder::new("Set");
    let set = b.sort("Set");
    let elem = b.param_sort("Elem");
    for c in ["E1", "E2", "E3"] {
        b.ctor(c, [], elem);
    }
    let same = b.op("SAME?", [elem, elem], b.bool_sort());
    // SAME? is the diagonal over the sample elements.
    for (i, a) in ["E1", "E2", "E3"].iter().enumerate() {
        for (j, c) in ["E1", "E2", "E3"].iter().enumerate() {
            let lhs = Term::App(
                same,
                vec![
                    Term::constant(b.sig().find_op(a).expect("declared")),
                    Term::constant(b.sig().find_op(c).expect("declared")),
                ],
            );
            let rhs = if i == j { b.tt() } else { b.ff() };
            b.axiom(format!("same_{i}{j}"), lhs, rhs);
        }
    }

    let empty = b.ctor("EMPTYSET", [], set);
    let insert = b.ctor("INSERT", [set, elem], set);
    let member = b.op("MEMBER?", [set, elem], b.bool_sort());
    let delete = b.op("DELETE", [set, elem], set);
    let is_empty = b.op("IS_EMPTYSET?", [set], b.bool_sort());

    let s = Term::Var(b.var("s", set));
    let e = Term::Var(b.var("e", elem));
    let e1 = Term::Var(b.var("e1", elem));
    let tt = b.tt();
    let ff = b.ff();

    b.axiom(
        "m1",
        b.app(member, [b.app(empty, []), e.clone()]),
        ff.clone(),
    );
    b.axiom(
        "m2",
        b.app(member, [b.app(insert, [s.clone(), e.clone()]), e1.clone()]),
        Term::ite(
            b.app(same, [e.clone(), e1.clone()]),
            b.tt(),
            b.app(member, [s.clone(), e1.clone()]),
        ),
    );
    b.axiom(
        "d1",
        b.app(delete, [b.app(empty, []), e.clone()]),
        b.app(empty, []),
    );
    b.axiom(
        "d2",
        b.app(delete, [b.app(insert, [s.clone(), e.clone()]), e1.clone()]),
        Term::ite(
            b.app(same, [e.clone(), e1.clone()]),
            b.app(delete, [s.clone(), e1.clone()]),
            b.app(insert, [b.app(delete, [s.clone(), e1.clone()]), e.clone()]),
        ),
    );
    b.axiom("e1_", b.app(is_empty, [b.app(empty, [])]), tt);
    b.axiom(
        "e2_",
        b.app(is_empty, [b.app(insert, [s.clone(), e.clone()])]),
        ff,
    );

    b.build().expect("the Set specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(op, args).unwrap()
    }

    #[test]
    fn set_spec_checks() {
        let spec = set_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        assert!(check_consistency(&spec).is_consistent());
    }

    #[test]
    fn membership_and_deletion_compute() {
        let spec = set_spec();
        let rw = Rewriter::new(&spec);
        let e1 = apply(&spec, "E1", vec![]);
        let e2 = apply(&spec, "E2", vec![]);
        // {E1, E2, E1} (duplicate insert)
        let s = apply(
            &spec,
            "INSERT",
            vec![
                apply(
                    &spec,
                    "INSERT",
                    vec![
                        apply(
                            &spec,
                            "INSERT",
                            vec![apply(&spec, "EMPTYSET", vec![]), e1.clone()],
                        ),
                        e2.clone(),
                    ],
                ),
                e1.clone(),
            ],
        );
        let member = |s: &Term, e: &Term| {
            rw.normalize(&apply(&spec, "MEMBER?", vec![s.clone(), e.clone()]))
                .unwrap()
        };
        assert_eq!(member(&s, &e1), spec.sig().tt());
        assert_eq!(member(&s, &e2), spec.sig().tt());
        // Deleting E1 removes BOTH occurrences.
        let without = rw
            .normalize(&apply(&spec, "DELETE", vec![s, e1.clone()]))
            .unwrap();
        assert_eq!(member(&without, &e1), spec.sig().ff());
        assert_eq!(member(&without, &e2), spec.sig().tt());
    }

    #[test]
    fn delete_on_empty_is_empty_not_error() {
        // Unlike Queue/Stack, deletion from the empty set is benign.
        let spec = set_spec();
        let rw = Rewriter::new(&spec);
        let e1 = apply(&spec, "E1", vec![]);
        let empty = apply(&spec, "EMPTYSET", vec![]);
        let nf = rw
            .normalize(&apply(&spec, "DELETE", vec![empty.clone(), e1]))
            .unwrap();
        assert_eq!(nf, empty);
    }
}
