//! The paper's algebraic specifications, built programmatically.
//!
//! Parameter sorts are instantiated with a few constant constructors (the
//! paper's `Item`, `Identifier`, `AttributeList` are parameters of a "type
//! schema"; executable checking needs inhabitants). `ISSAME?` — "part of
//! the specification of an independently defined type Identifier"
//! (footnote 2) — is axiomatized over those constants.

mod array;
mod diff;
mod knowlist;
mod list;
mod queue;
mod rep;
mod set;
mod stack;
mod symtab;

pub use array::array_spec;
pub use diff::{axiom_diff, AxiomDiff};
pub use knowlist::{knowlist_spec, symboltable_kl_spec};
pub use list::list_spec;
pub use queue::{queue_spec, queue_spec_incomplete};
pub use rep::{symtab_rep_op_map, symtab_rep_spec};
pub use set::set_spec;
pub use stack::stack_spec;
pub use symtab::symboltable_spec;

use adt_core::{SortId, SpecBuilder, Term};

/// Names of the sample identifiers installed for the `Identifier`
/// parameter sort.
pub const SAMPLE_IDENTIFIERS: [&str; 3] = ["ID_X", "ID_Y", "ID_Z"];

/// Names of the sample attribute lists installed for the
/// `AttributeList` parameter sort.
pub const SAMPLE_ATTRIBUTES: [&str; 3] = ["ATTR_1", "ATTR_2", "ATTR_3"];

/// Declares the parameter sort `Identifier` with three constant
/// identifiers and the `ISSAME?` operation, axiomatized by the diagonal:
/// `ISSAME?(x, y) = true` iff `x` and `y` are the same constant.
pub(crate) fn install_identifiers(b: &mut SpecBuilder) -> SortId {
    let ident = b.param_sort("Identifier");
    let ids: Vec<_> = SAMPLE_IDENTIFIERS
        .iter()
        .map(|n| b.ctor(n, [], ident))
        .collect();
    let issame = b.op("ISSAME?", [ident, ident], b.bool_sort());
    for (i, &a) in ids.iter().enumerate() {
        for (j, &c) in ids.iter().enumerate() {
            let rhs = if i == j { b.tt() } else { b.ff() };
            b.axiom(
                format!("same_{i}{j}"),
                Term::App(issame, vec![Term::constant(a), Term::constant(c)]),
                rhs,
            );
        }
    }
    ident
}

/// Declares the parameter sort `AttributeList` with three constants.
pub(crate) fn install_attribute_lists(b: &mut SpecBuilder) -> SortId {
    let attrs = b.param_sort("AttributeList");
    for n in SAMPLE_ATTRIBUTES {
        b.ctor(n, [], attrs);
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_rewrite::Rewriter;

    #[test]
    fn issame_is_the_diagonal() {
        let mut b = SpecBuilder::new("IdentOnly");
        // A dummy sort of interest so the spec is valid.
        let s = b.sort("S");
        b.ctor("UNIT", [], s);
        install_identifiers(&mut b);
        let spec = b.build().unwrap();
        let rw = Rewriter::new(&spec);
        let x = spec.sig().apply("ID_X", vec![]).unwrap();
        let y = spec.sig().apply("ID_Y", vec![]).unwrap();
        let same_xx = spec
            .sig()
            .apply("ISSAME?", vec![x.clone(), x.clone()])
            .unwrap();
        let same_xy = spec.sig().apply("ISSAME?", vec![x, y]).unwrap();
        assert_eq!(rw.normalize(&same_xx).unwrap(), spec.sig().tt());
        assert_eq!(rw.normalize(&same_xy).unwrap(), spec.sig().ff());
    }

    #[test]
    fn identifier_and_attribute_installers_are_complete_and_consistent() {
        let mut b = SpecBuilder::new("Params");
        let s = b.sort("S");
        b.ctor("UNIT", [], s);
        install_identifiers(&mut b);
        install_attribute_lists(&mut b);
        let spec = b.build().unwrap();
        let report = adt_check::check_completeness(&spec);
        assert!(report.is_sufficiently_complete(), "{}", report.prompts());
        let consistency = adt_check::check_consistency(&spec);
        assert!(consistency.is_consistent(), "{}", consistency.summary());
    }
}
