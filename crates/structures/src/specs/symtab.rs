//! The Symboltable of §4 (axioms 1–9).

use adt_core::{Spec, SpecBuilder, Term};

use super::{install_attribute_lists, install_identifiers};

/// Builds the Symboltable specification of §4:
///
/// ```text
/// (1) LEAVEBLOCK(INIT) = error
/// (2) LEAVEBLOCK(ENTERBLOCK(symtab)) = symtab
/// (3) LEAVEBLOCK(ADD(symtab, id, attrs)) = LEAVEBLOCK(symtab)
/// (4) IS_INBLOCK?(INIT, id) = false
/// (5) IS_INBLOCK?(ENTERBLOCK(symtab), id) = false
/// (6) IS_INBLOCK?(ADD(symtab, id, attrs), id1) =
///       if ISSAME?(id, id1) then true else IS_INBLOCK?(symtab, id1)
/// (7) RETRIEVE(INIT, id) = error
/// (8) RETRIEVE(ENTERBLOCK(symtab), id) = RETRIEVE(symtab, id)
/// (9) RETRIEVE(ADD(symtab, id, attrs), id1) =
///       if ISSAME?(id, id1) then attrs else RETRIEVE(symtab, id1)
/// ```
///
/// "Not only does it define an abstract type that can be used in the
/// specification of various parts of the compiler, but it also provides a
/// complete self-contained specification for a major subsystem of the
/// compiler."
pub fn symboltable_spec() -> Spec {
    let mut b = SpecBuilder::new("Symboltable");
    let st = b.sort("Symboltable");
    let ident = install_identifiers(&mut b);
    let attrs_sort = install_attribute_lists(&mut b);

    let init = b.ctor("INIT", [], st);
    let enter = b.ctor("ENTERBLOCK", [st], st);
    let add = b.ctor("ADD", [st, ident, attrs_sort], st);
    let leave = b.op("LEAVEBLOCK", [st], st);
    let inblock = b.op("IS_INBLOCK?", [st, ident], b.bool_sort());
    let retrieve = b.op("RETRIEVE", [st, ident], attrs_sort);
    let issame = b.sig().find_op("ISSAME?").expect("installed above");

    let s = Term::Var(b.var("symtab", st));
    let id = Term::Var(b.var("id", ident));
    let id1 = Term::Var(b.var("id1", ident));
    let attrs = Term::Var(b.var("attrs", attrs_sort));
    let ff = b.ff();

    b.axiom("1", b.app(leave, [b.app(init, [])]), Term::Error(st));
    b.axiom("2", b.app(leave, [b.app(enter, [s.clone()])]), s.clone());
    b.axiom(
        "3",
        b.app(leave, [b.app(add, [s.clone(), id.clone(), attrs.clone()])]),
        b.app(leave, [s.clone()]),
    );
    b.axiom(
        "4",
        b.app(inblock, [b.app(init, []), id.clone()]),
        ff.clone(),
    );
    b.axiom(
        "5",
        b.app(inblock, [b.app(enter, [s.clone()]), id.clone()]),
        ff,
    );
    b.axiom(
        "6",
        b.app(
            inblock,
            [
                b.app(add, [s.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id.clone(), id1.clone()]),
            b.tt(),
            b.app(inblock, [s.clone(), id1.clone()]),
        ),
    );
    b.axiom(
        "7",
        b.app(retrieve, [b.app(init, []), id.clone()]),
        Term::Error(attrs_sort),
    );
    b.axiom(
        "8",
        b.app(retrieve, [b.app(enter, [s.clone()]), id.clone()]),
        b.app(retrieve, [s.clone(), id.clone()]),
    );
    b.axiom(
        "9",
        b.app(
            retrieve,
            [
                b.app(add, [s.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id, id1.clone()]),
            attrs,
            b.app(retrieve, [s, id1]),
        ),
    );
    b.build()
        .expect("the Symboltable specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    #[test]
    fn symboltable_spec_checks() {
        let spec = symboltable_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        let consistency = check_consistency(&spec);
        assert!(consistency.is_consistent(), "{}", consistency.summary());
    }

    fn sig_apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(op, args).unwrap()
    }

    #[test]
    fn inner_scopes_shadow_outer_ones() {
        let spec = symboltable_spec();
        let rw = Rewriter::new(&spec);
        let x = sig_apply(&spec, "ID_X", vec![]);
        let a1 = sig_apply(&spec, "ATTR_1", vec![]);
        let a2 = sig_apply(&spec, "ATTR_2", vec![]);
        // INIT; add x:a1; enter block; add x:a2 — retrieve sees a2.
        let t = sig_apply(
            &spec,
            "ADD",
            vec![
                sig_apply(
                    &spec,
                    "ENTERBLOCK",
                    vec![sig_apply(
                        &spec,
                        "ADD",
                        vec![sig_apply(&spec, "INIT", vec![]), x.clone(), a1.clone()],
                    )],
                ),
                x.clone(),
                a2.clone(),
            ],
        );
        let got = rw
            .normalize(&sig_apply(&spec, "RETRIEVE", vec![t.clone(), x.clone()]))
            .unwrap();
        assert_eq!(got, a2);
        // After LEAVEBLOCK, the outer binding is visible again.
        let left = sig_apply(&spec, "LEAVEBLOCK", vec![t]);
        let got = rw
            .normalize(&sig_apply(&spec, "RETRIEVE", vec![left, x]))
            .unwrap();
        assert_eq!(got, a1);
    }

    #[test]
    fn is_inblock_sees_only_the_current_scope() {
        let spec = symboltable_spec();
        let rw = Rewriter::new(&spec);
        let x = sig_apply(&spec, "ID_X", vec![]);
        let a1 = sig_apply(&spec, "ATTR_1", vec![]);
        // x declared in the outer block, then a fresh block entered.
        let t = sig_apply(
            &spec,
            "ENTERBLOCK",
            vec![sig_apply(
                &spec,
                "ADD",
                vec![sig_apply(&spec, "INIT", vec![]), x.clone(), a1],
            )],
        );
        let inblock = rw
            .normalize(&sig_apply(&spec, "IS_INBLOCK?", vec![t.clone(), x.clone()]))
            .unwrap();
        assert_eq!(inblock, spec.sig().ff());
        // But RETRIEVE still finds it (most local *occurrence*).
        let retrieved = rw
            .normalize(&sig_apply(&spec, "RETRIEVE", vec![t, x]))
            .unwrap();
        assert_eq!(retrieved, sig_apply(&spec, "ATTR_1", vec![]));
    }

    #[test]
    fn boundary_conditions_error() {
        let spec = symboltable_spec();
        let rw = Rewriter::new(&spec);
        let st = spec.sig().find_sort("Symboltable").unwrap();
        let attrs = spec.sig().find_sort("AttributeList").unwrap();
        let init = sig_apply(&spec, "INIT", vec![]);
        let x = sig_apply(&spec, "ID_X", vec![]);
        assert_eq!(
            rw.normalize(&sig_apply(&spec, "LEAVEBLOCK", vec![init.clone()]))
                .unwrap(),
            Term::Error(st)
        );
        assert_eq!(
            rw.normalize(&sig_apply(&spec, "RETRIEVE", vec![init, x]))
                .unwrap(),
            Term::Error(attrs)
        );
    }

    #[test]
    fn leaveblock_discards_adds_in_the_current_scope() {
        let spec = symboltable_spec();
        let rw = Rewriter::new(&spec);
        let x = sig_apply(&spec, "ID_X", vec![]);
        let a1 = sig_apply(&spec, "ATTR_1", vec![]);
        // LEAVEBLOCK(ADD(ENTERBLOCK(INIT), x, a1)) = INIT (axiom 3 then 2).
        let t = sig_apply(
            &spec,
            "LEAVEBLOCK",
            vec![sig_apply(
                &spec,
                "ADD",
                vec![
                    sig_apply(&spec, "ENTERBLOCK", vec![sig_apply(&spec, "INIT", vec![])]),
                    x,
                    a1,
                ],
            )],
        );
        let nf = rw.normalize(&t).unwrap();
        assert_eq!(nf, sig_apply(&spec, "INIT", vec![]));
    }
}
