//! Mechanical comparison of two specifications' axiom sets.
//!
//! "Because the relationships among the various operations appear
//! explicitly, the process of deciding which axioms must be altered to
//! effect a change is straightforward" (§4). This module makes the claim
//! checkable: diff two specifications and see exactly which axioms
//! changed.

use std::collections::BTreeMap;

use adt_core::{display, Spec};

/// The result of diffing two specifications' axioms by label.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AxiomDiff {
    /// Labels present in both whose rendered equations are identical.
    pub unchanged: Vec<String>,
    /// Labels present in both whose equations differ, with both renderings.
    pub changed: Vec<(String, String, String)>,
    /// Labels only in the first specification (with rendering).
    pub only_in_first: Vec<(String, String)>,
    /// Labels only in the second specification (with rendering).
    pub only_in_second: Vec<(String, String)>,
}

impl AxiomDiff {
    /// Labels of the changed axioms.
    pub fn changed_labels(&self) -> Vec<&str> {
        self.changed.iter().map(|(l, _, _)| l.as_str()).collect()
    }
}

fn rendered(spec: &Spec) -> BTreeMap<String, String> {
    spec.axioms()
        .iter()
        .map(|ax| {
            (
                ax.label().to_owned(),
                format!(
                    "{} = {}",
                    display::term(spec.sig(), ax.lhs()),
                    display::term(spec.sig(), ax.rhs())
                ),
            )
        })
        .collect()
}

/// Diffs the axioms of two specifications by label, comparing rendered
/// equations (rendering is name-faithful, so this is α-respecting as long
/// as variable names are kept stable across versions — which is how
/// humans evolve specifications).
pub fn axiom_diff(first: &Spec, second: &Spec) -> AxiomDiff {
    let a = rendered(first);
    let b = rendered(second);
    let mut diff = AxiomDiff::default();
    for (label, eq_a) in &a {
        match b.get(label) {
            Some(eq_b) if eq_a == eq_b => diff.unchanged.push(label.clone()),
            Some(eq_b) => diff
                .changed
                .push((label.clone(), eq_a.clone(), eq_b.clone())),
            None => diff.only_in_first.push((label.clone(), eq_a.clone())),
        }
    }
    for (label, eq_b) in &b {
        if !a.contains_key(label) {
            diff.only_in_second.push((label.clone(), eq_b.clone()));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{queue_spec, queue_spec_incomplete, symboltable_kl_spec, symboltable_spec};

    #[test]
    fn identical_specs_diff_empty() {
        let a = queue_spec();
        let b = queue_spec();
        let diff = axiom_diff(&a, &b);
        assert!(diff.changed.is_empty());
        assert!(diff.only_in_first.is_empty());
        assert!(diff.only_in_second.is_empty());
        assert_eq!(diff.unchanged.len(), a.axioms().len());
    }

    #[test]
    fn dropped_axiom_shows_up_on_one_side() {
        let full = queue_spec();
        let partial = queue_spec_incomplete();
        let diff = axiom_diff(&full, &partial);
        assert_eq!(diff.only_in_first.len(), 1);
        assert_eq!(diff.only_in_first[0].0, "4");
        assert!(diff.only_in_second.is_empty());
    }

    #[test]
    fn knowlist_change_touches_exactly_the_enterblock_axioms() {
        // The paper's claim, checked mechanically: moving to knows lists
        // alters the axioms that mention ENTERBLOCK — 2, 5, 8 — and only
        // those (the Knowlist axioms themselves are additions).
        let before = symboltable_spec();
        let after = symboltable_kl_spec();
        let diff = axiom_diff(&before, &after);
        assert_eq!(diff.changed_labels(), vec!["2", "5", "8"]);
        assert!(diff.only_in_first.is_empty());
        // Additions: the Knowlist type's own axioms.
        let added: Vec<&str> = diff
            .only_in_second
            .iter()
            .map(|(l, _)| l.as_str())
            .collect();
        assert_eq!(added, vec!["k1", "k2"]);
        // Everything else carried over verbatim.
        assert!(diff.unchanged.contains(&"6".to_owned()));
        assert!(diff.unchanged.contains(&"9".to_owned()));
    }
}
