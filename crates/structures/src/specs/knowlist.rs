//! The Knowlist extension (§4, end): adapting the Symboltable when the
//! language acquires "knows lists".
//!
//! "Within the specification of type Symboltable, all relations, and only
//! those relations, that explicitly deal with the ENTERBLOCK operation
//! would have to be altered."

use adt_core::{Spec, SpecBuilder, Term};

use super::{install_attribute_lists, install_identifiers};

/// Builds the standalone Knowlist specification:
///
/// ```text
/// IS_IN?(CREATE, id) = false
/// IS_IN?(APPEND(klist, id), id1) = if ISSAME?(id, id1) then true
///                                  else IS_IN?(klist, id1)
/// ```
///
/// (The paper prints the first axiom as `IS_IN?(CREATE) = false`, eliding
/// the identifier argument; it is restored here.)
pub fn knowlist_spec() -> Spec {
    let mut b = SpecBuilder::new("Knowlist");
    let kl = b.sort("Knowlist");
    let ident = install_identifiers(&mut b);
    install_knowlist_ops(&mut b, kl, ident);
    b.build()
        .expect("the Knowlist specification is well-formed")
}

fn install_knowlist_ops(b: &mut SpecBuilder, kl: adt_core::SortId, ident: adt_core::SortId) {
    let create = b.ctor("CREATE", [], kl);
    let append = b.ctor("APPEND", [kl, ident], kl);
    let is_in = b.op("IS_IN?", [kl, ident], b.bool_sort());
    let issame = b.sig().find_op("ISSAME?").expect("identifiers installed");
    let klist = Term::Var(b.var("klist", kl));
    let kid = Term::Var(b.var("kid", ident));
    let kid1 = Term::Var(b.var("kid1", ident));
    let ff = b.ff();
    b.axiom("k1", b.app(is_in, [b.app(create, []), kid.clone()]), ff);
    b.axiom(
        "k2",
        b.app(
            is_in,
            [b.app(append, [klist.clone(), kid.clone()]), kid1.clone()],
        ),
        Term::ite(
            b.app(issame, [kid, kid1.clone()]),
            b.tt(),
            b.app(is_in, [klist, kid1]),
        ),
    );
}

/// Builds the Symboltable-with-knows-lists specification: identical to
/// [`super::symboltable_spec`] except that `ENTERBLOCK` takes a
/// `Knowlist`, and the three ENTERBLOCK axioms change:
///
/// ```text
/// (2')  LEAVEBLOCK(ENTERBLOCK(symtab, klist)) = symtab
/// (5')  IS_INBLOCK?(ENTERBLOCK(symtab, klist), id) = false
/// (8')  RETRIEVE(ENTERBLOCK(symtab, klist), id) =
///         if IS_IN?(klist, id) then RETRIEVE(symtab, id) else error
/// ```
///
/// Every other axiom is carried over verbatim; compare with
/// [`super::axiom_diff`] to see that mechanically.
pub fn symboltable_kl_spec() -> Spec {
    let mut b = SpecBuilder::new("SymboltableKL");
    let st = b.sort("Symboltable");
    let kl = b.sort("Knowlist");
    let ident = install_identifiers(&mut b);
    let attrs_sort = install_attribute_lists(&mut b);
    install_knowlist_ops(&mut b, kl, ident);
    let is_in = b.sig().find_op("IS_IN?").expect("installed above");
    let issame = b.sig().find_op("ISSAME?").expect("installed above");

    let init = b.ctor("INIT", [], st);
    let enter = b.ctor("ENTERBLOCK", [st, kl], st);
    let add = b.ctor("ADD", [st, ident, attrs_sort], st);
    let leave = b.op("LEAVEBLOCK", [st], st);
    let inblock = b.op("IS_INBLOCK?", [st, ident], b.bool_sort());
    let retrieve = b.op("RETRIEVE", [st, ident], attrs_sort);

    let s = Term::Var(b.var("symtab", st));
    // `klist` was already declared by the Knowlist installer.
    let klist = Term::Var(b.sig().find_var("klist").expect("installed above"));
    let id = Term::Var(b.var("id", ident));
    let id1 = Term::Var(b.var("id1", ident));
    let attrs = Term::Var(b.var("attrs", attrs_sort));
    let ff = b.ff();

    b.axiom("1", b.app(leave, [b.app(init, [])]), Term::Error(st));
    b.axiom(
        "2",
        b.app(leave, [b.app(enter, [s.clone(), klist.clone()])]),
        s.clone(),
    );
    b.axiom(
        "3",
        b.app(leave, [b.app(add, [s.clone(), id.clone(), attrs.clone()])]),
        b.app(leave, [s.clone()]),
    );
    b.axiom(
        "4",
        b.app(inblock, [b.app(init, []), id.clone()]),
        ff.clone(),
    );
    b.axiom(
        "5",
        b.app(
            inblock,
            [b.app(enter, [s.clone(), klist.clone()]), id.clone()],
        ),
        ff,
    );
    b.axiom(
        "6",
        b.app(
            inblock,
            [
                b.app(add, [s.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id.clone(), id1.clone()]),
            b.tt(),
            b.app(inblock, [s.clone(), id1.clone()]),
        ),
    );
    b.axiom(
        "7",
        b.app(retrieve, [b.app(init, []), id.clone()]),
        Term::Error(attrs_sort),
    );
    b.axiom(
        "8",
        b.app(
            retrieve,
            [b.app(enter, [s.clone(), klist.clone()]), id.clone()],
        ),
        Term::ite(
            b.app(is_in, [klist, id.clone()]),
            b.app(retrieve, [s.clone(), id.clone()]),
            Term::Error(attrs_sort),
        ),
    );
    b.axiom(
        "9",
        b.app(
            retrieve,
            [
                b.app(add, [s.clone(), id.clone(), attrs.clone()]),
                id1.clone(),
            ],
        ),
        Term::ite(
            b.app(issame, [id, id1.clone()]),
            attrs,
            b.app(retrieve, [s, id1]),
        ),
    );
    b.build()
        .expect("the Symboltable-with-knows-lists specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    #[test]
    fn knowlist_spec_checks() {
        let spec = knowlist_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        assert!(check_consistency(&spec).is_consistent());
    }

    #[test]
    fn symboltable_kl_spec_checks() {
        let spec = symboltable_kl_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        assert!(check_consistency(&spec).is_consistent());
    }

    fn apply(spec: &Spec, op: &str, args: Vec<Term>) -> Term {
        spec.sig().apply(op, args).unwrap()
    }

    #[test]
    fn knows_list_membership() {
        let spec = knowlist_spec();
        let rw = Rewriter::new(&spec);
        let x = apply(&spec, "ID_X", vec![]);
        let y = apply(&spec, "ID_Y", vec![]);
        let z = apply(&spec, "ID_Z", vec![]);
        let klist = apply(
            &spec,
            "APPEND",
            vec![
                apply(
                    &spec,
                    "APPEND",
                    vec![apply(&spec, "CREATE", vec![]), x.clone()],
                ),
                y.clone(),
            ],
        );
        let is_in = |id: &Term| {
            rw.normalize(&apply(&spec, "IS_IN?", vec![klist.clone(), id.clone()]))
                .unwrap()
        };
        assert_eq!(is_in(&x), spec.sig().tt());
        assert_eq!(is_in(&y), spec.sig().tt());
        assert_eq!(is_in(&z), spec.sig().ff());
    }

    #[test]
    fn globals_are_visible_only_through_the_knows_list() {
        let spec = symboltable_kl_spec();
        let rw = Rewriter::new(&spec);
        let attrs_sort = spec.sig().find_sort("AttributeList").unwrap();
        let x = apply(&spec, "ID_X", vec![]);
        let y = apply(&spec, "ID_Y", vec![]);
        let a1 = apply(&spec, "ATTR_1", vec![]);
        let a2 = apply(&spec, "ATTR_2", vec![]);
        // Outer block declares x and y; inner block knows only x.
        let outer = apply(
            &spec,
            "ADD",
            vec![
                apply(
                    &spec,
                    "ADD",
                    vec![apply(&spec, "INIT", vec![]), x.clone(), a1.clone()],
                ),
                y.clone(),
                a2,
            ],
        );
        let knows_x = apply(
            &spec,
            "APPEND",
            vec![apply(&spec, "CREATE", vec![]), x.clone()],
        );
        let inner = apply(&spec, "ENTERBLOCK", vec![outer, knows_x]);
        // x is retrievable through the knows list…
        let got_x = rw
            .normalize(&apply(&spec, "RETRIEVE", vec![inner.clone(), x]))
            .unwrap();
        assert_eq!(got_x, a1);
        // …but y is not: the knows list hides it.
        let got_y = rw
            .normalize(&apply(&spec, "RETRIEVE", vec![inner, y]))
            .unwrap();
        assert_eq!(got_y, Term::Error(attrs_sort));
    }
}
