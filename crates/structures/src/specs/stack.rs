//! The Stack of §4 (axioms 10–16).

use adt_core::{Spec, SpecBuilder, Term};

/// Builds the Stack specification of §4 (axioms 10–16), with the element
/// parameter sort `Elem` instantiated by two constants.
///
/// In the paper the stack holds Arrays; the specification itself is a
/// schema over any element type, so the standalone version uses a neutral
/// parameter. `REPLACE` is the paper's derived operation (axiom 16):
/// `REPLACE(stk, e) = if IS_NEWSTACK?(stk) then error else PUSH(POP(stk), e)`.
pub fn stack_spec() -> Spec {
    let mut b = SpecBuilder::new("Stack");
    let stack = b.sort("Stack");
    let elem = b.param_sort("Elem");
    for c in ["E1", "E2"] {
        b.ctor(c, [], elem);
    }
    let newstack = b.ctor("NEWSTACK", [], stack);
    let push = b.ctor("PUSH", [stack, elem], stack);
    let pop = b.op("POP", [stack], stack);
    let top = b.op("TOP", [stack], elem);
    let is_new = b.op("IS_NEWSTACK?", [stack], b.bool_sort());
    let replace = b.op("REPLACE", [stack, elem], stack);
    let stk = Term::Var(b.var("stk", stack));
    let e = Term::Var(b.var("e", elem));
    let tt = b.tt();
    let ff = b.ff();

    b.axiom("10", b.app(is_new, [b.app(newstack, [])]), tt);
    b.axiom(
        "11",
        b.app(is_new, [b.app(push, [stk.clone(), e.clone()])]),
        ff,
    );
    b.axiom("12", b.app(pop, [b.app(newstack, [])]), Term::Error(stack));
    b.axiom(
        "13",
        b.app(pop, [b.app(push, [stk.clone(), e.clone()])]),
        stk.clone(),
    );
    b.axiom("14", b.app(top, [b.app(newstack, [])]), Term::Error(elem));
    b.axiom(
        "15",
        b.app(top, [b.app(push, [stk.clone(), e.clone()])]),
        e.clone(),
    );
    b.axiom(
        "16",
        b.app(replace, [stk.clone(), e.clone()]),
        Term::ite(
            b.app(is_new, [stk.clone()]),
            Term::Error(stack),
            b.app(push, [b.app(pop, [stk]), e]),
        ),
    );
    b.build().expect("the Stack specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency};
    use adt_rewrite::Rewriter;

    #[test]
    fn stack_spec_checks() {
        let spec = stack_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        let consistency = check_consistency(&spec);
        assert!(consistency.is_consistent(), "{}", consistency.summary());
    }

    #[test]
    fn lifo_order_is_derivable() {
        let spec = stack_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let e1 = sig.apply("E1", vec![]).unwrap();
        let e2 = sig.apply("E2", vec![]).unwrap();
        let s = sig
            .apply(
                "PUSH",
                vec![
                    sig.apply(
                        "PUSH",
                        vec![sig.apply("NEWSTACK", vec![]).unwrap(), e1.clone()],
                    )
                    .unwrap(),
                    e2.clone(),
                ],
            )
            .unwrap();
        let top = rw
            .normalize(&sig.apply("TOP", vec![s.clone()]).unwrap())
            .unwrap();
        assert_eq!(top, e2);
        let popped = rw.normalize(&sig.apply("POP", vec![s]).unwrap()).unwrap();
        let top2 = rw
            .normalize(&sig.apply("TOP", vec![popped]).unwrap())
            .unwrap();
        assert_eq!(top2, e1);
    }

    #[test]
    fn replace_swaps_the_top_and_errors_on_empty() {
        let spec = stack_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let stack = sig.find_sort("Stack").unwrap();
        let e1 = sig.apply("E1", vec![]).unwrap();
        let e2 = sig.apply("E2", vec![]).unwrap();
        let new = sig.apply("NEWSTACK", vec![]).unwrap();
        // REPLACE(PUSH(NEWSTACK, E1), E2) = PUSH(NEWSTACK, E2).
        let one = sig.apply("PUSH", vec![new.clone(), e1]).unwrap();
        let replaced = rw
            .normalize(&sig.apply("REPLACE", vec![one, e2.clone()]).unwrap())
            .unwrap();
        let expected = sig.apply("PUSH", vec![new.clone(), e2.clone()]).unwrap();
        assert_eq!(replaced, expected);
        // REPLACE(NEWSTACK, E2) = error.
        let on_empty = rw
            .normalize(&sig.apply("REPLACE", vec![new, e2]).unwrap())
            .unwrap();
        assert_eq!(on_empty, Term::Error(stack));
    }

    #[test]
    fn boundary_conditions_error() {
        let spec = stack_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let stack = sig.find_sort("Stack").unwrap();
        let elem = sig.find_sort("Elem").unwrap();
        let new = sig.apply("NEWSTACK", vec![]).unwrap();
        assert_eq!(
            rw.normalize(&sig.apply("POP", vec![new.clone()]).unwrap())
                .unwrap(),
            Term::Error(stack)
        );
        assert_eq!(
            rw.normalize(&sig.apply("TOP", vec![new]).unwrap()).unwrap(),
            Term::Error(elem)
        );
    }
}
