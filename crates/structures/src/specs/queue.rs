//! The Queue of §3 (axioms 1–6).

use adt_core::{Spec, SpecBuilder, Term};

/// Builds the Queue specification of §3, with `Item` instantiated by the
/// three constants `A`, `B`, `C`.
///
/// ```text
/// (1) IS_EMPTY?(NEW) = true
/// (2) IS_EMPTY?(ADD(q, i)) = false
/// (3) FRONT(NEW) = error
/// (4) FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
/// (5) REMOVE(NEW) = error
/// (6) REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
/// ```
pub fn queue_spec() -> Spec {
    build(true)
}

/// The same specification with axiom 4 *omitted* — the paper's running
/// example of an insufficiently complete axiom set ("Boundary conditions
/// … are particularly likely to be overlooked"; here it is the general
/// case of `FRONT` that is missing, which the checker must prompt for).
pub fn queue_spec_incomplete() -> Spec {
    build(false)
}

fn build(include_axiom_4: bool) -> Spec {
    let mut b = SpecBuilder::new("Queue");
    let queue = b.sort("Queue");
    let item = b.param_sort("Item");
    let new = b.ctor("NEW", [], queue);
    let add = b.ctor("ADD", [queue, item], queue);
    let front = b.op("FRONT", [queue], item);
    let remove = b.op("REMOVE", [queue], queue);
    let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
    for c in ["A", "B", "C"] {
        b.ctor(c, [], item);
    }
    let q = Term::Var(b.var("q", queue));
    let i = Term::Var(b.var("i", item));
    let tt = b.tt();
    let ff = b.ff();

    b.axiom("1", b.app(is_empty, [b.app(new, [])]), tt);
    b.axiom(
        "2",
        b.app(is_empty, [b.app(add, [q.clone(), i.clone()])]),
        ff,
    );
    b.axiom("3", b.app(front, [b.app(new, [])]), Term::Error(item));
    if include_axiom_4 {
        b.axiom(
            "4",
            b.app(front, [b.app(add, [q.clone(), i.clone()])]),
            Term::ite(
                b.app(is_empty, [q.clone()]),
                i.clone(),
                b.app(front, [q.clone()]),
            ),
        );
    }
    b.axiom("5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
    b.axiom(
        "6",
        b.app(remove, [b.app(add, [q.clone(), i.clone()])]),
        Term::ite(
            b.app(is_empty, [q.clone()]),
            b.app(new, []),
            b.app(add, [b.app(remove, [q]), i]),
        ),
    );
    b.build().expect("the Queue specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_check::{check_completeness, check_consistency, Coverage};
    use adt_rewrite::Rewriter;

    #[test]
    fn queue_spec_is_sufficiently_complete_and_consistent() {
        let spec = queue_spec();
        let completeness = check_completeness(&spec);
        assert!(
            completeness.is_sufficiently_complete(),
            "{}",
            completeness.prompts()
        );
        let consistency = check_consistency(&spec);
        assert!(consistency.is_consistent(), "{}", consistency.summary());
    }

    #[test]
    fn incomplete_variant_is_flagged_on_front_add() {
        let spec = queue_spec_incomplete();
        let report = check_completeness(&spec);
        assert!(!report.is_sufficiently_complete());
        let front = spec.sig().find_op("FRONT").unwrap();
        let cov = report.for_op(front).unwrap();
        let Coverage::Missing(cases) = cov.coverage() else {
            panic!("expected a missing case");
        };
        assert_eq!(cases.len(), 1);
        let prompt = report.prompts();
        assert!(prompt.contains("FRONT(ADD("), "{prompt}");
    }

    #[test]
    fn fifo_order_is_derivable() {
        let spec = queue_spec();
        let rw = Rewriter::new(&spec);
        let sig = spec.sig();
        let new = sig.apply("NEW", vec![]).unwrap();
        let a = sig.apply("A", vec![]).unwrap();
        let b_ = sig.apply("B", vec![]).unwrap();
        let c = sig.apply("C", vec![]).unwrap();
        // Enqueue A, B, C.
        let q3 = sig
            .apply(
                "ADD",
                vec![
                    sig.apply(
                        "ADD",
                        vec![sig.apply("ADD", vec![new, a.clone()]).unwrap(), b_.clone()],
                    )
                    .unwrap(),
                    c.clone(),
                ],
            )
            .unwrap();
        let front = |t: &adt_core::Term| {
            rw.normalize(&sig.apply("FRONT", vec![t.clone()]).unwrap())
                .unwrap()
        };
        let remove = |t: &adt_core::Term| {
            rw.normalize(&sig.apply("REMOVE", vec![t.clone()]).unwrap())
                .unwrap()
        };
        assert_eq!(front(&q3), a);
        let q2 = remove(&q3);
        assert_eq!(front(&q2), b_);
        let q1 = remove(&q2);
        assert_eq!(front(&q1), c);
    }
}
