//! A finite set over a sorted, deduplicated vector — the canonical-form
//! implementation of the Set specification ([`crate::specs::set_spec`]).
//!
//! Because the representation is canonical (sorted, no duplicates),
//! structural equality *is* abstract equality — the opposite situation
//! from the ring buffer, where Φ⁻¹ is one-to-many. The pair makes the
//! paper's point from both sides.

use std::fmt;

/// A finite set of ordered elements.
///
/// ```
/// use adt_structures::SortedSet;
///
/// let mut s = SortedSet::new();
/// s.insert(3);
/// s.insert(1);
/// s.insert(3); // duplicate, ignored
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(&3));
/// s.remove(&3);
/// assert!(!s.contains(&3));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SortedSet<T> {
    items: Vec<T>, // sorted, deduplicated
}

impl<T: Ord> SortedSet<T> {
    /// The empty set.
    pub fn new() -> Self {
        SortedSet { items: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts an element; returns whether it was new.
    pub fn insert(&mut self, value: T) -> bool {
        match self.items.binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, value);
                true
            }
        }
    }

    /// Removes an element; returns whether it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.items.binary_search(value) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.items.binary_search(value).is_ok()
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        for v in other.iter() {
            out.insert(v.clone());
        }
        out
    }

    /// The intersection of two sets.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        SortedSet {
            items: self
                .items
                .iter()
                .filter(|v| other.contains(v))
                .cloned()
                .collect(),
        }
    }
}

impl<T: Ord> FromIterator<T> for SortedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = SortedSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<T: Ord> Extend<T> for SortedSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SortedSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_representation_makes_equality_structural() {
        // Same elements, wildly different insertion histories.
        let a: SortedSet<u32> = [3, 1, 2, 3, 3, 1].into_iter().collect();
        let b: SortedSet<u32> = [2, 3, 1].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SortedSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(&5));
        assert!(!s.contains(&6));
        assert!(s.remove(&5));
        assert!(!s.remove(&5));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let s: SortedSet<i32> = [5, -1, 3, 0].into_iter().collect();
        let v: Vec<i32> = s.iter().copied().collect();
        assert_eq!(v, vec![-1, 0, 3, 5]);
    }

    #[test]
    fn union_and_intersection() {
        let a: SortedSet<u32> = [1, 2, 3].into_iter().collect();
        let b: SortedSet<u32> = [2, 3, 4].into_iter().collect();
        let u: Vec<u32> = a.union(&b).iter().copied().collect();
        assert_eq!(u, vec![1, 2, 3, 4]);
        let i: Vec<u32> = a.intersection(&b).iter().copied().collect();
        assert_eq!(i, vec![2, 3]);
    }

    #[test]
    fn extend_deduplicates() {
        let mut s: SortedSet<u32> = [1].into_iter().collect();
        s.extend([1, 2, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(format!("{s:?}"), "{1, 2, 3}");
    }
}
