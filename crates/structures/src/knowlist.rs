//! Knows lists and the knows-list symbol table (§4, end).
//!
//! "Assume that the language permits the inheritance of global variables
//! only if they appear in a 'knows list,' which lists, at block entry,
//! all nonlocal variables to be used within the block."

use std::fmt;

use crate::hash_array::{HashArray, ScopeArray};
use crate::ident::{AttrList, Ident};
use crate::symbol_table::ScopeError;

/// The abstract type Knowlist: `CREATE`, `APPEND`, `IS_IN?`.
///
/// ```
/// use adt_structures::{Ident, KnowList};
///
/// let kl = KnowList::create().append(Ident::new("x"));
/// assert!(kl.is_in(&Ident::new("x")));
/// assert!(!kl.is_in(&Ident::new("y")));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KnowList {
    ids: Vec<Ident>,
}

impl KnowList {
    /// The paper's `CREATE`.
    pub fn create() -> Self {
        KnowList::default()
    }

    /// The paper's `APPEND`, builder-style.
    #[must_use]
    pub fn append(mut self, id: Ident) -> Self {
        self.ids.push(id);
        self
    }

    /// The paper's `IS_IN?`.
    pub fn is_in(&self, id: &Ident) -> bool {
        self.ids.iter().any(|k| k.same(id))
    }

    /// Number of listed identifiers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl FromIterator<Ident> for KnowList {
    fn from_iter<I: IntoIterator<Item = Ident>>(iter: I) -> Self {
        KnowList {
            ids: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for KnowList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("knows(")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{id}")?;
        }
        f.write_str(")")
    }
}

/// A symbol table for a language with knows-list visibility: entering a
/// block names exactly the nonlocal identifiers the block may use.
///
/// Retrieval follows the modified axiom 8: a lookup that falls through a
/// block boundary succeeds only if the identifier is on that block's
/// knows list.
#[derive(Debug, Clone)]
pub struct SymbolTableKl<A: ScopeArray<AttrList> = HashArray<AttrList>> {
    /// Innermost last. The outermost block has no knows list.
    blocks: Vec<(Option<KnowList>, A)>,
}

impl<A: ScopeArray<AttrList>> SymbolTableKl<A> {
    /// The paper's `INIT`.
    pub fn init() -> Self {
        SymbolTableKl {
            blocks: vec![(None, A::empty())],
        }
    }

    /// The modified `ENTERBLOCK(symtab, klist)`.
    pub fn enter_block(&mut self, knows: KnowList) {
        self.blocks.push((Some(knows), A::empty()));
    }

    /// `LEAVEBLOCK`, as before.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::LeaveOutermost`] on the outermost block.
    pub fn leave_block(&mut self) -> Result<(), ScopeError> {
        if self.blocks.len() <= 1 {
            return Err(ScopeError::LeaveOutermost);
        }
        self.blocks.pop();
        Ok(())
    }

    /// `ADD`, as before.
    pub fn add(&mut self, id: Ident, attrs: AttrList) {
        let last = self
            .blocks
            .last_mut()
            .expect("at least one scope exists by construction");
        last.1.assign(id, attrs);
    }

    /// `IS_INBLOCK?`, as before.
    pub fn is_in_block(&self, id: &Ident) -> bool {
        self.blocks
            .last()
            .map(|(_, b)| !b.is_undefined(id))
            .unwrap_or(false)
    }

    /// The modified `RETRIEVE`: searches outward, but only through block
    /// boundaries whose knows list mentions `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::Undeclared`] if `id` is not visible — either
    /// undeclared, or hidden by a knows list on the way out.
    pub fn retrieve(&self, id: &Ident) -> Result<&AttrList, ScopeError> {
        for (knows, block) in self.blocks.iter().rev() {
            if let Some(attrs) = block.read(id) {
                return Ok(attrs);
            }
            // Falling through this block's boundary requires permission.
            if let Some(kl) = knows {
                if !kl.is_in(id) {
                    return Err(ScopeError::Undeclared);
                }
            }
        }
        Err(ScopeError::Undeclared)
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }
}

impl<A: ScopeArray<AttrList>> Default for SymbolTableKl<A> {
    fn default() -> Self {
        SymbolTableKl::init()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn attrs(t: &str) -> AttrList {
        AttrList::new().with("type", t)
    }

    #[test]
    fn knowlist_membership() {
        let kl: KnowList = [id("a"), id("b")].into_iter().collect();
        assert!(kl.is_in(&id("a")));
        assert!(kl.is_in(&id("b")));
        assert!(!kl.is_in(&id("c")));
        assert_eq!(kl.len(), 2);
        assert!(!kl.is_empty());
        assert!(KnowList::create().is_empty());
        assert_eq!(kl.to_string(), "knows(a, b)");
    }

    #[test]
    fn knows_list_gates_global_visibility() {
        let mut st: SymbolTableKl = SymbolTableKl::init();
        st.add(id("x"), attrs("integer"));
        st.add(id("y"), attrs("boolean"));
        st.enter_block(KnowList::create().append(id("x")));
        // x is known; y is hidden.
        assert!(st.retrieve(&id("x")).is_ok());
        assert_eq!(st.retrieve(&id("y")), Err(ScopeError::Undeclared));
        // Locals are always visible.
        st.add(id("z"), attrs("real"));
        assert!(st.retrieve(&id("z")).is_ok());
    }

    #[test]
    fn knows_lists_compose_across_nesting() {
        let mut st: SymbolTableKl = SymbolTableKl::init();
        st.add(id("g"), attrs("integer"));
        // Inner block 1 knows g.
        st.enter_block(KnowList::create().append(id("g")));
        assert!(st.retrieve(&id("g")).is_ok());
        // Inner block 2 does NOT list g: even though block 1 could see it,
        // block 2 cannot.
        st.enter_block(KnowList::create());
        assert_eq!(st.retrieve(&id("g")), Err(ScopeError::Undeclared));
        // Inner block 3 lists g, but the chain is still broken at block 2.
        st.enter_block(KnowList::create().append(id("g")));
        assert_eq!(st.retrieve(&id("g")), Err(ScopeError::Undeclared));
        st.leave_block().unwrap();
        st.leave_block().unwrap();
        assert!(st.retrieve(&id("g")).is_ok());
    }

    #[test]
    fn local_shadowing_still_wins() {
        let mut st: SymbolTableKl = SymbolTableKl::init();
        st.add(id("x"), attrs("integer"));
        st.enter_block(KnowList::create().append(id("x")));
        st.add(id("x"), attrs("real"));
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("real"));
        st.leave_block().unwrap();
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("integer"));
    }

    #[test]
    fn boundary_behaviour_matches_the_base_table() {
        let mut st: SymbolTableKl = SymbolTableKl::init();
        assert_eq!(st.leave_block(), Err(ScopeError::LeaveOutermost));
        assert_eq!(st.retrieve(&id("nope")), Err(ScopeError::Undeclared));
        assert_eq!(st.depth(), 1);
        st.enter_block(KnowList::create());
        assert_eq!(st.depth(), 2);
        assert!(!st.is_in_block(&id("nope")));
    }
}
