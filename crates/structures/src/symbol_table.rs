//! The symbol table of a block-structured language: a stack of scope
//! arrays, the paper's §4 representation made into a real compiler
//! component.

use std::fmt;

use crate::hash_array::{HashArray, ScopeArray};
use crate::ident::{AttrList, Ident};

/// Error returned by scope-structure misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeError {
    /// `LEAVEBLOCK(INIT) = error`: attempted to leave the outermost block.
    LeaveOutermost,
    /// `RETRIEVE` found no declaration in any visible scope.
    Undeclared,
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeError::LeaveOutermost => f.write_str("cannot leave the outermost block"),
            ScopeError::Undeclared => {
                f.write_str("identifier is not declared in any visible scope")
            }
        }
    }
}

impl std::error::Error for ScopeError {}

/// A block-structured symbol table, generic over its per-scope array
/// representation (the paper's delayed-representation-choice point).
///
/// The default instantiation uses the paper's chained [`HashArray`]; the
/// `array_representations` benchmark swaps in
/// [`LinearArray`](crate::LinearArray) to measure what the naive choice
/// costs.
///
/// ```
/// use adt_structures::{AttrList, Ident, SymbolTable};
///
/// let mut st: SymbolTable = SymbolTable::init();
/// st.add(Ident::new("x"), AttrList::new().with("type", "integer"));
/// st.enter_block();
/// st.add(Ident::new("x"), AttrList::new().with("type", "real"));
/// assert_eq!(st.retrieve(&Ident::new("x")).unwrap().get("type"), Some("real"));
/// st.leave_block()?;
/// assert_eq!(st.retrieve(&Ident::new("x")).unwrap().get("type"), Some("integer"));
/// # Ok::<(), adt_structures::ScopeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolTable<A: ScopeArray<AttrList> = HashArray<AttrList>> {
    blocks: Vec<A>,
}

impl<A: ScopeArray<AttrList>> SymbolTable<A> {
    /// The paper's `INIT`: a table with one (outermost) scope.
    pub fn init() -> Self {
        SymbolTable {
            blocks: vec![A::empty()],
        }
    }

    /// The paper's `ENTERBLOCK`: opens a new local naming scope.
    pub fn enter_block(&mut self) {
        self.blocks.push(A::empty());
    }

    /// The paper's `LEAVEBLOCK`: discards the most recent scope.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::LeaveOutermost`] when only the outermost
    /// scope remains — the specification's `LEAVEBLOCK(INIT) = error`.
    pub fn leave_block(&mut self) -> Result<(), ScopeError> {
        if self.blocks.len() <= 1 {
            return Err(ScopeError::LeaveOutermost);
        }
        self.blocks.pop();
        Ok(())
    }

    /// The paper's `ADD`, *unchecked*: relies on the structural invariant
    /// that at least one scope exists (Assumption 1 made into a type-level
    /// fact — `init` creates a scope and `leave_block` refuses to drop the
    /// last one, so the check inside `add` would be "needless
    /// inefficiency").
    pub fn add(&mut self, id: Ident, attrs: AttrList) {
        debug_assert!(!self.blocks.is_empty(), "Assumption 1 violated");
        let last = self
            .blocks
            .last_mut()
            .expect("at least one scope exists by construction");
        last.assign(id, attrs);
    }

    /// The paper's *defensive* `ADD` variant: "adding to the
    /// implementation of ADD' a check for this condition and having it
    /// execute an ENTERBLOCK' if necessary". Never needed under the
    /// structural invariant; measured by the `defensive_check` benchmark.
    pub fn add_defensive(&mut self, id: Ident, attrs: AttrList) {
        if self.blocks.is_empty() {
            self.enter_block();
        }
        let last = self.blocks.last_mut().expect("just ensured a scope");
        last.assign(id, attrs);
    }

    /// The paper's `IS_INBLOCK?`: has `id` already been declared in the
    /// *current* scope? ("Used to avoid duplicate declarations.")
    pub fn is_in_block(&self, id: &Ident) -> bool {
        self.blocks
            .last()
            .map(|b| !b.is_undefined(id))
            .unwrap_or(false)
    }

    /// The paper's `RETRIEVE`: the attributes associated with `id` in the
    /// most local scope in which it occurs.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::Undeclared`] if no visible scope declares
    /// `id` — the specification's `RETRIEVE(INIT, id) = error`.
    pub fn retrieve(&self, id: &Ident) -> Result<&AttrList, ScopeError> {
        for block in self.blocks.iter().rev() {
            if let Some(attrs) = block.read(id) {
                return Ok(attrs);
            }
        }
        Err(ScopeError::Undeclared)
    }

    /// Current block-nesting depth (1 = just the outermost scope).
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// A view of the scope arrays, outermost first (used by Φ and the
    /// observational-equality helper).
    pub fn blocks(&self) -> &[A] {
        &self.blocks
    }

    /// Observational equality over a finite identifier universe: two
    /// tables are indistinguishable if they have the same depth and, at
    /// every nesting level reachable by `LEAVEBLOCK`, agree on
    /// `IS_INBLOCK?` and `RETRIEVE` for every identifier in `universe`.
    ///
    /// This is the right equality for the abstract type: the axioms never
    /// let a client see more than this.
    pub fn observationally_eq(&self, other: &Self, universe: &[Ident]) -> bool {
        if self.blocks.len() != other.blocks.len() {
            return false;
        }
        for level in (1..=self.blocks.len()).rev() {
            let a = &self.blocks[..level];
            let b = &other.blocks[..level];
            for id in universe {
                let read = |blocks: &[A]| -> Option<AttrList> {
                    blocks.iter().rev().find_map(|blk| blk.read(id).cloned())
                };
                if read(a) != read(b) {
                    return false;
                }
                let inblock_a = !a[level - 1].is_undefined(id);
                let inblock_b = !b[level - 1].is_undefined(id);
                if inblock_a != inblock_b {
                    return false;
                }
            }
        }
        true
    }
}

impl<A: ScopeArray<AttrList>> Default for SymbolTable<A> {
    fn default() -> Self {
        SymbolTable::init()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_array::LinearArray;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn attrs(t: &str) -> AttrList {
        AttrList::new().with("type", t)
    }

    #[test]
    fn shadowing_and_unwinding() {
        let mut st: SymbolTable = SymbolTable::init();
        st.add(id("x"), attrs("integer"));
        st.add(id("y"), attrs("boolean"));
        st.enter_block();
        st.add(id("x"), attrs("real"));
        // Inner x shadows outer x; y is inherited.
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("real"));
        assert_eq!(st.retrieve(&id("y")).unwrap().get("type"), Some("boolean"));
        st.leave_block().unwrap();
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("integer"));
    }

    #[test]
    fn is_in_block_is_scope_local() {
        let mut st: SymbolTable = SymbolTable::init();
        st.add(id("x"), attrs("integer"));
        assert!(st.is_in_block(&id("x")));
        st.enter_block();
        assert!(!st.is_in_block(&id("x"))); // declared, but not *here*
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("integer"));
    }

    #[test]
    fn boundary_errors_match_the_axioms() {
        let mut st: SymbolTable = SymbolTable::init();
        assert_eq!(st.leave_block(), Err(ScopeError::LeaveOutermost));
        assert_eq!(st.retrieve(&id("ghost")), Err(ScopeError::Undeclared));
        assert_eq!(
            ScopeError::LeaveOutermost.to_string(),
            "cannot leave the outermost block"
        );
    }

    #[test]
    fn depth_tracks_blocks() {
        let mut st: SymbolTable = SymbolTable::init();
        assert_eq!(st.depth(), 1);
        st.enter_block();
        st.enter_block();
        assert_eq!(st.depth(), 3);
        st.leave_block().unwrap();
        assert_eq!(st.depth(), 2);
    }

    #[test]
    fn defensive_add_agrees_with_add_under_the_invariant() {
        let mut a: SymbolTable = SymbolTable::init();
        let mut b: SymbolTable = SymbolTable::init();
        for i in 0..50 {
            let name = format!("v{i}");
            a.add(id(&name), attrs("integer"));
            b.add_defensive(id(&name), attrs("integer"));
        }
        let universe: Vec<Ident> = (0..50).map(|i| id(&format!("v{i}"))).collect();
        assert!(a.observationally_eq(&b, &universe));
    }

    #[test]
    fn bst_backend_slots_in_without_code_changes() {
        // The §5 payoff of a representation-free specification: the
        // storage structure is a type parameter.
        let mut st: SymbolTable<crate::BstArray<AttrList>> = SymbolTable::init();
        st.add(id("x"), attrs("integer"));
        st.enter_block();
        st.add(id("x"), attrs("real"));
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("real"));
        st.leave_block().unwrap();
        assert_eq!(st.retrieve(&id("x")).unwrap().get("type"), Some("integer"));
        assert!(st.is_in_block(&id("x")));
        assert!(!st.is_in_block(&id("y")));
    }

    #[test]
    fn linear_and_hash_backends_agree() {
        let mut h: SymbolTable<HashArray<AttrList>> = SymbolTable::init();
        let mut l: SymbolTable<LinearArray<AttrList>> = SymbolTable::init();
        let script: &[(&str, &str)] = &[
            ("add", "x"),
            ("enter", ""),
            ("add", "y"),
            ("add", "x"),
            ("enter", ""),
            ("add", "z"),
            ("leave", ""),
            ("add", "w"),
        ];
        for (i, (op, name)) in script.iter().enumerate() {
            match *op {
                "add" => {
                    let a = attrs(&format!("t{i}"));
                    h.add(id(name), a.clone());
                    l.add(id(name), a);
                }
                "enter" => {
                    h.enter_block();
                    l.enter_block();
                }
                "leave" => {
                    h.leave_block().unwrap();
                    l.leave_block().unwrap();
                }
                _ => unreachable!(),
            }
        }
        for name in ["x", "y", "z", "w", "missing"] {
            assert_eq!(
                h.retrieve(&id(name)).ok().cloned(),
                l.retrieve(&id(name)).ok().cloned(),
                "disagreement on {name}"
            );
            assert_eq!(h.is_in_block(&id(name)), l.is_in_block(&id(name)));
        }
    }

    #[test]
    fn observational_equality_distinguishes_hidden_history() {
        let universe = [id("x")];
        // Same visible bindings, different shadowed history — equal.
        let mut a: SymbolTable = SymbolTable::init();
        a.add(id("x"), attrs("integer"));
        a.add(id("x"), attrs("real"));
        let mut b: SymbolTable = SymbolTable::init();
        b.add(id("x"), attrs("real"));
        assert!(a.observationally_eq(&b, &universe));
        // Different depth — distinguishable via LEAVEBLOCK.
        let mut c = b.clone();
        c.enter_block();
        assert!(!b.observationally_eq(&c, &universe));
        // Same depth, binding hidden at an outer level — distinguishable.
        let mut d: SymbolTable = SymbolTable::init();
        d.enter_block();
        d.add(id("x"), attrs("real"));
        let mut e: SymbolTable = SymbolTable::init();
        e.add(id("x"), attrs("real"));
        e.enter_block();
        assert!(!d.observationally_eq(&e, &universe));
    }
}
