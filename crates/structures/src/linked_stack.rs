//! The paper's PL/I stack: "a pointer to a list of structures" with a
//! `prev` pointer — here a persistent singly linked stack over `Arc`
//! (atomically counted, so stacks can cross the parallel checker's
//! worker threads).
//!
//! Persistence (operations return a new stack sharing structure with the
//! old) mirrors the algebraic reading, where `PUSH(stk, e)` is a *value*
//! and `stk` remains usable; it also makes `push`/`pop` O(1) with O(1)
//! cloning, exactly like the PL/I pointer version.

use std::fmt;
use std::sync::Arc;

#[derive(Debug)]
struct Node<T> {
    val: T,
    prev: Option<Arc<Node<T>>>,
}

/// A persistent LIFO stack (the paper's `Stack`, axioms 10–16).
///
/// ```
/// use adt_structures::LinkedStack;
///
/// let empty = LinkedStack::new();
/// let one = empty.push(1);
/// let two = one.push(2);
/// assert_eq!(two.top(), Some(&2));
/// assert_eq!(two.pop().unwrap().top(), Some(&1));
/// // Persistence: `one` is untouched by operations on `two`.
/// assert_eq!(one.top(), Some(&1));
/// assert!(empty.is_new());
/// ```
pub struct LinkedStack<T> {
    head: Option<Arc<Node<T>>>,
    len: usize,
}

impl<T> LinkedStack<T> {
    /// The paper's `NEWSTACK`.
    pub fn new() -> Self {
        LinkedStack { head: None, len: 0 }
    }

    /// The paper's `IS_NEWSTACK?`.
    pub fn is_new(&self) -> bool {
        self.head.is_none()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack is empty (alias of [`LinkedStack::is_new`] for
    /// collection-style call sites).
    pub fn is_empty(&self) -> bool {
        self.is_new()
    }

    /// The paper's `PUSH` — the PL/I `allocate … set` plus two stores.
    #[must_use]
    pub fn push(&self, value: T) -> Self {
        LinkedStack {
            head: Some(Arc::new(Node {
                val: value,
                prev: self.head.clone(),
            })),
            len: self.len + 1,
        }
    }

    /// The paper's `POP`, or `None` on the empty stack (the
    /// specification's `error` case).
    #[must_use]
    pub fn pop(&self) -> Option<Self> {
        self.head.as_ref().map(|node| LinkedStack {
            head: node.prev.clone(),
            len: self.len - 1,
        })
    }

    /// The paper's `TOP`, or `None` on the empty stack.
    pub fn top(&self) -> Option<&T> {
        self.head.as_ref().map(|node| &node.val)
    }

    /// Iterates top-down.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            node: self.head.as_deref(),
        }
    }
}

impl<T: Clone> LinkedStack<T> {
    /// The paper's `REPLACE` (axiom 16): swaps the top element, or `None`
    /// on the empty stack.
    ///
    /// The PL/I original mutates `symtab -> val` in place; the persistent
    /// version re-pushes onto the popped remainder, which is what axiom 16
    /// says it means: `PUSH(POP(stk), e)`.
    #[must_use]
    pub fn replace(&self, value: T) -> Option<Self> {
        self.pop().map(|rest| rest.push(value))
    }
}

impl<T> Default for LinkedStack<T> {
    fn default() -> Self {
        LinkedStack::new()
    }
}

impl<T> Drop for LinkedStack<T> {
    fn drop(&mut self) {
        // The derived drop would recurse down the node chain and overflow
        // the thread stack on deep stacks; unwind iteratively instead,
        // stopping at the first node still shared with another handle.
        let mut cur = self.head.take();
        while let Some(rc) = cur {
            match Arc::try_unwrap(rc) {
                Ok(mut node) => cur = node.prev.take(),
                Err(_) => break,
            }
        }
    }
}

impl<T> Clone for LinkedStack<T> {
    fn clone(&self) -> Self {
        LinkedStack {
            head: self.head.clone(),
            len: self.len,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for LinkedStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinkedStack(top → ")?;
        f.debug_list().entries(self.iter()).finish()?;
        f.write_str(")")
    }
}

impl<T: PartialEq> PartialEq for LinkedStack<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for LinkedStack<T> {}

impl<T> FromIterator<T> for LinkedStack<T> {
    /// Builds a stack by pushing each element in turn (the last element of
    /// the iterator ends up on top).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = LinkedStack::new();
        for v in iter {
            s = s.push(v);
        }
        s
    }
}

/// Top-down iterator over a [`LinkedStack`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    node: Option<&'a Node<T>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.node?;
        self.node = node.prev.as_deref();
        Some(&node.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let s: LinkedStack<i32> = (1..=3).collect();
        assert_eq!(s.top(), Some(&3));
        assert_eq!(s.len(), 3);
        let collected: Vec<_> = s.iter().copied().collect();
        assert_eq!(collected, vec![3, 2, 1]);
    }

    #[test]
    fn boundary_cases_are_none() {
        let empty: LinkedStack<i32> = LinkedStack::new();
        assert!(empty.is_new());
        assert!(empty.is_empty());
        assert!(empty.pop().is_none());
        assert!(empty.top().is_none());
        assert!(empty.replace(1).is_none());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn persistence_shares_structure() {
        let base: LinkedStack<i32> = (1..=2).collect();
        let a = base.push(10);
        let b = base.push(20);
        // Divergent futures from the same base.
        assert_eq!(a.top(), Some(&10));
        assert_eq!(b.top(), Some(&20));
        assert_eq!(base.top(), Some(&2));
        assert_eq!(a.pop().unwrap(), base);
        assert_eq!(b.pop().unwrap(), base);
    }

    #[test]
    fn replace_follows_axiom_16() {
        let s: LinkedStack<i32> = (1..=2).collect();
        let replaced = s.replace(99).unwrap();
        // REPLACE(stk, e) = PUSH(POP(stk), e).
        assert_eq!(replaced, s.pop().unwrap().push(99));
        let collected: Vec<_> = replaced.iter().copied().collect();
        assert_eq!(collected, vec![99, 1]);
    }

    #[test]
    fn equality_is_by_content() {
        let a: LinkedStack<i32> = (1..=3).collect();
        let b: LinkedStack<i32> = (1..=3).collect();
        assert_eq!(a, b);
        let c = b.push(4);
        assert_ne!(a, c);
        assert_ne!(a, a.pop().unwrap());
    }

    #[test]
    fn clone_is_cheap_and_independent_handles() {
        let a: LinkedStack<i32> = (1..=100).collect();
        let b = a.clone();
        assert_eq!(a, b);
        let popped = b.pop().unwrap();
        assert_eq!(a.len(), 100);
        assert_eq!(popped.len(), 99);
    }

    #[test]
    fn debug_rendering() {
        let s: LinkedStack<i32> = (1..=2).collect();
        assert_eq!(format!("{s:?}"), "LinkedStack(top → [2, 1])");
    }

    #[test]
    fn deep_stacks_do_not_overflow_on_drop() {
        // Arc chains drop iteratively only if we are careful; the default
        // recursive drop is fine at this scale, but guard the invariant.
        let mut s = LinkedStack::new();
        for i in 0..100_000 {
            s = s.push(i);
        }
        assert_eq!(s.len(), 100_000);
        drop(s);
    }
}
