//! A growable ring-buffer FIFO queue — the efficient implementation of
//! the paper's Queue (§3), built from scratch.

use std::fmt;

/// A first-in–first-out queue over a growable circular buffer.
///
/// The contiguous buffer with wrap-around gives O(1) `add`, `remove` and
/// `front` with amortized O(1) growth — the "efficient implementation"
/// that an algebraic specification deliberately does *not* commit to
/// until the access patterns are known (§5).
///
/// ```
/// use adt_structures::Fifo;
///
/// let mut q = Fifo::new();
/// q.add(1);
/// q.add(2);
/// q.add(3);
/// assert_eq!(q.front(), Some(&1));
/// assert_eq!(q.remove(), Some(1));
/// assert_eq!(q.remove(), Some(2));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Clone)]
pub struct Fifo<T> {
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Fifo {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` elements before
    /// the first reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut buf = Vec::with_capacity(capacity);
        buf.resize_with(capacity, || None);
        Fifo {
            buf,
            head: 0,
            len: 0,
        }
    }

    /// The paper's `IS_EMPTY?`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Current buffer capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The paper's `ADD`: enqueues at the back. O(1) amortized.
    pub fn add(&mut self, value: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let tail = self.wrap(self.head + self.len);
        debug_assert!(self.buf[tail].is_none());
        self.buf[tail] = Some(value);
        self.len += 1;
    }

    /// The paper's `FRONT`: the element that has been queued longest, or
    /// `None` if the queue is empty (the specification's `error` case).
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        self.buf[self.head].as_ref()
    }

    /// The paper's `REMOVE`: dequeues from the front, or `None` if the
    /// queue is empty (the specification's `error` case).
    pub fn remove(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head].take();
        self.head = self.wrap(self.head + 1);
        self.len -= 1;
        value
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            fifo: self,
            offset: 0,
        }
    }

    fn wrap(&self, i: usize) -> usize {
        if self.buf.is_empty() {
            0
        } else {
            i % self.buf.len()
        }
    }

    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(4);
        let mut new_buf = Vec::with_capacity(new_cap);
        new_buf.resize_with(new_cap, || None);
        for (k, slot) in new_buf.iter_mut().enumerate().take(self.len) {
            let idx = self.wrap(self.head + k);
            *slot = self.buf[idx].take();
        }
        self.buf = new_buf;
        self.head = 0;
    }
}

impl<T> Default for Fifo<T> {
    fn default() -> Self {
        Fifo::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for Fifo<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for Fifo<T> {}

impl<T> FromIterator<T> for Fifo<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut q = Fifo::new();
        for v in iter {
            q.add(v);
        }
        q
    }
}

impl<T> Extend<T> for Fifo<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Front-to-back iterator over a [`Fifo`].
#[derive(Debug, Clone)]
pub struct Iter<'a, T> {
    fifo: &'a Fifo<T>,
    offset: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.offset >= self.fifo.len {
            return None;
        }
        let idx = self.fifo.wrap(self.fifo.head + self.offset);
        self.offset += 1;
        self.fifo.buf[idx].as_ref()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.fifo.len - self.offset;
        (remaining, Some(remaining))
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = Fifo::new();
        for i in 0..10 {
            q.add(i);
        }
        for i in 0..10 {
            assert_eq!(q.front(), Some(&i));
            assert_eq!(q.remove(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.remove(), None);
        assert_eq!(q.front(), None);
    }

    #[test]
    fn wraparound_after_interleaved_ops() {
        let mut q = Fifo::with_capacity(4);
        q.add(1);
        q.add(2);
        assert_eq!(q.remove(), Some(1));
        q.add(3);
        q.add(4);
        q.add(5); // head has advanced; tail wraps
        assert_eq!(q.capacity(), 4);
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![2, 3, 4, 5]);
    }

    #[test]
    fn growth_preserves_order_and_contents() {
        let mut q = Fifo::with_capacity(2);
        q.add(1);
        q.add(2);
        assert_eq!(q.remove(), Some(1));
        q.add(3);
        q.add(4); // forces growth with wrapped layout
        q.add(5);
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![2, 3, 4, 5]);
        assert!(q.capacity() >= 4);
    }

    #[test]
    fn equality_is_by_content_not_layout() {
        // Two queues with the same elements but different internal phase.
        let mut a = Fifo::with_capacity(4);
        a.add(1);
        a.add(2);
        let mut b = Fifo::with_capacity(4);
        b.add(0);
        b.add(1);
        b.remove();
        b.add(2);
        assert_ne!(a.head, b.head); // different representations…
        assert_eq!(a, b); // …same abstract value (Φ⁻¹ is one-to-many)
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut q: Fifo<i32> = (1..=3).collect();
        q.extend(4..=5);
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
        assert_eq!(q.iter().len(), 5);
    }

    #[test]
    fn debug_renders_contents() {
        let q: Fifo<i32> = (1..=3).collect();
        assert_eq!(format!("{q:?}"), "[1, 2, 3]");
        let empty: Fifo<i32> = Fifo::default();
        assert_eq!(format!("{empty:?}"), "[]");
    }

    #[test]
    fn stress_against_a_reference_model() {
        // Deterministic pseudo-random interleaving vs a Vec model.
        let mut q = Fifo::new();
        let mut model: Vec<u32> = Vec::new();
        let mut state: u64 = 42;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let op = state >> 60;
            if op < 9 {
                let v = (state >> 10) as u32;
                q.add(v);
                model.push(v);
            } else {
                let got = q.remove();
                let expected = if model.is_empty() {
                    None
                } else {
                    Some(model.remove(0))
                };
                assert_eq!(got, expected);
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.front(), model.first());
        }
        let final_contents: Vec<u32> = q.iter().copied().collect();
        assert_eq!(final_contents, model);
    }
}
