//! The classic *two-stack queue*: a third representation of the Queue
//! specification, built entirely from the paper's own Stack (as
//! [`LinkedStack`]).
//!
//! A queue is a pair of stacks: `back` receives `ADD`s, `front` serves
//! `FRONT`/`REMOVE`; when `front` runs dry, `back` is reversed onto it.
//! The abstraction function is
//!
//! ```text
//! Φ(front, back) = front ++ reverse(back)
//! ```
//!
//! which is *radically* non-injective — the same abstract queue has as
//! many representations as there are ways to split it — making this the
//! strongest stress test of the Φ machinery in the repository
//! (`tests/impl_verification.rs` checks it commutes).

use crate::linked_stack::LinkedStack;

/// A FIFO queue over two LIFO stacks, with amortized O(1) operations.
///
/// ```
/// use adt_structures::TwoStackQueue;
///
/// let mut q = TwoStackQueue::new();
/// q.add(1);
/// q.add(2);
/// assert_eq!(q.remove(), Some(1)); // triggers the internal reversal
/// q.add(3);
/// assert_eq!(q.front(), Some(&2));
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TwoStackQueue<T: Clone> {
    front: LinkedStack<T>,
    back: LinkedStack<T>,
}

impl<T: Clone> TwoStackQueue<T> {
    /// The empty queue.
    pub fn new() -> Self {
        TwoStackQueue {
            front: LinkedStack::new(),
            back: LinkedStack::new(),
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// The paper's `IS_EMPTY?`.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    /// The paper's `ADD`: push onto the back stack. O(1).
    pub fn add(&mut self, value: T) {
        self.back = self.back.push(value);
    }

    /// Moves the back stack onto the front stack (reversing it) if the
    /// front is empty.
    fn settle(&mut self) {
        if self.front.is_empty() && !self.back.is_empty() {
            let mut front = LinkedStack::new();
            let mut back = self.back.clone();
            while let Some(top) = back.top().cloned() {
                front = front.push(top);
                back = back.pop().expect("non-empty by loop condition");
            }
            self.front = front;
            self.back = LinkedStack::new();
        }
    }

    /// The paper's `FRONT`, or `None` when empty.
    pub fn front(&mut self) -> Option<&T> {
        self.settle();
        self.front.top()
    }

    /// The paper's `REMOVE`, or `None` when empty.
    pub fn remove(&mut self) -> Option<T> {
        self.settle();
        let value = self.front.top().cloned()?;
        self.front = self.front.pop().expect("top() just succeeded");
        Some(value)
    }

    /// The abstract value: all elements oldest-first
    /// (`front ++ reverse(back)`), independent of the internal split.
    pub fn abstract_value(&self) -> Vec<T> {
        let mut out: Vec<T> = self.front.iter().cloned().collect();
        let mut back: Vec<T> = self.back.iter().cloned().collect();
        back.reverse();
        out.extend(back);
        out
    }

    /// The internal split, for inspecting the (many-to-one)
    /// representation: `(front top-down, back top-down)`.
    pub fn raw_split(&self) -> (Vec<T>, Vec<T>) {
        (
            self.front.iter().cloned().collect(),
            self.back.iter().cloned().collect(),
        )
    }
}

impl<T: Clone> Default for TwoStackQueue<T> {
    fn default() -> Self {
        TwoStackQueue::new()
    }
}

impl<T: Clone + PartialEq> PartialEq for TwoStackQueue<T> {
    /// Abstract (Φ-) equality: internal splits are unobservable.
    fn eq(&self, other: &Self) -> bool {
        self.abstract_value() == other.abstract_value()
    }
}

impl<T: Clone + Eq> Eq for TwoStackQueue<T> {}

impl<T: Clone> FromIterator<T> for TwoStackQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut q = TwoStackQueue::new();
        for v in iter {
            q.add(v);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_internal_reversals() {
        let mut q: TwoStackQueue<u32> = (1..=5).collect();
        for expected in 1..=5 {
            assert_eq!(q.front(), Some(&expected));
            assert_eq!(q.remove(), Some(expected));
        }
        assert!(q.is_empty());
        assert_eq!(q.remove(), None);
    }

    #[test]
    fn interleaving_across_the_split() {
        let mut q = TwoStackQueue::new();
        q.add(1);
        q.add(2);
        assert_eq!(q.remove(), Some(1)); // back reversed into front
        q.add(3); // lands in back while front holds [2]
        let (front, back) = q.raw_split();
        assert_eq!(front, vec![2]);
        assert_eq!(back, vec![3]);
        assert_eq!(q.abstract_value(), vec![2, 3]);
        assert_eq!(q.remove(), Some(2));
        assert_eq!(q.remove(), Some(3));
    }

    #[test]
    fn phi_identifies_different_splits() {
        // Same abstract queue ⟨1, 2⟩, two different representations.
        let mut a = TwoStackQueue::new();
        a.add(1);
        a.add(2); // all in back
        let mut b = TwoStackQueue::new();
        b.add(1);
        b.add(2);
        let _ = b.front(); // forces the settle: all in front
        assert_ne!(a.raw_split(), b.raw_split());
        assert_eq!(a, b); // Φ-equality
        assert_eq!(a.abstract_value(), vec![1, 2]);
    }

    #[test]
    fn agrees_with_the_fifo_on_a_random_workload() {
        use crate::fifo::Fifo;
        let mut two: TwoStackQueue<u32> = TwoStackQueue::new();
        let mut fifo: Fifo<u32> = Fifo::new();
        let mut state: u64 = 13;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !state.is_multiple_of(3) {
                let v = (state >> 20) as u32;
                two.add(v);
                fifo.add(v);
            } else {
                assert_eq!(two.remove(), fifo.remove());
            }
            assert_eq!(two.len(), fifo.len());
        }
        let via_two = two.abstract_value();
        let via_fifo: Vec<u32> = fifo.iter().copied().collect();
        assert_eq!(via_two, via_fifo);
    }

    #[test]
    fn default_and_len() {
        let q: TwoStackQueue<u8> = TwoStackQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.abstract_value().is_empty());
    }
}
