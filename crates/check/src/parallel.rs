//! A dependency-free parallel work pool and check instrumentation.
//!
//! The ROADMAP's north star is a checker that is "as fast as the hardware
//! allows". Both checks — and `adt-verify`'s axiom-instance evaluation —
//! reduce to the same shape: a list of *independent* work items (operations
//! to analyse, critical pairs to classify, probes to normalize, instances to
//! evaluate) whose *results must come back in input order* so reports stay
//! byte-identical to the sequential path.
//!
//! [`run_indexed`] implements exactly that shape on `std::thread::scope`:
//! workers claim chunks of the item index space from a shared atomic
//! counter (a degenerate but contention-free form of work stealing — idle
//! workers take the next chunk rather than stealing from a victim), tag
//! every result with its item index, and the merge step sorts by index.
//! Determinism therefore does not depend on scheduling: only the *timing*
//! numbers in [`CheckStats`] vary between runs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use adt_core::EngineError;

/// Resolves a requested job count: `0` means "use every available core"
/// (per `std::thread::available_parallelism`), anything else is taken
/// literally.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The outcome of one pool run: in-order results plus timing telemetry.
#[derive(Debug, Clone)]
pub struct PoolRun<R> {
    /// One result per input item, in input order.
    pub results: Vec<R>,
    /// Per-worker busy time (time spent inside the work closure's loop).
    pub busy: Vec<Duration>,
    /// Wall time of the whole run, including spawn and merge.
    pub elapsed: Duration,
}

/// A work item that could not be completed even after its retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// What went wrong (always names the item via the caller's label).
    pub error: EngineError,
    /// Whether the item was retried before being declared failed
    /// (currently always `true`: every failure is preceded by a retry).
    pub retried: bool,
}

/// Per-item outcome of a panic-isolated pool run ([`run_isolated`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome<R> {
    /// The work closure returned normally (possibly only on retry).
    Done(R),
    /// The work closure panicked on every attempt.
    Failed(CheckFailure),
}

impl<R> ItemOutcome<R> {
    /// The result, if the item completed.
    pub fn as_done(&self) -> Option<&R> {
        match self {
            ItemOutcome::Done(r) => Some(r),
            ItemOutcome::Failed(_) => None,
        }
    }

    /// The failure, if the item did not complete.
    pub fn failure(&self) -> Option<&CheckFailure> {
        match self {
            ItemOutcome::Done(_) => None,
            ItemOutcome::Failed(f) => Some(f),
        }
    }

    /// Consumes the outcome, yielding the result if the item completed.
    pub fn into_done(self) -> Option<R> {
        match self {
            ItemOutcome::Done(r) => Some(r),
            ItemOutcome::Failed(_) => None,
        }
    }
}

/// Renders a panic payload for an error report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one item with a single retry: an item whose first attempt panics
/// is attempted once more on the calling thread (a fresh stack); a second
/// panic produces [`ItemOutcome::Failed`].
fn run_one<T, R, W, L>(idx: usize, item: &T, work: &W, label: &L) -> ItemOutcome<R>
where
    W: Fn(usize, &T) -> R,
    L: Fn(usize, &T) -> String,
{
    if let Ok(r) = catch_unwind(AssertUnwindSafe(|| work(idx, item))) {
        return ItemOutcome::Done(r);
    }
    match catch_unwind(AssertUnwindSafe(|| work(idx, item))) {
        Ok(r) => ItemOutcome::Done(r),
        Err(payload) => ItemOutcome::Failed(CheckFailure {
            index: idx,
            error: EngineError::WorkerPanicked {
                item: label(idx, item),
                message: panic_message(payload.as_ref()),
            },
            retried: true,
        }),
    }
}

/// Like [`run_indexed`], but a panicking work item cannot take the pool
/// (or the process) down: every chunk runs under `catch_unwind`, a
/// panicked chunk's unfinished items are re-run item-by-item on the
/// coordinating thread (a fresh stack), and an item that still panics is
/// reported as [`ItemOutcome::Failed`] carrying an
/// [`EngineError::WorkerPanicked`] that names the item via `label`. All
/// other workers keep draining the queue; their results are untouched.
///
/// The `AssertUnwindSafe` is justified: a panicked chunk's partial
/// results are discarded wholesale and its items retried from scratch,
/// and the only state shared across attempts — the rewriter's sharded
/// memo — recovers poisoned shards explicitly (`PoisonError::into_inner`)
/// and only ever caches context-free facts.
pub fn run_isolated<T, R, W, L>(jobs: usize, items: &[T], work: W, label: L) -> PoolRun<ItemOutcome<R>>
where
    T: Sync,
    R: Send,
    W: Fn(usize, &T) -> R + Sync,
    L: Fn(usize, &T) -> String,
{
    let started = Instant::now();
    let jobs = effective_jobs(jobs).min(items.len()).max(1);
    if jobs == 1 {
        let t0 = Instant::now();
        let results = items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t, &work, &label))
            .collect();
        let busy = vec![t0.elapsed()];
        return PoolRun {
            results,
            busy,
            elapsed: started.elapsed(),
        };
    }

    // Chunk size balances claim overhead against load balance: aim for a
    // few claims per worker, but never below one item.
    let chunk = (items.len() / (jobs * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let work = &work;
    let per_worker: Vec<(Vec<(usize, R)>, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let t0 = Instant::now();
                    let mut out = Vec::new();
                    loop {
                        let base = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if base >= items.len() {
                            break;
                        }
                        let end = (base + chunk).min(items.len());
                        // One catch_unwind per chunk: a panic forfeits the
                        // chunk's partial results (recovered below) but the
                        // worker itself survives to claim the next chunk.
                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                            let mut got = Vec::new();
                            for (idx, item) in items.iter().enumerate().take(end).skip(base) {
                                got.push((idx, work(idx, item)));
                            }
                            got
                        }));
                        if let Ok(got) = attempt {
                            out.extend(got);
                        }
                    }
                    (out, t0.elapsed())
                })
            })
            .collect();
        // A worker thread can only die outside the catch_unwind (e.g. an
        // allocation failure building its result vector); its items show
        // up as missing below and are recovered inline, so a failed join
        // costs results nothing.
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });

    let busy: Vec<Duration> = per_worker.iter().map(|(_, d)| *d).collect();
    let mut slots: Vec<Option<ItemOutcome<R>>> = (0..items.len()).map(|_| None).collect();
    for (idx, r) in per_worker.into_iter().flat_map(|(results, _)| results) {
        slots[idx] = Some(ItemOutcome::Done(r));
    }
    // Items lost to a panicked chunk (or a dead worker) are re-run on
    // this thread, each with the standard single retry.
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| match slot {
            Some(done) => done,
            None => run_one(idx, &items[idx], work, &label),
        })
        .collect();
    PoolRun {
        results,
        busy,
        elapsed: started.elapsed(),
    }
}

/// Runs `work(index, &items[index])` for every item and returns the
/// results **in item order**, fanning the items across `jobs` worker
/// threads (resolved by [`effective_jobs`]; capped at the item count).
///
/// Workers claim fixed-size chunks of the index space from an atomic
/// cursor, so items are processed at most once and no queue allocation or
/// locking is needed. With `jobs <= 1` — or a single item — the work runs
/// on the calling thread, making the sequential path literally the same
/// code minus the spawn.
///
/// Built on [`run_isolated`]: a transient panic is absorbed by the retry.
///
/// # Panics
///
/// Panics (on the calling thread, after all other items finish) if an
/// item panics on every attempt.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], work: F) -> PoolRun<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run = run_isolated(jobs, items, work, |i, _| format!("item #{i}"));
    let results = run
        .results
        .into_iter()
        .map(|outcome| match outcome {
            ItemOutcome::Done(r) => r,
            ItemOutcome::Failed(f) => panic!("{}", f.error),
        })
        .collect();
    PoolRun {
        results,
        busy: run.busy,
        elapsed: run.elapsed,
    }
}

/// Observability counters for one checking run.
///
/// Everything here is *telemetry*: two runs of the same check produce
/// identical reports but different `CheckStats` timings. Comparisons of
/// checker output must therefore never include the stats — which is why
/// the report types expose them through a getter instead of folding them
/// into `PartialEq`.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Independent work items processed (ops, pairs, probes, instances).
    pub items: usize,
    /// Critical pairs classified (consistency checks only).
    pub pairs_checked: usize,
    /// Ground probes normalized (consistency checks only).
    pub probes_run: usize,
    /// Rewrite steps performed by instrumented normalizations.
    pub rewrite_steps: u64,
    /// Wall time of the parallel phase(s).
    pub elapsed: Duration,
    /// Per-worker busy time.
    pub busy: Vec<Duration>,
    /// Per-operation analysis wall time (completeness checks only), in
    /// operation-declaration order.
    pub op_times: Vec<(String, Duration)>,
    /// One line per item the retry ladder re-ran ("… rescued at rung 2
    /// (fuel 16000)"), in item order. Deterministic for a given
    /// configuration, unlike the timing fields.
    pub retries: Vec<String>,
}

impl CheckStats {
    /// Folds a pool run's telemetry into the stats.
    pub fn absorb(&mut self, run_busy: &[Duration], run_elapsed: Duration, items: usize) {
        self.items += items;
        self.elapsed += run_elapsed;
        for (i, b) in run_busy.iter().enumerate() {
            if i < self.busy.len() {
                self.busy[i] += *b;
            } else {
                self.busy.push(*b);
            }
        }
        self.jobs = self.jobs.max(run_busy.len());
    }

    /// Fraction of `jobs × elapsed` the workers spent busy, in `0.0..=1.0`.
    /// Near 1.0 means the fan-out kept every worker fed.
    pub fn utilization(&self) -> f64 {
        if self.jobs == 0 || self.elapsed.is_zero() {
            return 0.0;
        }
        let total_busy: Duration = self.busy.iter().sum();
        (total_busy.as_secs_f64() / (self.elapsed.as_secs_f64() * self.jobs as f64)).min(1.0)
    }

    /// Renders the stats in the `adt check --stats` format.
    pub fn render(&self) -> String {
        let mut out = format!(
            "stats: {} job(s), {} item(s), {} pair(s), {} probe(s), {} rewrite step(s)\n",
            self.jobs, self.items, self.pairs_checked, self.probes_run, self.rewrite_steps
        );
        out.push_str(&format!(
            "stats: wall {:?}, utilization {:.0}%\n",
            self.elapsed,
            self.utilization() * 100.0
        ));
        for (op, t) in &self.op_times {
            out.push_str(&format!("stats:   {op}: {t:?}\n"));
        }
        for line in &self.retries {
            out.push_str(&format!("stats: retry {line}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [1, 2, 4, 7] {
            let run = run_indexed(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
            assert_eq!(run.results, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let run = run_indexed::<usize, usize, _>(4, &[], |_, &x| x);
        assert!(run.results.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let run = run_indexed(8, &[41], |_, &x| x + 1);
        assert_eq!(run.results, vec![42]);
        assert_eq!(run.busy.len(), 1, "one item needs one worker");
    }

    #[test]
    fn jobs_zero_means_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn parallel_equals_sequential_on_heavier_work() {
        let items: Vec<u64> = (0..256).collect();
        let work = |_: usize, &x: &u64| -> u64 {
            // A little arithmetic so workers actually interleave.
            (0..x % 97).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let seq = run_indexed(1, &items, work);
        let par = run_indexed(4, &items, work);
        assert_eq!(seq.results, par.results);
    }

    #[test]
    fn utilization_is_bounded() {
        let items: Vec<usize> = (0..64).collect();
        let run = run_indexed(4, &items, |_, &x| x);
        let mut stats = CheckStats::default();
        stats.absorb(&run.busy, run.elapsed, items.len());
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        assert_eq!(stats.items, 64);
    }

    #[test]
    fn isolated_pool_contains_a_deterministic_panic() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 4] {
            let run = run_isolated(
                jobs,
                &items,
                |_, &x| {
                    assert!(x != 37, "injected fault on 37");
                    x * 2
                },
                |i, _| format!("probe #{i}"),
            );
            assert_eq!(run.results.len(), items.len());
            for (i, outcome) in run.results.iter().enumerate() {
                if i == 37 {
                    let f = outcome.failure().expect("item 37 must fail");
                    assert_eq!(f.index, 37);
                    assert!(f.retried);
                    assert!(f.error.to_string().contains("probe #37"), "{}", f.error);
                } else {
                    assert_eq!(outcome.as_done(), Some(&(i * 2)), "jobs={jobs} item {i}");
                }
            }
        }
    }

    #[test]
    fn isolated_pool_retries_transient_panics() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<usize> = (0..8).collect();
        let tripped = AtomicBool::new(false);
        let run = run_isolated(
            4,
            &items,
            |_, &x| {
                if x == 3 && !tripped.swap(true, Ordering::SeqCst) {
                    panic!("transient fault");
                }
                x + 1
            },
            |i, _| format!("item #{i}"),
        );
        // The transient panic is absorbed by the retry: every item done.
        let done: Vec<usize> = run.results.into_iter().filter_map(ItemOutcome::into_done).collect();
        assert_eq!(done, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_survives_a_transient_panic() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<usize> = (0..64).collect();
        let tripped = AtomicBool::new(false);
        let run = run_indexed(2, &items, |_, &x| {
            if x == 11 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient fault");
            }
            x
        });
        assert_eq!(run.results, items);
    }

    #[test]
    fn render_mentions_jobs_and_items() {
        let mut stats = CheckStats {
            jobs: 4,
            items: 10,
            ..CheckStats::default()
        };
        stats.op_times.push(("FRONT".into(), Duration::from_millis(2)));
        let text = stats.render();
        assert!(text.contains("4 job(s)"), "{text}");
        assert!(text.contains("FRONT"), "{text}");
    }
}
