//! Structural lints beyond completeness and consistency.
//!
//! The paper's method works because "the relations among the operations
//! are … explicitly stated"; these lints flag relations that are stated
//! *twice* — overlapping left-hand sides — which is legal but usually a
//! specification smell: either the axioms are redundant (same meaning) or
//! the rule order silently decides which one fires.

use adt_core::{unify, Spec, Subst, Term, VarId};

/// A pair of axioms whose left-hand sides overlap at the root: some term
/// is matched by both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapPair {
    /// Label of the earlier axiom (which the rewriter tries first).
    pub first: String,
    /// Label of the later axiom (shadowed wherever both match).
    pub second: String,
    /// Whether the later axiom is *fully* shadowed: every term it matches
    /// is already matched by the earlier one (it can never fire).
    pub fully_shadowed: bool,
}

/// Finds all pairs of same-head axioms whose left-hand sides overlap.
///
/// Overlap is detected by unification after renaming apart; full
/// shadowing by a one-way match of the earlier pattern onto the later
/// one.
pub fn overlapping_axioms(spec: &Spec) -> Vec<OverlapPair> {
    // Rename-apart table: map every variable of the second axiom to a
    // fresh variable in an extended signature.
    let mut sig = spec.sig().clone();
    let mut renaming = Subst::new();
    let var_ids: Vec<VarId> = sig.var_ids().collect();
    for v in var_ids {
        let name = format!("{}~2", sig.var(v).name());
        let sort = sig.var(v).sort();
        if let Ok(fresh) = sig.add_var(&name, sort) {
            renaming.bind(v, Term::Var(fresh));
        }
    }

    let axioms = spec.axioms();
    let mut out = Vec::new();
    for i in 0..axioms.len() {
        for j in (i + 1)..axioms.len() {
            let (a, b) = (&axioms[i], &axioms[j]);
            if a.head_op() != b.head_op() || a.head_op().is_none() {
                continue;
            }
            let b_lhs = renaming.apply(b.lhs());
            if unify(a.lhs(), &b_lhs).is_none() {
                continue;
            }
            // The second axiom is dead iff the first's pattern is at
            // least as general (matches everything the second matches).
            let fully_shadowed = adt_core::match_pattern(a.lhs(), &b_lhs).is_some();
            out.push(OverlapPair {
                first: a.label().to_owned(),
                second: b.label().to_owned(),
                fully_shadowed,
            });
        }
    }
    out
}

/// A recursion-shape warning for one axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecursionWarning {
    /// The right side contains the left side verbatim: rewriting loops
    /// unconditionally (e.g. `F(x) = F(x)`).
    DefiniteLoop {
        /// Label of the axiom.
        axiom: String,
    },
    /// The left side inspects no constructor (all arguments are bare
    /// variables) while the right side recurses through the same
    /// operation: ground rewriting may terminate, but *symbolic*
    /// rewriting of the operation applied to variables diverges. The fix
    /// is the case-by-constructor form (compare `RETRIEVE'` in
    /// `specs/symboltable_rep.adt`).
    GeneralRecursion {
        /// Label of the axiom.
        axiom: String,
        /// Name of the recursive operation.
        op: String,
    },
}

impl std::fmt::Display for RecursionWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecursionWarning::DefiniteLoop { axiom } => write!(
                f,
                "axiom `{axiom}` loops: its right side contains its left side verbatim"
            ),
            RecursionWarning::GeneralRecursion { axiom, op } => write!(
                f,
                "axiom `{axiom}` defines `{op}` by general recursion (no constructor on \
                 the left, `{op}` on the right); symbolic rewriting may diverge — prefer \
                 one axiom per constructor case"
            ),
        }
    }
}

/// Flags axioms whose shape endangers termination of rewriting: definite
/// loops (right side contains the left) and general recursive
/// definitions (variable-only left side with head-recursion on the
/// right).
pub fn recursion_warnings(spec: &Spec) -> Vec<RecursionWarning> {
    let mut out = Vec::new();
    for ax in spec.axioms() {
        if ax.rhs().contains(ax.lhs()) {
            out.push(RecursionWarning::DefiniteLoop {
                axiom: ax.label().to_owned(),
            });
            continue;
        }
        let Some(head) = ax.head_op() else { continue };
        let Term::App(_, args) = ax.lhs() else {
            continue;
        };
        let all_vars = args.iter().all(|a| matches!(a, Term::Var(_)));
        if !all_vars {
            continue;
        }
        let head_recursive = ax
            .rhs()
            .subterms()
            .iter()
            .any(|(_, t)| matches!(t, Term::App(op, _) if *op == head));
        if head_recursive {
            out.push(RecursionWarning::GeneralRecursion {
                axiom: ax.label().to_owned(),
                op: spec.sig().op(head).name().to_owned(),
            });
        }
    }
    out
}

/// Renders [`overlapping_axioms`] results as human-readable warnings.
pub fn overlap_warnings(spec: &Spec) -> Vec<String> {
    overlapping_axioms(spec)
        .into_iter()
        .map(|p| {
            if p.fully_shadowed {
                format!(
                    "axiom `{}` can never fire: axiom `{}` matches everything it matches",
                    p.second, p.first
                )
            } else {
                format!(
                    "axioms `{}` and `{}` overlap: rule order decides which fires \
                     on their common instances",
                    p.first, p.second
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    #[test]
    fn orthogonal_axioms_produce_no_warnings() {
        let mut b = SpecBuilder::new("Nat");
        let s = b.sort("Nat");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let x = Term::Var(b.var("x", s));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [x])]), ff);
        let spec = b.build().unwrap();
        assert!(overlapping_axioms(&spec).is_empty());
    }

    #[test]
    fn a_dead_axiom_is_flagged_as_fully_shadowed() {
        let mut b = SpecBuilder::new("S");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("general", b.app(f, [x]), b.app(c, []));
        b.axiom("specific", b.app(f, [b.app(c, [])]), b.app(c, []));
        let spec = b.build().unwrap();
        let pairs = overlapping_axioms(&spec);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].first, "general");
        assert_eq!(pairs[0].second, "specific");
        assert!(pairs[0].fully_shadowed);
        let warnings = overlap_warnings(&spec);
        assert!(warnings[0].contains("can never fire"), "{warnings:?}");
    }

    #[test]
    fn partial_overlap_is_flagged_without_shadowing() {
        // F(C, x) and F(x, C) overlap only on F(C, C).
        let mut b = SpecBuilder::new("S");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let f = b.op("F", [s, s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("left", b.app(f, [b.app(c, []), x.clone()]), b.app(d, []));
        b.axiom("right", b.app(f, [x, b.app(c, [])]), b.app(d, []));
        let spec = b.build().unwrap();
        let pairs = overlapping_axioms(&spec);
        assert_eq!(pairs.len(), 1);
        assert!(!pairs[0].fully_shadowed);
        assert!(overlap_warnings(&spec)[0].contains("rule order"));
    }

    #[test]
    fn definite_loops_are_flagged() {
        let mut b = SpecBuilder::new("Loop");
        let s = b.sort("S");
        b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("loop", b.app(f, [x.clone()]), b.app(f, [x]));
        let spec = b.build().unwrap();
        let warnings = recursion_warnings(&spec);
        assert_eq!(warnings.len(), 1);
        assert!(matches!(warnings[0], RecursionWarning::DefiniteLoop { .. }));
        assert!(warnings[0].to_string().contains("verbatim"));
    }

    #[test]
    fn general_recursion_is_flagged_and_case_form_is_not() {
        // G(x) = H(G(K(x))) — general recursion through G.
        let mut b = SpecBuilder::new("Rec");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let k = b.ctor("K", [s], s);
        let g = b.op("G", [s], s);
        let h = b.op("H", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom(
            "general",
            b.app(g, [x.clone()]),
            b.app(h, [b.app(g, [b.app(k, [x.clone()])])]),
        );
        // The case-by-constructor form of the same idea is fine.
        b.axiom("case_c", b.app(h, [b.app(c, [])]), b.app(c, []));
        b.axiom("case_k", b.app(h, [b.app(k, [x.clone()])]), b.app(h, [x]));
        let spec = b.build().unwrap();
        let warnings = recursion_warnings(&spec);
        assert_eq!(warnings.len(), 1);
        match &warnings[0] {
            RecursionWarning::GeneralRecursion { axiom, op } => {
                assert_eq!(axiom, "general");
                assert_eq!(op, "G");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn nonrecursive_general_rules_pass() {
        // REPLACE-style: variable-only left side, but no self-recursion.
        let mut b = SpecBuilder::new("Ok");
        let s = b.sort("S");
        let c = b.ctor("C", [s], s);
        b.ctor("D", [], s);
        let r = b.op("R", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("r", b.app(r, [x.clone()]), b.app(c, [x]));
        let spec = b.build().unwrap();
        assert!(recursion_warnings(&spec).is_empty());
    }

    #[test]
    fn the_paper_specs_are_overlap_free_except_general_rules() {
        // A spot check used by the shipped-spec hygiene test: the Queue
        // axioms never overlap.
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        b.ctor("A", [], item);
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let front = b.op("FRONT", [queue], item);
        let q = Term::Var(b.var("q", queue));
        let i = Term::Var(b.var("i", item));
        b.axiom("3", b.app(front, [b.app(new, [])]), Term::Error(item));
        b.axiom("4", b.app(front, [b.app(add, [q, i.clone()])]), i);
        let spec = b.build().unwrap();
        assert!(overlapping_axioms(&spec).is_empty());
    }
}
