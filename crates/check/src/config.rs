//! Shared configuration for the checking entry points.

use adt_core::Fuel;

use crate::fault::FaultSpec;

/// Configuration shared by both checks: worker count, resource budget,
/// and (for testing the engine itself) a fault-injection plan.
///
/// The default — one job, default fuel, no faults — reproduces the
/// historical sequential behaviour byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Worker threads (`0` = every available core).
    pub jobs: usize,
    /// Resource budget applied to each work item (per normalization for
    /// consistency probes; as a case-partition budget for completeness
    /// analysis).
    pub fuel: Fuel,
    /// Faults to inject, if any. Only test harnesses set this.
    pub faults: Option<FaultSpec>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            jobs: 1,
            fuel: Fuel::default(),
            faults: None,
        }
    }
}

impl CheckConfig {
    /// A configuration with `jobs` workers and defaults otherwise.
    pub fn jobs(jobs: usize) -> Self {
        CheckConfig {
            jobs,
            ..CheckConfig::default()
        }
    }

    /// Replaces the resource budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.fuel = fuel;
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}
