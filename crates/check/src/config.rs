//! Shared configuration for the checking entry points.

use adt_core::{Fuel, Supervisor};

use crate::fault::FaultSpec;

/// The adaptive retry ladder: items whose first pass ends in *step*
/// exhaustion are re-run with geometrically escalating fuel.
///
/// Rung `r` (1-based) gets `base.steps * factor^r`, capped at
/// `cap_steps`; escalation stops as soon as a rung no longer raises the
/// budget. Retry decisions are made *per item inside its worker*, so
/// the final verdict of every item depends only on the item and the
/// configuration — reports stay byte-identical at any `--jobs`.
///
/// Only [`adt_core::ExhaustionCause::Steps`] is retried: a depth bound
/// is not raised by the ladder, a wall-clock deadline will not be less
/// expired on a second attempt, and a supervisor interrupt means the
/// run itself is over. Exhaust-faulted items (see
/// [`FaultSpec`]) are pinned at rung 0 — injected sabotage must not be
/// rescued by escalation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryFuel {
    /// Geometric escalation factor per rung.
    pub factor: u64,
    /// Maximum number of retry rungs after the first attempt.
    pub rungs: u32,
    /// Absolute step-budget ceiling the ladder never exceeds.
    pub cap_steps: u64,
}

impl Default for RetryFuel {
    fn default() -> Self {
        RetryFuel {
            factor: 4,
            rungs: 3,
            cap_steps: 64_000_000,
        }
    }
}

impl RetryFuel {
    /// The escalated budget for 1-based rung `rung` over `base`
    /// (rung 0 is the first attempt: `base` itself). Depth and deadline
    /// bounds are kept; only steps escalate.
    #[must_use]
    pub fn fuel_at(&self, base: Fuel, rung: u32) -> Fuel {
        let mut fuel = base;
        fuel.steps = base
            .steps
            .saturating_mul(self.factor.saturating_pow(rung))
            .min(self.cap_steps.max(base.steps));
        fuel
    }

    /// The ladder of (rung, budget) pairs that actually raise the step
    /// budget over the previous attempt — empty when `base` already
    /// sits at the cap.
    #[must_use]
    pub fn ladder(&self, base: Fuel) -> Vec<(u32, Fuel)> {
        let mut out = Vec::new();
        let mut prev = base.steps;
        for rung in 1..=self.rungs {
            let fuel = self.fuel_at(base, rung);
            if fuel.steps <= prev {
                break;
            }
            prev = fuel.steps;
            out.push((rung, fuel));
        }
        out
    }

    /// Parses a `key=value` plan like `"factor=4,rungs=3,cap=1000000"`.
    /// Every key is optional; omitted keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, duplicate
    /// keys, or unparsable numbers.
    pub fn parse(text: &str) -> Result<RetryFuel, String> {
        let mut retry = RetryFuel::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("expected key=value, got `{part}`"));
            };
            let (key, value) = (key.trim(), value.trim());
            if seen.contains(&key) {
                return Err(format!("duplicate retry key `{key}`"));
            }
            seen.push(key);
            let number: u64 = value
                .parse()
                .map_err(|_| format!("`{value}` is not a number (for `{key}`)"))?;
            match key {
                "factor" => {
                    if number < 2 {
                        return Err("factor must be at least 2".to_owned());
                    }
                    retry.factor = number;
                }
                "rungs" => {
                    retry.rungs =
                        u32::try_from(number).map_err(|_| "rungs is out of range".to_owned())?;
                }
                "cap" => {
                    if number == 0 {
                        return Err("cap must be at least 1".to_owned());
                    }
                    retry.cap_steps = number;
                }
                other => return Err(format!("unknown retry key `{other}`")),
            }
        }
        Ok(retry)
    }
}

/// Configuration shared by both checks: worker count, resource budget,
/// retry ladder, supervision, and (for testing the engine itself) a
/// fault-injection plan.
///
/// The default — one job, default fuel, no retry, no supervision, no
/// faults — reproduces the historical sequential behaviour byte for
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Worker threads (`0` = every available core).
    pub jobs: usize,
    /// Resource budget applied to each work item (per normalization for
    /// consistency probes; as a case-partition budget for completeness
    /// analysis).
    pub fuel: Fuel,
    /// Adaptive fuel escalation for step-exhausted items, if enabled.
    pub retry: Option<RetryFuel>,
    /// Cooperative supervision (deadline / cancellation) polled by
    /// every work item and every normalization. Inert by default.
    pub supervisor: Supervisor,
    /// Faults to inject, if any. Only test harnesses set this.
    pub faults: Option<FaultSpec>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            jobs: 1,
            fuel: Fuel::default(),
            retry: None,
            supervisor: Supervisor::none(),
            faults: None,
        }
    }
}

impl CheckConfig {
    /// A configuration with `jobs` workers and defaults otherwise.
    pub fn jobs(jobs: usize) -> Self {
        CheckConfig {
            jobs,
            ..CheckConfig::default()
        }
    }

    /// Replaces the resource budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables the adaptive retry ladder.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryFuel) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Installs a supervisor (deadline / cancellation).
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_escalates_geometrically_to_the_cap() {
        let retry = RetryFuel {
            factor: 4,
            rungs: 3,
            cap_steps: 1_000,
        };
        let ladder = retry.ladder(Fuel::steps(100));
        let steps: Vec<u64> = ladder.iter().map(|(_, f)| f.steps).collect();
        assert_eq!(steps, vec![400, 1_000]);
        assert_eq!(ladder[0].0, 1);
        assert_eq!(ladder[1].0, 2);
    }

    #[test]
    fn ladder_is_empty_when_base_is_at_the_cap() {
        let retry = RetryFuel {
            factor: 4,
            rungs: 3,
            cap_steps: 100,
        };
        assert!(retry.ladder(Fuel::steps(100)).is_empty());
        // A base above the cap is left alone, never *reduced*.
        assert!(retry.ladder(Fuel::steps(500)).is_empty());
        assert_eq!(retry.fuel_at(Fuel::steps(500), 1).steps, 500);
    }

    #[test]
    fn ladder_keeps_depth_and_deadline_bounds() {
        let base = Fuel::steps(10).with_max_depth(7);
        let escalated = RetryFuel::default().fuel_at(base, 2);
        assert_eq!(escalated.steps, 160);
        assert_eq!(escalated.max_depth, Some(7));
    }

    #[test]
    fn parse_accepts_partial_plans_and_rejects_junk() {
        let retry = RetryFuel::parse("factor=8,rungs=2").unwrap();
        assert_eq!(retry.factor, 8);
        assert_eq!(retry.rungs, 2);
        assert_eq!(retry.cap_steps, RetryFuel::default().cap_steps);
        assert_eq!(RetryFuel::parse("").unwrap(), RetryFuel::default());
        assert!(RetryFuel::parse("factor=1").is_err());
        assert!(RetryFuel::parse("cap=0").is_err());
        assert!(RetryFuel::parse("zorp=3").is_err());
        assert!(RetryFuel::parse("rungs=1,rungs=2").is_err());
        assert!(RetryFuel::parse("rungs").is_err());
        assert!(RetryFuel::parse("rungs=many").is_err());
    }
}
