//! Consistency checking.
//!
//! "If any two of these [statements] are contradictory, the axiomatization
//! is inconsistent." (paper, §3.) Operationally: the axioms must never
//! rewrite one ground term to two distinguishable values (`true` and
//! `false`, two different constructor terms, `error` and a non-error).
//!
//! Two complementary analyses are used:
//!
//! 1. **Critical-pair analysis** (via [`adt_rewrite::critical_pairs`]):
//!    every overlap of two left-hand sides must join. A diverged pair with
//!    two distinguishable normal forms is a proof of inconsistency.
//! 2. **Randomized ground probing**: sample ground terms, enumerate every
//!    one-step reduct (any rule at any position), normalize each, and
//!    compare. This catches contradictions that only manifest on
//!    particular value combinations.

use std::collections::HashSet;
use std::sync::Arc;

use adt_core::{
    display, match_pattern, DetRng, EngineError, ExhaustionCause, Fuel, FuelSpent, Interrupt, OpId,
    Session, Signature, SortId, Spec, Term, TermId,
};
use adt_rewrite::{
    classify_superposition, superpositions, CriticalPair, PairStatus, RewriteError, Rewriter,
    Superposition,
};

use crate::config::CheckConfig;
use crate::fault::ArmedFaults;
use crate::parallel::{run_isolated, CheckFailure, CheckStats, ItemOutcome};

/// Evidence of an inconsistency: one term, two distinguishable values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contradiction {
    /// The term that reduces both ways.
    pub peak: Term,
    /// First normal form.
    pub left_nf: Term,
    /// Second normal form.
    pub right_nf: Term,
    /// Where the evidence came from (`"critical-pair"` or `"ground-probe"`).
    pub source: &'static str,
}

/// Overall verdict of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyVerdict {
    /// All critical pairs join and no probe diverged: no inconsistency is
    /// derivable by the analyses performed.
    Consistent,
    /// A contradiction was exhibited.
    Inconsistent,
    /// No contradiction was found, but some critical pairs or probes ran
    /// out of fuel before reaching a normal form: the analyses terminated
    /// with a *partial* verdict instead of hanging on a (possibly
    /// divergent) axiom set.
    Exhausted,
    /// No contradiction was found, but the run's supervisor (cancellation
    /// or wall-clock deadline) stopped some items before they produced a
    /// verdict. Like [`ConsistencyVerdict::Exhausted`], a partial result —
    /// the specification was not proved wrong.
    Interrupted,
    /// No contradiction was found, but some critical pairs neither joined
    /// nor produced distinguishable values (e.g. symbolic divergence), so
    /// consistency could not be confirmed.
    Unknown,
}

/// A ground probe whose normalization ran out of fuel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustedProbe {
    /// The probed term.
    pub term: Term,
    /// The fuel receipt from the first exhausted normalization.
    pub spent: FuelSpent,
}

/// Configuration of the randomized ground probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Number of random ground terms to sample.
    pub samples: usize,
    /// Maximum constructor depth of sampled terms.
    pub max_depth: usize,
    /// RNG seed (probes are deterministic given the seed).
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            samples: 200,
            max_depth: 5,
            seed: 0x0AD7_1977,
        }
    }
}

/// The result of a consistency check.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    verdict: ConsistencyVerdict,
    contradictions: Vec<Contradiction>,
    unresolved_pairs: usize,
    pairs_checked: usize,
    probes_run: usize,
    exhausted_probes: Vec<ExhaustedProbe>,
    exhausted_pairs: usize,
    interrupted_items: usize,
    failures: Vec<CheckFailure>,
    /// Deterministic per-pair verdict strings, in superposition order
    /// (fault-isolation harnesses compare these index-wise).
    pair_verdicts: Vec<String>,
    /// Deterministic per-probe verdict strings, in sample order.
    probe_verdicts: Vec<String>,
    stats: CheckStats,
    /// Specification copy the evidence terms are rendered against.
    spec: Spec,
}

impl ConsistencyReport {
    /// The verdict.
    pub fn verdict(&self) -> &ConsistencyVerdict {
        &self.verdict
    }

    /// Whether the specification passed.
    pub fn is_consistent(&self) -> bool {
        self.verdict == ConsistencyVerdict::Consistent
    }

    /// All contradictions found.
    pub fn contradictions(&self) -> &[Contradiction] {
        &self.contradictions
    }

    /// Number of critical pairs examined.
    pub fn pairs_checked(&self) -> usize {
        self.pairs_checked
    }

    /// Number of critical pairs that neither joined nor refuted.
    pub fn unresolved_pairs(&self) -> usize {
        self.unresolved_pairs
    }

    /// Number of ground probes executed.
    pub fn probes_run(&self) -> usize {
        self.probes_run
    }

    /// Probes whose normalization ran out of fuel (divergence surfaced
    /// as a partial verdict instead of a hang).
    pub fn exhausted_probes(&self) -> &[ExhaustedProbe] {
        &self.exhausted_probes
    }

    /// Number of critical pairs whose classification ran out of fuel
    /// (after any configured retry ladder).
    pub fn exhausted_pairs(&self) -> usize {
        self.exhausted_pairs
    }

    /// Number of items (pairs and probes) the supervisor stopped before
    /// they produced a verdict.
    pub fn interrupted_items(&self) -> usize {
        self.interrupted_items
    }

    /// Work items that failed outright (worker panicked twice). The rest
    /// of the report is unaffected by these items.
    pub fn failures(&self) -> &[CheckFailure] {
        &self.failures
    }

    /// Deterministic per-critical-pair verdict strings, in superposition
    /// order. Two runs over the same spec yield identical vectors entry
    /// for entry (at any job count); fault-isolation harnesses compare
    /// these index-wise, skipping deliberately sabotaged indices.
    pub fn pair_verdicts(&self) -> &[String] {
        &self.pair_verdicts
    }

    /// Deterministic per-probe verdict strings, in sample order (same
    /// contract as [`ConsistencyReport::pair_verdicts`]).
    pub fn probe_verdicts(&self) -> &[String] {
        &self.probe_verdicts
    }

    /// Telemetry from the run (worker utilization, rewrite steps).
    /// Timings vary between runs; everything else in the report does not.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// The specification the evidence is rendered against.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Human-readable summary. Clean runs render exactly as they always
    /// have; exhaustion and engine-fault lines appear only when present.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "consistency: {:?} ({} critical pairs, {} unresolved, {} probes)\n",
            self.verdict, self.pairs_checked, self.unresolved_pairs, self.probes_run
        );
        for c in &self.contradictions {
            out.push_str(&format!(
                "  contradiction [{}]: {} = {} but also {}\n",
                c.source,
                display::term(self.spec.sig(), &c.peak),
                display::term(self.spec.sig(), &c.left_nf),
                display::term(self.spec.sig(), &c.right_nf),
            ));
        }
        if self.interrupted_items > 0 {
            out.push_str(&format!(
                "  interrupted: {} item(s) stopped before a verdict\n",
                self.interrupted_items
            ));
        }
        if self.exhausted_pairs > 0 {
            out.push_str(&format!(
                "  exhausted pairs: {} (step budget ran out)\n",
                self.exhausted_pairs
            ));
        }
        const SHOWN: usize = 5;
        for e in self.exhausted_probes.iter().take(SHOWN) {
            out.push_str(&format!(
                "  exhausted probe: {} ({})\n",
                display::term(self.spec.sig(), &e.term),
                e.spent
            ));
        }
        if self.exhausted_probes.len() > SHOWN {
            out.push_str(&format!(
                "  … and {} more exhausted probe(s)\n",
                self.exhausted_probes.len() - SHOWN
            ));
        }
        for f in &self.failures {
            out.push_str(&format!("  engine fault: {}\n", f.error));
        }
        out
    }
}

/// Whether two normal forms are *distinguishable* — definitely denoting
/// different abstract values. Distinct ground constructor terms are
/// distinguishable; so are `error` vs a non-error constructor term. Stuck
/// symbolic terms are not (they might still be equal).
fn distinguishable(sig: &Signature, a: &Term, b: &Term) -> bool {
    if a == b {
        return false;
    }
    let ground_value = |t: &Term| t.is_constructor_term(sig);
    ground_value(a) && ground_value(b)
}

/// Checks the consistency of a specification with the default probe
/// configuration.
pub fn check_consistency(spec: &Spec) -> ConsistencyReport {
    check_consistency_with(spec, &ProbeConfig::default())
}

/// Checks the consistency of a specification on the calling thread. See
/// [`check_consistency_jobs`] for the parallel variant (whose report is
/// identical apart from timing stats).
pub fn check_consistency_with(spec: &Spec, probe: &ProbeConfig) -> ConsistencyReport {
    check_consistency_jobs(spec, probe, 1)
}

/// [`check_consistency_with`] with both phases fanned out across `jobs`
/// worker threads (`0` = every available core).
///
/// Determinism: superpositions are enumerated sequentially (their order
/// defines the contradiction list order) and only *classified* in
/// parallel; probe terms are sampled sequentially from the seeded RNG and
/// only *normalized* in parallel. Both merges restore input order, so the
/// report is byte-identical to the sequential one at any job count.
pub fn check_consistency_jobs(spec: &Spec, probe: &ProbeConfig, jobs: usize) -> ConsistencyReport {
    check_consistency_with_config(spec, probe, &CheckConfig::jobs(jobs))
}

/// [`check_consistency_jobs`] with a full [`CheckConfig`]: worker count,
/// resource budget, and (for harnesses testing the engine itself) a
/// fault-injection plan.
///
/// Robustness guarantees:
///
/// * Normalizations run under `config.fuel`; a probe that runs out is
///   recorded in [`ConsistencyReport::exhausted_probes`] and surfaces as
///   the [`ConsistencyVerdict::Exhausted`] partial verdict — never a hang.
/// * A work item whose worker panics (twice) is recorded in
///   [`ConsistencyReport::failures`]; every *other* item's verdict is
///   unaffected, byte for byte.
pub fn check_consistency_with_config(
    spec: &Spec,
    probe: &ProbeConfig,
    config: &CheckConfig,
) -> ConsistencyReport {
    consistency_impl(spec, probe, config, None)
}

/// [`check_consistency_with_config`] running inside a [`Session`]: both
/// phases' rewriters share the session's cross-run memo (facts learned
/// joining one pair speed up every probe, and persist for later checks),
/// and probe terms are interned into the session arena so the worker pool
/// ships [`TermId`]s instead of trees.
///
/// Sharing the memo with the pair phase's *extended* rewriter is sound:
/// [`superpositions`] extends the signature with renamed variables only,
/// so every operation keeps its index and structural hashes agree.
/// Reports are byte-identical to [`check_consistency_with_config`]
/// whenever no probe's exhaustion is fuel-marginal (warm memo facts can
/// only reduce the steps a normalization spends, which at a tight budget
/// can turn an `Exhausted` verdict into a normal form); deliberately
/// tiny-budget rewriters — the exhaust-fault path — therefore never carry
/// the memo.
pub fn check_consistency_session(
    session: &Session,
    probe: &ProbeConfig,
    config: &CheckConfig,
) -> ConsistencyReport {
    consistency_impl(session.spec(), probe, config, Some(session))
}

fn consistency_impl(
    spec: &Spec,
    probe: &ProbeConfig,
    config: &CheckConfig,
    session: Option<&Session>,
) -> ConsistencyReport {
    let jobs = config.jobs;
    let faults = config.faults.clone().unwrap_or_default();
    let supervisor = config.supervisor.clone();
    let mut contradictions = Vec::new();
    let mut unresolved = 0;
    let mut stats = CheckStats::default();
    let mut failures: Vec<CheckFailure> = Vec::new();
    let mut exhausted_probes: Vec<ExhaustedProbe> = Vec::new();
    let mut exhausted_pairs = 0;
    let mut interrupted_items = 0;
    let mut pair_verdicts: Vec<String> = Vec::new();
    let mut probe_verdicts: Vec<String> = Vec::new();

    // Phase 1: critical pairs — sequential enumeration, parallel joining.
    let set = match superpositions(spec) {
        Ok(set) => set,
        Err(err) => {
            // Enumeration itself rejected the spec: no per-item work ran.
            // Surface the phase failure instead of tearing the caller down.
            let error = match err {
                RewriteError::Engine(e) => e,
                other => EngineError::PhaseFailed {
                    phase: "pairs",
                    message: other.to_string(),
                },
            };
            failures.push(CheckFailure {
                index: 0,
                error,
                retried: false,
            });
            return ConsistencyReport {
                verdict: ConsistencyVerdict::Unknown,
                contradictions,
                unresolved_pairs: 0,
                pairs_checked: 0,
                probes_run: 0,
                exhausted_probes,
                exhausted_pairs: 0,
                interrupted_items: 0,
                failures,
                pair_verdicts,
                probe_verdicts,
                stats,
                spec: spec.clone(),
            };
        }
    };
    let pairs_checked = set.superpositions.len();
    let pair_faults = if faults.is_active() {
        faults.arm("pairs", pairs_checked)
    } else {
        ArmedFaults::none()
    };
    let mut ext_rw = Rewriter::new(&set.spec)
        .with_budget(config.fuel)
        .supervised(supervisor.clone());
    if let Some(session) = session {
        // Vars-only signature extension: op indices (and so structural
        // hashes) agree with the session's, so sharing its memo is sound.
        ext_rw = ext_rw.with_memo(Arc::clone(session.memo()));
    }
    // Deliberately memo-less (not a clone of `ext_rw`): the tiny budget
    // exists to *exhaust* sabotaged items, and a warm memo hit would hand
    // back the normal form without spending a single step.
    let tiny_pair_rw = Rewriter::new(&set.spec).with_budget(Fuel::steps(1));
    // One rewriter per retry rung, budgets escalating geometrically.
    // Retrying *inside* the worker keeps every item's final verdict a
    // function of (item, config) alone — byte-identical at any `--jobs`.
    let pair_ladder: Vec<(u32, Rewriter<'_>)> = config
        .retry
        .map(|retry| {
            retry
                .ladder(config.fuel)
                .into_iter()
                .map(|(rung, fuel)| {
                    let mut rw = Rewriter::new(&set.spec)
                        .with_budget(fuel)
                        .supervised(supervisor.clone());
                    if let Some(session) = session {
                        rw = rw.with_memo(Arc::clone(session.memo()));
                    }
                    (rung, rw)
                })
                .collect()
        })
        .unwrap_or_default();
    let pair_run = run_isolated(
        jobs,
        &set.superpositions,
        |idx, sp| {
            pair_faults.on_item(idx);
            if pair_faults.exhausts(idx) {
                // Exhaust faults pin the ladder at rung 0: the sabotaged
                // budget must stand, or the fault-isolation harness would
                // be testing the ladder instead of the fault.
                return Classified {
                    pair: classify_superposition(&tiny_pair_rw, sp),
                    rung: 0,
                };
            }
            if let Some(kind) = supervisor.interrupted() {
                return Classified {
                    pair: interrupted_pair(sp, kind),
                    rung: 0,
                };
            }
            let mut pair = classify_superposition(&ext_rw, sp);
            let mut rung = 0;
            for (r, rw) in &pair_ladder {
                if !retryable_pair(&pair.status) {
                    break;
                }
                rung = *r;
                pair = classify_superposition(rw, sp);
            }
            Classified { pair, rung }
        },
        |idx, sp| format!("critical pair #{idx} ({} / {})", sp.outer_rule, sp.inner_rule),
    );
    stats.absorb(&pair_run.busy, pair_run.elapsed, pairs_checked);
    stats.pairs_checked = pairs_checked;
    for (idx, outcome) in pair_run.results.into_iter().enumerate() {
        match outcome {
            ItemOutcome::Done(Classified { pair, rung }) => {
                if rung > 0 {
                    stats.retries.push(retry_note(
                        &format!("critical pair #{idx} ({} / {})", pair.outer_rule, pair.inner_rule),
                        rung,
                        config,
                        !retryable_pair(&pair.status),
                    ));
                }
                pair_verdicts.push(match &pair.status {
                    PairStatus::Joinable(nf) => {
                        format!("joins at {}", display::term(set.spec.sig(), nf))
                    }
                    PairStatus::Diverged { left_nf, right_nf } => format!(
                        "diverged: {} vs {}",
                        display::term(set.spec.sig(), left_nf),
                        display::term(set.spec.sig(), right_nf)
                    ),
                    PairStatus::Exhausted { spent, .. } => format!("exhausted: {spent}"),
                    PairStatus::Interrupted { kind } => format!("interrupted: {kind}"),
                    PairStatus::Unknown { reason } => format!("unknown: {reason}"),
                });
                match pair.status {
                    PairStatus::Joinable(_) => {}
                    PairStatus::Diverged { left_nf, right_nf } => {
                        if distinguishable(set.spec.sig(), &left_nf, &right_nf) {
                            contradictions.push(Contradiction {
                                peak: pair.peak.clone(),
                                left_nf,
                                right_nf,
                                source: "critical-pair",
                            });
                        } else {
                            unresolved += 1;
                        }
                    }
                    PairStatus::Exhausted { .. } => {
                        exhausted_pairs += 1;
                        unresolved += 1;
                    }
                    PairStatus::Interrupted { .. } => {
                        interrupted_items += 1;
                        unresolved += 1;
                    }
                    PairStatus::Unknown { .. } => unresolved += 1,
                }
            }
            ItemOutcome::Failed(failure) => {
                pair_verdicts.push(format!("engine fault: {}", failure.error));
                failures.push(failure);
            }
        }
    }

    // Phase 2: randomized ground probing — sequential sampling (the RNG
    // stream is one deterministic sequence), parallel normalization.
    let mut rw = Rewriter::new(spec)
        .with_budget(config.fuel)
        .supervised(supervisor.clone());
    if let Some(session) = session {
        rw = rw.with_memo(Arc::clone(session.memo()));
    }
    // Memo-less for the same reason as `tiny_pair_rw` above.
    let tiny_rw = Rewriter::new(spec).with_budget(Fuel::steps(1));
    let probe_ladder: Vec<(u32, Rewriter<'_>)> = config
        .retry
        .map(|retry| {
            retry
                .ladder(config.fuel)
                .into_iter()
                .map(|(rung, fuel)| {
                    let mut ladder_rw = Rewriter::new(spec)
                        .with_budget(fuel)
                        .supervised(supervisor.clone());
                    if let Some(session) = session {
                        ladder_rw = ladder_rw.with_memo(Arc::clone(session.memo()));
                    }
                    (rung, ladder_rw)
                })
                .collect()
        })
        .unwrap_or_default();
    let mut rng = DetRng::new(probe.seed);
    let observers: Vec<OpId> = spec.derived_ops().collect();
    let mut probe_terms = Vec::new();
    if !observers.is_empty() {
        for _ in 0..probe.samples {
            let op = observers[rng.below(observers.len())];
            if let Some(term) = random_application(spec.sig(), op, probe.max_depth, &mut rng) {
                probe_terms.push(term);
            }
        }
    }
    let probes_run = probe_terms.len();
    let probe_faults = if faults.is_active() {
        faults.arm("probes", probes_run)
    } else {
        ArmedFaults::none()
    };
    // The whole per-item policy (fault pinning, supervisor poll, retry
    // ladder) in one closure shared by both pool modes below.
    let probe_one = |idx: usize, term: &Term| -> Probed {
        probe_faults.on_item(idx);
        if probe_faults.exhausts(idx) {
            // Rung 0, always: see the pair phase.
            return Probed {
                out: probe_divergence(&tiny_rw, spec.sig(), term),
                rung: 0,
            };
        }
        if let Some(kind) = supervisor.interrupted() {
            return Probed {
                out: ProbeOutcome::stopped(kind),
                rung: 0,
            };
        }
        let mut out = probe_divergence(&rw, spec.sig(), term);
        let mut rung = 0;
        for (r, ladder_rw) in &probe_ladder {
            if !retryable_probe(&out) {
                break;
            }
            rung = *r;
            let next = probe_divergence(ladder_rw, spec.sig(), term);
            out = ProbeOutcome {
                steps: out.steps + next.steps,
                ..next
            };
        }
        Probed { out, rung }
    };
    let probe_run = match session {
        // Session mode: the pool ships interned ids — workers materialize
        // their own term from the shared arena (an exact round-trip, so
        // verdict strings match the tree-shipping path byte for byte).
        Some(session) => {
            let probe_ids: Vec<TermId> = probe_terms.iter().map(|t| session.intern(t)).collect();
            run_isolated(
                jobs,
                &probe_ids,
                |idx, &id| probe_one(idx, &session.term(id)),
                |idx, &id| {
                    format!(
                        "probe #{idx} ({})",
                        display::term(spec.sig(), &session.term(id))
                    )
                },
            )
        }
        None => run_isolated(
            jobs,
            &probe_terms,
            |idx, term| probe_one(idx, term),
            |idx, term| format!("probe #{idx} ({})", display::term(spec.sig(), term)),
        ),
    };
    stats.absorb(&probe_run.busy, probe_run.elapsed, probes_run);
    stats.probes_run = probes_run;
    for (idx, outcome) in probe_run.results.into_iter().enumerate() {
        match outcome {
            ItemOutcome::Done(Probed { out, rung }) => {
                stats.rewrite_steps += out.steps;
                if let Some(session) = session {
                    session.note_normalization(out.steps);
                }
                if rung > 0 {
                    stats.retries.push(retry_note(
                        &format!(
                            "probe #{idx} ({})",
                            display::term(spec.sig(), &probe_terms[idx])
                        ),
                        rung,
                        config,
                        !retryable_probe(&out),
                    ));
                }
                probe_verdicts.push(match (&out.found, &out.interrupted, &out.exhausted) {
                    (Some(c), _, _) => format!(
                        "diverged: {} vs {}",
                        display::term(spec.sig(), &c.left_nf),
                        display::term(spec.sig(), &c.right_nf)
                    ),
                    (None, Some(kind), _) => format!("interrupted: {kind}"),
                    (None, None, Some(spent)) => format!("exhausted: {spent}"),
                    (None, None, None) => "agreed".to_owned(),
                });
                if let Some(c) = out.found {
                    contradictions.push(c);
                } else if out.interrupted.is_some() {
                    interrupted_items += 1;
                } else if let Some(spent) = out.exhausted {
                    exhausted_probes.push(ExhaustedProbe {
                        term: probe_terms[idx].clone(),
                        spent,
                    });
                }
            }
            ItemOutcome::Failed(failure) => {
                probe_verdicts.push(format!("engine fault: {}", failure.error));
                failures.push(failure);
            }
        }
    }

    // Deduplicate contradictions by peak.
    let mut seen = HashSet::new();
    contradictions.retain(|c| seen.insert(c.peak.clone()));

    // Precedence: a contradiction beats everything; a supervisor interrupt
    // (the run was cut short from outside) beats exhaustion; exhaustion (a
    // partial analysis) beats symbolic unknowns; engine failures never
    // affect the verdict — they concern sabotaged items only.
    let verdict = if !contradictions.is_empty() {
        ConsistencyVerdict::Inconsistent
    } else if interrupted_items > 0 {
        ConsistencyVerdict::Interrupted
    } else if !exhausted_probes.is_empty() || exhausted_pairs > 0 {
        ConsistencyVerdict::Exhausted
    } else if unresolved > 0 {
        ConsistencyVerdict::Unknown
    } else {
        ConsistencyVerdict::Consistent
    };

    ConsistencyReport {
        verdict,
        contradictions,
        unresolved_pairs: unresolved,
        pairs_checked,
        probes_run,
        exhausted_probes,
        exhausted_pairs,
        interrupted_items,
        failures,
        pair_verdicts,
        probe_verdicts,
        stats,
        spec: set.spec,
    }
}

/// A classified critical pair plus the retry rung that produced its final
/// status (0 = first attempt).
struct Classified {
    pair: CriticalPair,
    rung: u32,
}

/// A probe outcome plus the retry rung that produced it.
struct Probed {
    out: ProbeOutcome,
    rung: u32,
}

/// A critical pair the supervisor stopped before classification.
fn interrupted_pair(sp: &Superposition, kind: Interrupt) -> CriticalPair {
    CriticalPair {
        outer_rule: sp.outer_rule.clone(),
        inner_rule: sp.inner_rule.clone(),
        position: sp.position.clone(),
        peak: sp.peak.clone(),
        left: sp.left.clone(),
        right: sp.right.clone(),
        status: PairStatus::Interrupted { kind },
    }
}

/// Whether the retry ladder applies: only plain *step* exhaustion is
/// rescued by more fuel. Depth bounds, deadlines, and interrupts are not.
fn retryable_pair(status: &PairStatus) -> bool {
    matches!(status, PairStatus::Exhausted { spent, .. } if spent.cause == ExhaustionCause::Steps)
}

/// [`retryable_pair`] for probe outcomes.
fn retryable_probe(out: &ProbeOutcome) -> bool {
    out.found.is_none()
        && out.interrupted.is_none()
        && matches!(&out.exhausted, Some(spent) if spent.cause == ExhaustionCause::Steps)
}

/// Telemetry line for an item the ladder escalated.
fn retry_note(label: &str, rung: u32, config: &CheckConfig, rescued: bool) -> String {
    let fuel = config
        .retry
        .map_or(config.fuel, |retry| retry.fuel_at(config.fuel, rung));
    let end = if rescued { "rescued" } else { "still exhausted" };
    format!("{label}: {end} at rung {rung} (fuel {})", fuel.steps)
}

/// Builds a random ground application of `op` to constructor terms.
/// Returns `None` if some argument sort has no constructors.
pub fn random_application(
    sig: &Signature,
    op: OpId,
    max_depth: usize,
    rng: &mut DetRng,
) -> Option<Term> {
    let args: Option<Vec<Term>> = sig
        .op(op)
        .args()
        .iter()
        .map(|&s| random_ctor_term(sig, s, max_depth, rng))
        .collect();
    Some(Term::App(op, args?))
}

/// Builds a random ground constructor term of `sort` with depth at most
/// `max_depth`. Returns `None` if the sort has no constructors (or none
/// usable within the depth budget).
pub fn random_ctor_term(
    sig: &Signature,
    sort: SortId,
    max_depth: usize,
    rng: &mut DetRng,
) -> Option<Term> {
    let ctors: Vec<OpId> = sig.constructors_of(sort).collect();
    if ctors.is_empty() {
        return None;
    }
    let usable: Vec<OpId> = if max_depth <= 1 {
        let nullary: Vec<OpId> = ctors
            .iter()
            .copied()
            .filter(|&c| sig.op(c).arity() == 0)
            .collect();
        if nullary.is_empty() {
            return None;
        }
        nullary
    } else {
        ctors
    };
    let ctor = usable[rng.below(usable.len())];
    let args: Option<Vec<Term>> = sig
        .op(ctor)
        .args()
        .iter()
        .map(|&s| random_ctor_term(sig, s, max_depth.saturating_sub(1), rng))
        .collect();
    Some(Term::App(ctor, args?))
}

/// What one ground probe observed.
struct ProbeOutcome {
    /// First distinguishable disagreement among the reducts' normal forms.
    found: Option<Contradiction>,
    /// Fuel receipt from the first normalization that ran out, if any.
    exhausted: Option<FuelSpent>,
    /// Supervisor interrupt that stopped the probe, if any.
    interrupted: Option<Interrupt>,
    /// Total rewrite steps spent.
    steps: u64,
}

impl ProbeOutcome {
    /// A probe the supervisor stopped before it did any work.
    fn stopped(kind: Interrupt) -> ProbeOutcome {
        ProbeOutcome {
            found: None,
            exhausted: None,
            interrupted: Some(kind),
            steps: 0,
        }
    }
}

/// Enumerates every one-step reduct of `term` (any rule, any position),
/// normalizes each, and reports the first distinguishable disagreement.
/// A normalization that exhausts its budget is recorded — not swallowed —
/// so divergent axiom sets surface as a partial verdict; other rewrite
/// errors (ill-sorted reducts) skip that reduct as before.
fn probe_divergence(rw: &Rewriter<'_>, sig: &Signature, term: &Term) -> ProbeOutcome {
    let mut steps = 0;
    let mut exhausted: Option<FuelSpent> = None;
    let mut interrupted: Option<Interrupt> = None;
    let mut normal_forms: Vec<Term> = Vec::new();
    'scan: for (pos, sub) in term.subterms() {
        if let Term::App(op, _) = sub {
            for rule in rw.rules().for_head(*op) {
                if let Some(subst) = match_pattern(rule.lhs(), sub) {
                    let contractum = subst.apply(rule.rhs());
                    // `pos` came from `subterms()`, so it resolves; skip
                    // defensively rather than panic if it ever does not.
                    let Some(rewritten) = term.replace_at(&pos, contractum) else {
                        continue;
                    };
                    match rw.normalize_full(&rewritten) {
                        Ok(norm) => {
                            steps += norm.steps;
                            normal_forms.push(norm.term);
                        }
                        Err(RewriteError::Exhausted { spent, .. }) => {
                            steps += spent.steps;
                            if exhausted.is_none() {
                                exhausted = Some(spent);
                            }
                        }
                        Err(RewriteError::Interrupted { kind, steps: s }) => {
                            // The supervisor pulled the plug: stop the
                            // whole scan — further reducts would only be
                            // interrupted again.
                            steps += s;
                            interrupted = Some(kind);
                            break 'scan;
                        }
                        Err(_) => {}
                    }
                }
            }
        }
    }
    let mut found = None;
    'search: for i in 0..normal_forms.len() {
        for j in (i + 1)..normal_forms.len() {
            if distinguishable(sig, &normal_forms[i], &normal_forms[j]) {
                found = Some(Contradiction {
                    peak: term.clone(),
                    left_nf: normal_forms[i].clone(),
                    right_nf: normal_forms[j].clone(),
                    source: "ground-probe",
                });
                break 'search;
            }
        }
    }
    ProbeOutcome {
        found,
        exhausted,
        interrupted,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    fn consistent_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let s = b.sort("Nat");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let x = Term::Var(b.var("x", s));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [x])]), ff);
        b.build().unwrap()
    }

    fn inconsistent_spec() -> Spec {
        // F(x) = C for all x, but F(C) = D: contradictory on F(C).
        let mut b = SpecBuilder::new("Bad");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        let f = b.op("F", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("general", b.app(f, [x]), b.app(c, []));
        b.axiom("specific", b.app(f, [b.app(c, [])]), b.app(d, []));
        let _ = d;
        b.build().unwrap()
    }

    #[test]
    fn consistent_spec_passes() {
        let report = check_consistency(&consistent_spec());
        assert!(report.is_consistent(), "{}", report.summary());
        assert!(report.contradictions().is_empty());
        assert!(report.probes_run() > 0);
    }

    #[test]
    fn contradiction_is_found_by_critical_pairs() {
        let report = check_consistency(&inconsistent_spec());
        assert_eq!(report.verdict(), &ConsistencyVerdict::Inconsistent);
        assert!(report
            .contradictions()
            .iter()
            .any(|c| c.source == "critical-pair" || c.source == "ground-probe"));
        let summary = report.summary();
        assert!(summary.contains("contradiction"), "{summary}");
    }

    #[test]
    fn ground_probe_finds_value_specific_contradictions() {
        // Two axioms that overlap only at a specific nested value:
        // G(SUCC(x)) = ZERO and G(SUCC(ZERO)) = SUCC(ZERO).
        let mut b = SpecBuilder::new("Probe");
        let s = b.sort("Nat");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let g = b.op("G", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("g1", b.app(g, [b.app(succ, [x])]), b.app(zero, []));
        b.axiom(
            "g2",
            b.app(g, [b.app(succ, [b.app(zero, [])])]),
            b.app(succ, [b.app(zero, [])]),
        );
        let spec = b.build().unwrap();
        let report = check_consistency(&spec);
        assert_eq!(report.verdict(), &ConsistencyVerdict::Inconsistent);
    }

    #[test]
    fn probe_config_is_deterministic() {
        let spec = consistent_spec();
        let cfg = ProbeConfig {
            samples: 50,
            max_depth: 4,
            seed: 7,
        };
        let r1 = check_consistency_with(&spec, &cfg);
        let r2 = check_consistency_with(&spec, &cfg);
        assert_eq!(r1.probes_run(), r2.probes_run());
        assert_eq!(r1.verdict(), r2.verdict());
    }

    #[test]
    fn parallel_report_matches_sequential() {
        for spec in [consistent_spec(), inconsistent_spec()] {
            let cfg = ProbeConfig::default();
            let seq = check_consistency_jobs(&spec, &cfg, 1);
            let par = check_consistency_jobs(&spec, &cfg, 4);
            assert_eq!(seq.verdict(), par.verdict());
            assert_eq!(seq.contradictions(), par.contradictions());
            assert_eq!(seq.pairs_checked(), par.pairs_checked());
            assert_eq!(seq.probes_run(), par.probes_run());
            assert_eq!(seq.unresolved_pairs(), par.unresolved_pairs());
            assert_eq!(seq.summary(), par.summary());
        }
    }

    #[test]
    fn stats_count_pairs_and_probes() {
        let report = check_consistency(&consistent_spec());
        let stats = report.stats();
        assert_eq!(stats.pairs_checked, report.pairs_checked());
        assert_eq!(stats.probes_run, report.probes_run());
        assert_eq!(stats.items, report.pairs_checked() + report.probes_run());
    }

    #[test]
    fn divergent_axioms_exhaust_instead_of_hanging() {
        // F(x) = F(x): every probe normalization loops forever. The check
        // must terminate with a partial (Exhausted) verdict at exactly the
        // configured budget, at any job count.
        let mut b = SpecBuilder::new("Loop");
        let s = b.sort("S");
        let _c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let x = Term::Var(b.var("x", s));
        b.axiom("loop", b.app(f, [x.clone()]), b.app(f, [x]));
        let spec = b.build().unwrap();
        let probe = ProbeConfig {
            samples: 10,
            max_depth: 3,
            seed: 1,
        };
        let seq = check_consistency_with_config(
            &spec,
            &probe,
            &CheckConfig::jobs(1).with_fuel(Fuel::steps(50)),
        );
        assert_eq!(seq.verdict(), &ConsistencyVerdict::Exhausted, "{}", seq.summary());
        assert!(!seq.exhausted_probes().is_empty());
        assert_eq!(seq.exhausted_probes()[0].spent.steps, 50);
        assert!(seq.summary().contains("exhausted probe"), "{}", seq.summary());

        let par = check_consistency_with_config(
            &spec,
            &probe,
            &CheckConfig::jobs(4).with_fuel(Fuel::steps(50)),
        );
        assert_eq!(seq.summary(), par.summary());
        assert_eq!(seq.probe_verdicts(), par.probe_verdicts());
    }

    #[test]
    fn injected_panic_leaves_other_verdicts_identical() {
        use crate::fault::FaultSpec;
        let spec = consistent_spec();
        let probe = ProbeConfig::default();
        let clean = check_consistency_with_config(&spec, &probe, &CheckConfig::jobs(1));
        let faults = FaultSpec {
            seed: 11,
            panics: 1,
            ..FaultSpec::default()
        };
        for jobs in [1, 4] {
            let cfg = CheckConfig::jobs(jobs).with_faults(faults.clone());
            let faulted = check_consistency_with_config(&spec, &probe, &cfg);
            assert!(!faulted.failures().is_empty());
            assert_eq!(faulted.verdict(), clean.verdict());

            let armed_pairs = faults.arm("pairs", clean.pairs_checked());
            let armed_probes = faults.arm("probes", clean.probes_run());
            assert_eq!(faulted.pair_verdicts().len(), clean.pair_verdicts().len());
            assert_eq!(faulted.probe_verdicts().len(), clean.probe_verdicts().len());
            for (idx, (a, b)) in clean
                .pair_verdicts()
                .iter()
                .zip(faulted.pair_verdicts())
                .enumerate()
            {
                if armed_pairs.is_faulted(idx) {
                    assert!(b.starts_with("engine fault:"), "{b}");
                } else {
                    assert_eq!(a, b, "pair #{idx} (jobs {jobs})");
                }
            }
            for (idx, (a, b)) in clean
                .probe_verdicts()
                .iter()
                .zip(faulted.probe_verdicts())
                .enumerate()
            {
                if armed_probes.is_faulted(idx) {
                    assert!(b.starts_with("engine fault:"), "{b}");
                } else {
                    assert_eq!(a, b, "probe #{idx} (jobs {jobs})");
                }
            }
        }
    }

    #[test]
    fn random_ctor_terms_respect_depth() {
        let spec = consistent_spec();
        let mut rng = DetRng::new(3);
        let s = spec.sig().find_sort("Nat").unwrap();
        for _ in 0..100 {
            let t = random_ctor_term(spec.sig(), s, 4, &mut rng).unwrap();
            assert!(t.depth() <= 4);
            assert!(t.is_constructor_term(spec.sig()));
        }
    }

    #[test]
    fn sorts_without_constructors_yield_no_terms() {
        let mut b = SpecBuilder::new("P");
        let s = b.sort("S");
        let item = b.param_sort("Item");
        let mk = b.ctor("MK", [item], s);
        let _ = mk;
        let spec = b.build().unwrap();
        let mut rng = DetRng::new(3);
        // S's only constructor needs an Item, and Item has none.
        let sid = spec.sig().find_sort("S").unwrap();
        assert!(random_ctor_term(spec.sig(), sid, 4, &mut rng).is_none());
        let iid = spec.sig().find_sort("Item").unwrap();
        assert!(random_ctor_term(spec.sig(), iid, 4, &mut rng).is_none());
    }
}
