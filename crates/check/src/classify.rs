//! Constructor/derived-operation classification.
//!
//! The split between *constructors* (`NEW`, `ADD`) and *derived*
//! operations (`FRONT`, `REMOVE`, `IS_EMPTY?`) drives both completeness
//! checking and ground-term generation. Front ends usually mark it
//! explicitly; when they do not, [`infer_constructors`] recovers the
//! standard heuristic split, and [`classification_warnings`] cross-checks
//! an explicit marking against the axioms.

use adt_core::{OpId, Spec};

/// Infers which operations should be constructors: operations whose range
/// is a sort of interest and that are *not defined* by any axiom (never
/// appear at the head of a left-hand side).
///
/// This matches the usual reading of the paper's specifications: `NEW` and
/// `ADD` have no axioms of their own, while `REMOVE` — which also ranges
/// over Queue — is pinned down case by case.
pub fn infer_constructors(spec: &Spec) -> Vec<OpId> {
    spec.sig()
        .op_ids()
        .filter(|&op| {
            let info = spec.sig().op(op);
            !info.is_builtin() && spec.is_toi(info.result()) && spec.axioms_for(op).next().is_none()
        })
        .collect()
}

/// Cross-checks the explicit constructor marking of a specification
/// against its axioms, returning human-readable warnings:
///
/// * a marked constructor that has defining axioms (suspicious — defined
///   operations are normally not generators);
/// * an unmarked operation ranging over a sort of interest with no
///   defining axioms (it can produce values the axioms never mention).
pub fn classification_warnings(spec: &Spec) -> Vec<String> {
    let mut warnings = Vec::new();
    for op in spec.sig().op_ids() {
        let info = spec.sig().op(op);
        if info.is_builtin() {
            continue;
        }
        let has_axioms = spec.axioms_for(op).next().is_some();
        if info.is_constructor() && has_axioms {
            warnings.push(format!(
                "operation `{}` is marked as a constructor but has defining axioms; \
                 constructors are normally free generators",
                info.name()
            ));
        }
        if !info.is_constructor() && spec.is_toi(info.result()) && !has_axioms {
            warnings.push(format!(
                "operation `{}` ranges over the defined sort `{}` but has no defining \
                 axioms and is not marked as a constructor; its results are unspecified",
                info.name(),
                spec.sig().sort(info.result()).name()
            ));
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::{SpecBuilder, Term};

    fn queue_like(mark_ctors: bool, axioms_for_remove: bool) -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        b.ctor("A", [], item);
        let new = if mark_ctors {
            b.ctor("NEW", [], queue)
        } else {
            // Need at least one marked constructor for the spec to build;
            // mark NEW only.
            b.ctor("NEW", [], queue)
        };
        let add = if mark_ctors {
            b.ctor("ADD", [queue, item], queue)
        } else {
            b.op("ADD", [queue, item], queue)
        };
        let remove = b.op("REMOVE", [queue], queue);
        let q = Term::Var(b.var("q", queue));
        let i = Term::Var(b.var("i", item));
        if axioms_for_remove {
            b.axiom("r1", b.app(remove, [b.app(new, [])]), Term::Error(queue));
            b.axiom("r2", b.app(remove, [b.app(add, [q.clone(), i.clone()])]), q);
        }
        b.build().unwrap()
    }

    #[test]
    fn inference_finds_undefined_toi_ops() {
        let spec = queue_like(false, true);
        let inferred = infer_constructors(&spec);
        let names: Vec<&str> = inferred
            .iter()
            .map(|&op| spec.sig().op(op).name())
            .collect();
        // NEW and ADD have no axioms; REMOVE does.
        assert_eq!(names, vec!["NEW", "ADD"]);
    }

    #[test]
    fn unmarked_generator_is_warned_about() {
        let spec = queue_like(false, true);
        let warnings = classification_warnings(&spec);
        assert!(warnings.iter().any(|w| w.contains("`ADD`")), "{warnings:?}");
        assert!(!warnings.iter().any(|w| w.contains("`REMOVE`")));
    }

    #[test]
    fn correctly_marked_spec_has_no_warnings() {
        let spec = queue_like(true, true);
        assert!(classification_warnings(&spec).is_empty());
    }

    #[test]
    fn constructor_with_axioms_is_warned_about() {
        let mut b = SpecBuilder::new("Odd");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let d = b.ctor("D", [], s);
        // A "constructor" with a defining axiom: C = D.
        b.axiom("c1", b.app(c, []), b.app(d, []));
        let spec = b.build().unwrap();
        let warnings = classification_warnings(&spec);
        assert!(warnings.iter().any(|w| w.contains("`C`")), "{warnings:?}");
    }

    #[test]
    fn remove_without_axioms_and_unmarked_is_flagged() {
        let spec = queue_like(true, false);
        let warnings = classification_warnings(&spec);
        assert!(
            warnings.iter().any(|w| w.contains("`REMOVE`")),
            "{warnings:?}"
        );
        // And inference would (rightly, per the heuristic) call it a generator.
        let inferred = infer_constructors(&spec);
        let names: Vec<&str> = inferred
            .iter()
            .map(|&op| spec.sig().op(op).name())
            .collect();
        assert!(names.contains(&"REMOVE"));
    }
}
