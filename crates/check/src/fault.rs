//! Deterministic fault injection for the checking engine.
//!
//! A robustness claim ("a panicking worker cannot corrupt the report")
//! is only worth making if it can be *exercised*. A [`FaultSpec`]
//! describes a reproducible set of faults — worker panics, fuel
//! exhaustion, artificial slowness — and [`FaultSpec::arm`] maps it onto
//! a concrete item range using the same deterministic RNG
//! ([`adt_core::DetRng`]) the consistency probes use. The same spec
//! armed for the same phase over the same item count always picks the
//! same indices, so a fault-injection harness can predict exactly which
//! work items were sabotaged and compare everything else against a
//! fault-free run.

use std::collections::BTreeSet;

use adt_core::DetRng;

/// A reproducible fault plan: how many items to sabotage per phase, and
/// how.
///
/// Counts apply *per phase* (completeness, pairs, probes): `panics: 1`
/// injects one panicking item into each phase it is armed for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the deterministic index choice.
    pub seed: u64,
    /// Items whose work closure panics (every attempt — injected panics
    /// are deterministic, so the retry panics too).
    pub panics: usize,
    /// Items that run under a deliberately tiny fuel budget.
    pub exhausts: usize,
    /// Items that sleep before running (stresses chunk claiming and the
    /// in-order merge without changing any result).
    pub slows: usize,
    /// How long a slowed item sleeps, in milliseconds.
    pub slow_ms: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            panics: 0,
            exhausts: 0,
            slows: 0,
            slow_ms: 10,
        }
    }
}

/// FNV-1a over the phase name, mixing it into the seed so each phase
/// picks independent indices.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultSpec {
    /// Whether any fault is configured at all.
    pub fn is_active(&self) -> bool {
        self.panics + self.exhausts + self.slows > 0
    }

    /// Maps the plan onto a concrete phase with `items` work items.
    ///
    /// Deterministic: the same `(spec, phase, items)` triple always
    /// yields the same [`ArmedFaults`]. The three fault kinds pick
    /// *disjoint* indices (panic wins over exhaust wins over slow), so a
    /// single item never carries two faults.
    pub fn arm(&self, phase: &str, items: usize) -> ArmedFaults {
        let mut rng = DetRng::new(self.seed ^ fnv1a(phase));
        let mut taken: BTreeSet<usize> = BTreeSet::new();
        let mut pick = |count: usize, taken: &mut BTreeSet<usize>| -> BTreeSet<usize> {
            let mut chosen = BTreeSet::new();
            let want = count.min(items.saturating_sub(taken.len()));
            while chosen.len() < want {
                let idx = rng.below(items);
                if taken.insert(idx) {
                    chosen.insert(idx);
                }
            }
            chosen
        };
        let panics = pick(self.panics, &mut taken);
        let exhausts = pick(self.exhausts, &mut taken);
        let slows = pick(self.slows, &mut taken);
        ArmedFaults {
            panics,
            exhausts,
            slows,
            slow_ms: self.slow_ms,
        }
    }
}

/// A [`FaultSpec`] resolved against one phase's item range: the concrete
/// indices to sabotage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmedFaults {
    panics: BTreeSet<usize>,
    exhausts: BTreeSet<usize>,
    slows: BTreeSet<usize>,
    slow_ms: u64,
}

impl ArmedFaults {
    /// An armed plan with no faults (what checkers use when no spec is
    /// given — every query answers "not faulted").
    pub fn none() -> Self {
        ArmedFaults {
            panics: BTreeSet::new(),
            exhausts: BTreeSet::new(),
            slows: BTreeSet::new(),
            slow_ms: 0,
        }
    }

    /// Called by the checker at the top of item `idx`'s work closure:
    /// sleeps if the item is slowed, then panics if it is marked to
    /// panic. Injected panics are deterministic by design, so the pool's
    /// retry panics again and the item surfaces as failed.
    pub fn on_item(&self, idx: usize) {
        if self.slows.contains(&idx) {
            std::thread::sleep(std::time::Duration::from_millis(self.slow_ms));
        }
        if self.panics.contains(&idx) {
            panic!("injected fault: worker panic on item #{idx}");
        }
    }

    /// Whether item `idx` should run under a deliberately tiny fuel
    /// budget.
    pub fn exhausts(&self, idx: usize) -> bool {
        self.exhausts.contains(&idx)
    }

    /// Whether item `idx` carries any fault (panic, exhaust, or slow).
    /// Fault-isolation harnesses use this to exclude sabotaged items
    /// from byte-identity comparison.
    pub fn is_faulted(&self, idx: usize) -> bool {
        self.panics.contains(&idx) || self.exhausts.contains(&idx) || self.slows.contains(&idx)
    }

    /// The indices armed to panic, in ascending order.
    pub fn panic_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.panics.iter().copied()
    }

    /// The indices armed to exhaust, in ascending order.
    pub fn exhaust_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.exhausts.iter().copied()
    }

    /// The indices armed to run slow, in ascending order.
    pub fn slow_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.slows.iter().copied()
    }

    /// Total number of faulted items.
    pub fn fault_count(&self) -> usize {
        self.panics.len() + self.exhausts.len() + self.slows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_is_deterministic_and_phase_dependent() {
        let spec = FaultSpec {
            seed: 7,
            panics: 2,
            exhausts: 1,
            slows: 1,
            slow_ms: 1,
        };
        let a = spec.arm("probes", 50);
        let b = spec.arm("probes", 50);
        assert_eq!(a, b, "same phase and size arm identically");
        assert_eq!(a.fault_count(), 4);
        // Kinds are disjoint.
        for idx in a.panic_indices() {
            assert!(!a.exhausts(idx));
        }
    }

    #[test]
    fn arming_caps_at_the_item_count() {
        let spec = FaultSpec {
            seed: 1,
            panics: 10,
            exhausts: 10,
            slows: 10,
            slow_ms: 1,
        };
        let armed = spec.arm("pairs", 5);
        assert_eq!(armed.fault_count(), 5, "cannot fault more items than exist");
        let empty = spec.arm("pairs", 0);
        assert_eq!(empty.fault_count(), 0);
    }

    #[test]
    fn on_item_panics_exactly_on_armed_indices() {
        let spec = FaultSpec {
            seed: 3,
            panics: 1,
            ..FaultSpec::default()
        };
        let armed = spec.arm("completeness", 10);
        let target: Vec<usize> = armed.panic_indices().collect();
        assert_eq!(target.len(), 1);
        for idx in 0..10 {
            let hit = std::panic::catch_unwind(|| armed.on_item(idx)).is_err();
            assert_eq!(hit, idx == target[0], "index {idx}");
        }
    }

    #[test]
    fn inactive_plan_and_none_are_inert() {
        assert!(!FaultSpec::default().is_active());
        let none = ArmedFaults::none();
        for idx in 0..100 {
            none.on_item(idx);
            assert!(!none.is_faulted(idx));
        }
    }
}
