//! # adt-check — mechanical checking of algebraic specifications
//!
//! The paper (§3) reports that completeness is "in a practical sense, a
//! more severe problem than consistency … It is, on the other hand,
//! extremely easy to overlook one or more cases. Boundary conditions, e.g.
//! `REMOVE(NEW)`, are particularly likely to be overlooked." Guttag's
//! response was "a system to mechanically *verify* the
//! sufficient-completeness" that "would begin to prompt the user to supply
//! the additional information".
//!
//! This crate is that system:
//!
//! * [`check_completeness`] analyses the constructor-case coverage of every
//!   derived operation and synthesizes a *witness term* for every missing
//!   case — the prompt the paper describes (drop Queue's axiom 4 and the
//!   checker answers `FRONT(ADD(x1, x2)) = ?`).
//! * [`check_consistency`] looks for contradictory axioms two ways: by
//!   critical-pair analysis (two axioms rewriting one term to different
//!   normal forms) and by randomized ground probing (one-step divergence on
//!   sampled ground terms).
//! * [`infer_constructors`] recovers the constructor/derived-operation
//!   split when a front end did not mark it explicitly.
//!
//! # Example
//!
//! ```
//! use adt_core::{SpecBuilder, Term};
//! use adt_check::{check_completeness, Coverage};
//!
//! // A deliberately incomplete spec: IS_ZERO? is unspecified on SUCC.
//! let mut b = SpecBuilder::new("Nat");
//! let s = b.sort("Nat");
//! let zero = b.ctor("ZERO", [], s);
//! let _succ = b.ctor("SUCC", [s], s);
//! let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
//! let tt = b.tt();
//! b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
//! let spec = b.build()?;
//!
//! let report = adt_check::check_completeness(&spec);
//! assert!(!report.is_sufficiently_complete());
//! let missing = &report.coverage()[0];
//! assert_eq!(missing.op_name(), "IS_ZERO?");
//! assert!(matches!(missing.coverage(), Coverage::Missing(cases) if cases.len() == 1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod classify;
mod completeness;
mod config;
mod consistency;
pub mod fault;
mod lint;
pub mod parallel;

pub use classify::{classification_warnings, infer_constructors};
pub use config::{CheckConfig, RetryFuel};
pub use fault::{ArmedFaults, FaultSpec};
pub use completeness::{
    check_completeness, check_completeness_jobs, check_completeness_session,
    check_completeness_with_config, CompletenessReport, Coverage, OpCoverage, PatternNote,
};
pub use consistency::{
    check_consistency, check_consistency_jobs, check_consistency_session, check_consistency_with,
    check_consistency_with_config, ConsistencyReport, ConsistencyVerdict, Contradiction,
    ExhaustedProbe, ProbeConfig,
};
pub use parallel::{CheckFailure, CheckStats, ItemOutcome};
pub use lint::{
    overlap_warnings, overlapping_axioms, recursion_warnings, OverlapPair, RecursionWarning,
};
