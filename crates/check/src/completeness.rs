//! Sufficient-completeness checking.
//!
//! A specification is *sufficiently complete* (Guttag [8]) when the axioms
//! pin down the value of every derived operation on every constructor-built
//! input — no legal ground observer application is left without a meaning.
//! (Applications involving `error` need no axioms: strict propagation
//! already gives them a meaning.)
//!
//! The check is a pattern-coverage analysis in the style of compiler
//! match-exhaustiveness checking: the left-hand sides of the axioms for an
//! operation form a pattern matrix, and we search for a constructor-term
//! vector no row matches. Every such vector is materialized as a *witness
//! term* — the paper's "prompt to the user".

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use adt_core::{
    display, EngineError, ExhaustionCause, Fuel, FuelSpent, Interrupt, OpId, Session, Signature,
    SortId, Spec, Term, VarId,
};

use crate::config::CheckConfig;
use crate::fault::ArmedFaults;
use crate::parallel::{run_isolated, CheckStats, ItemOutcome};

/// A caveat noted while converting an axiom left-hand side to a coverage
/// pattern. Patterns with caveats are treated conservatively (as covering
/// nothing at the offending position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternNote {
    /// The left-hand side contains a repeated variable; coverage analysis
    /// treats the repeated occurrence as opaque.
    NonLinear {
        /// Label of the axiom.
        axiom: String,
        /// Name of the repeated variable.
        var: String,
    },
    /// The left-hand side contains a non-constructor operation below the
    /// head; such a pattern only matches unreduced terms, so it cannot
    /// contribute to constructor-case coverage.
    NonConstructor {
        /// Label of the axiom.
        axiom: String,
        /// Name of the non-constructor operation.
        op: String,
    },
}

impl fmt::Display for PatternNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternNote::NonLinear { axiom, var } => write!(
                f,
                "axiom `{axiom}`: repeated variable `{var}` treated conservatively"
            ),
            PatternNote::NonConstructor { axiom, op } => write!(
                f,
                "axiom `{axiom}`: non-constructor operation `{op}` in the left-hand side \
                 cannot contribute to coverage"
            ),
        }
    }
}

/// Coverage verdict for one derived operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// Every constructor case is covered by some axiom.
    Complete,
    /// Cases are missing; each entry is a synthesized witness term the
    /// axioms say nothing about (rendered against
    /// [`CompletenessReport::spec`]).
    Missing(Vec<Term>),
    /// The analysis ran out of budget before deciding: a *partial*
    /// verdict, not a failure. Missing cases found before exhaustion are
    /// definite; `frontier` holds witness terms for case groups the
    /// analysis never explored (capped; `truncated` counts the rest).
    Exhausted {
        /// What was spent before the budget ran out. For case analysis,
        /// `steps` counts case partitions examined.
        spent: FuelSpent,
        /// Definite missing cases found before the budget ran out.
        missing: Vec<Term>,
        /// Unexplored case groups, as witness terms (rendered against
        /// [`CompletenessReport::spec`]).
        frontier: Vec<Term>,
        /// Unexplored case groups beyond the reported frontier.
        truncated: usize,
    },
    /// The run's supervisor (cancellation or wall-clock deadline) stopped
    /// the analysis before it produced a verdict. Like
    /// [`Coverage::Exhausted`], a partial result — the operation was not
    /// proved incomplete.
    Interrupted {
        /// What stopped the run.
        kind: Interrupt,
    },
    /// The analysis worker panicked (twice: original run plus one retry
    /// on a fresh stack); the rest of the report is unaffected.
    Failed {
        /// What went wrong.
        error: EngineError,
    },
}

/// Coverage analysis for one derived operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCoverage {
    op: OpId,
    op_name: String,
    coverage: Coverage,
    notes: Vec<PatternNote>,
    axiom_count: usize,
}

impl OpCoverage {
    /// The analysed operation.
    pub fn op(&self) -> OpId {
        self.op
    }

    /// Its name.
    pub fn op_name(&self) -> &str {
        &self.op_name
    }

    /// The coverage verdict.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Caveats noted while building the pattern matrix.
    pub fn notes(&self) -> &[PatternNote] {
        &self.notes
    }

    /// How many axioms are headed by this operation.
    pub fn axiom_count(&self) -> usize {
        self.axiom_count
    }

    /// Whether the operation is completely specified.
    pub fn is_complete(&self) -> bool {
        matches!(self.coverage, Coverage::Complete)
    }
}

/// The result of a sufficient-completeness check.
///
/// The report owns an extended copy of the specification (fresh variables
/// were minted to display witness terms); render witnesses against
/// [`CompletenessReport::spec`].
#[derive(Debug, Clone)]
pub struct CompletenessReport {
    spec: Spec,
    coverage: Vec<OpCoverage>,
    stats: CheckStats,
}

impl CompletenessReport {
    /// The specification extended with witness variables.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Telemetry from the run (worker utilization, per-op analysis time).
    /// Timings vary between runs; everything else in the report does not.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Per-operation coverage, in operation-declaration order.
    pub fn coverage(&self) -> &[OpCoverage] {
        &self.coverage
    }

    /// Coverage entry for a specific operation.
    pub fn for_op(&self, op: OpId) -> Option<&OpCoverage> {
        self.coverage.iter().find(|c| c.op == op)
    }

    /// Whether every derived operation is completely specified.
    pub fn is_sufficiently_complete(&self) -> bool {
        self.coverage.iter().all(OpCoverage::is_complete)
    }

    /// Total number of *definite* missing cases across all operations
    /// (including those found before an analysis exhausted its budget).
    pub fn missing_case_count(&self) -> usize {
        self.coverage
            .iter()
            .map(|c| match &c.coverage {
                Coverage::Complete => 0,
                Coverage::Missing(v) => v.len(),
                Coverage::Exhausted { missing, .. } => missing.len(),
                Coverage::Interrupted { .. } | Coverage::Failed { .. } => 0,
            })
            .sum()
    }

    /// Operations whose analysis did not reach a verdict (budget
    /// exhausted, supervisor interrupt, or worker failure). Empty on a
    /// clean run.
    pub fn undetermined_ops(&self) -> Vec<&OpCoverage> {
        self.coverage
            .iter()
            .filter(|c| {
                matches!(
                    c.coverage,
                    Coverage::Exhausted { .. }
                        | Coverage::Interrupted { .. }
                        | Coverage::Failed { .. }
                )
            })
            .collect()
    }

    /// How many operations the supervisor stopped before a verdict.
    pub fn interrupted_ops(&self) -> usize {
        self.coverage
            .iter()
            .filter(|c| matches!(c.coverage, Coverage::Interrupted { .. }))
            .count()
    }

    /// Whether some operation has a definitely-missing case (as opposed
    /// to merely an undetermined analysis).
    pub fn has_definite_missing(&self) -> bool {
        self.missing_case_count() > 0
    }

    /// Renders the report in the interactive style the paper describes:
    /// one `<witness> = ?` prompt per missing case.
    pub fn prompts(&self) -> String {
        let mut out = String::new();
        for cov in &self.coverage {
            match &cov.coverage {
                Coverage::Complete => {}
                Coverage::Missing(cases) => {
                    out.push_str(&format!(
                        "operation {}: insufficiently complete — {} missing case(s):\n",
                        cov.op_name,
                        cases.len()
                    ));
                    for case in cases {
                        out.push_str(&format!("  {} = ?\n", display::term(self.spec.sig(), case)));
                    }
                }
                Coverage::Exhausted {
                    spent,
                    missing,
                    frontier,
                    truncated,
                } => {
                    out.push_str(&format!(
                        "operation {}: analysis exhausted ({spent}) — partial verdict:\n",
                        cov.op_name
                    ));
                    for case in missing {
                        out.push_str(&format!("  {} = ?\n", display::term(self.spec.sig(), case)));
                    }
                    for case in frontier {
                        out.push_str(&format!(
                            "  {} = ? (unexplored)\n",
                            display::term(self.spec.sig(), case)
                        ));
                    }
                    if *truncated > 0 {
                        out.push_str(&format!(
                            "  … and {truncated} more unexplored case group(s)\n"
                        ));
                    }
                }
                Coverage::Interrupted { kind } => {
                    out.push_str(&format!(
                        "operation {}: analysis interrupted ({kind}) — no verdict\n",
                        cov.op_name
                    ));
                }
                Coverage::Failed { error } => {
                    out.push_str(&format!(
                        "operation {}: analysis failed — {error}\n",
                        cov.op_name
                    ));
                }
            }
            for note in &cov.notes {
                out.push_str(&format!("  note: {note}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("specification is sufficiently complete\n");
        }
        out
    }
}

/// A coverage pattern: wildcard, constructor application, or opaque
/// (covers nothing — produced by non-linear or non-constructor positions).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pat {
    Wild(SortId),
    Ctor(OpId, Vec<Pat>),
    Opaque,
}

/// A synthesized witness: mirrors `Pat` but with wildcards to materialize.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Witness {
    Any(SortId),
    Ctor(OpId, Vec<Witness>),
}

/// The order-independent part of one operation's analysis: everything
/// except witness materialization (which mints shared fresh variables and
/// must therefore run sequentially, in operation-declaration order).
struct OpAnalysis {
    op: OpId,
    op_name: String,
    notes: Vec<PatternNote>,
    missing_cases: Vec<Vec<Witness>>,
    /// Case groups the enumeration never explored (budget ran out).
    frontier_cases: Vec<Vec<Witness>>,
    /// Unexplored case groups beyond `frontier_cases`' cap.
    frontier_truncated: usize,
    /// Case partitions examined before stopping.
    partitions: usize,
    axiom_count: usize,
    time: std::time::Duration,
}

/// An [`OpAnalysis`] plus the supervision context it ran under: the
/// partition budget of its final attempt, the retry rung that produced
/// it (0 = first attempt), and whether the supervisor stopped it.
struct Analyzed {
    analysis: OpAnalysis,
    budget: usize,
    rung: u32,
    interrupted: Option<Interrupt>,
}

/// Whether the analysis consumed its whole partition budget *and* left
/// cases unexplored — the only exhaustion a bigger budget can rescue (a
/// frontier behind the witness cap is not retried: more fuel cannot
/// raise the cap).
fn budget_exhausted(analysis: &OpAnalysis, budget: usize) -> bool {
    analysis.partitions >= budget
        && (!analysis.frontier_cases.is_empty() || analysis.frontier_truncated > 0)
}

/// An empty analysis for an operation the supervisor stopped before any
/// work ran.
fn skipped_op(spec: &Spec, op: OpId) -> OpAnalysis {
    OpAnalysis {
        op,
        op_name: spec.sig().op(op).name().to_owned(),
        notes: Vec::new(),
        missing_cases: Vec::new(),
        frontier_cases: Vec::new(),
        frontier_truncated: 0,
        partitions: 0,
        axiom_count: spec.axioms_for(op).count(),
        time: std::time::Duration::ZERO,
    }
}

/// Builds the pattern matrix for `op` and enumerates its missing cases,
/// examining at most `case_budget` case partitions. Pure with respect to
/// `spec` — safe to run on any worker thread.
fn analyze_op(spec: &Spec, op: OpId, case_budget: usize) -> OpAnalysis {
    let started = Instant::now();
    let info = spec.sig().op(op);
    let op_name = info.name().to_owned();
    let arg_sorts: Vec<SortId> = info.args().to_vec();

    let mut notes = Vec::new();
    let mut matrix: Vec<Vec<Pat>> = Vec::new();
    let mut axiom_count = 0;
    for ax in spec.axioms_for(op) {
        axiom_count += 1;
        let Term::App(_, args) = ax.lhs() else {
            continue;
        };
        let mut seen = HashSet::new();
        let row: Vec<Pat> = args
            .iter()
            .map(|a| to_pat(a, spec.sig(), ax.label(), &mut seen, &mut notes))
            .collect();
        // Rows with opaque positions cannot be relied on for coverage;
        // the corresponding note was already recorded.
        if row.iter().all(|p| !has_opaque(p)) {
            matrix.push(row);
        }
    }

    // Partition the all-wildcard case along the constructor patterns
    // of the rows; every partition no row subsumes is a missing case.
    let root_case: Vec<Witness> = arg_sorts.iter().map(|&s| Witness::Any(s)).collect();
    let mut missing_cases: Vec<Vec<Witness>> = Vec::new();
    let mut frontier_cases: Vec<Vec<Witness>> = Vec::new();
    let mut frontier_truncated = 0;
    let mut budget = case_budget;
    enumerate_missing(
        &matrix,
        root_case,
        spec.sig(),
        &mut missing_cases,
        &mut budget,
        &mut frontier_cases,
        &mut frontier_truncated,
    );

    OpAnalysis {
        op,
        op_name,
        notes,
        missing_cases,
        frontier_cases,
        frontier_truncated,
        partitions: case_budget - budget,
        axiom_count,
        time: started.elapsed(),
    }
}

/// Checks the sufficient completeness of a specification.
///
/// Every non-constructor, non-builtin operation is analysed; for each, the
/// left-hand sides of its axioms are compiled to a pattern matrix, and
/// missing constructor cases are enumerated (up to an internal bound of 64
/// witnesses per operation, which no sane specification approaches).
///
/// Runs on the calling thread; see [`check_completeness_jobs`] for the
/// parallel variant (whose report is identical apart from timing stats).
pub fn check_completeness(spec: &Spec) -> CompletenessReport {
    check_completeness_jobs(spec, 1)
}

/// [`check_completeness`] with the per-operation analysis fanned out
/// across `jobs` worker threads (`0` = every available core).
///
/// The expensive phase — pattern-matrix construction and missing-case
/// enumeration — is independent per operation and runs in parallel. The
/// cheap phase — materializing witness terms, which mints fresh variables
/// in a shared signature — runs sequentially afterwards, in
/// operation-declaration order. The report is therefore *identical* to the
/// sequential one, byte for byte, at any job count; only
/// [`CompletenessReport::stats`] timings differ.
pub fn check_completeness_jobs(spec: &Spec, jobs: usize) -> CompletenessReport {
    check_completeness_with_config(spec, &CheckConfig::jobs(jobs))
}

/// [`check_completeness`] under an explicit [`CheckConfig`]: worker
/// count, fuel budget (a cap on case partitions examined per operation),
/// and an optional fault-injection plan.
///
/// Robustness contract: a panicking analysis worker surfaces as
/// [`Coverage::Failed`] for its operation only, an exhausted budget as
/// [`Coverage::Exhausted`] — neither can take down the run or disturb
/// any other operation's verdict.
pub fn check_completeness_with_config(spec: &Spec, config: &CheckConfig) -> CompletenessReport {
    completeness_impl(spec, config, None)
}

/// [`check_completeness_with_config`] running inside a [`Session`]: the
/// analysis itself is pure pattern arithmetic (the pool's work items are
/// already ids — the derived [`OpId`]s), but every materialized witness
/// term is additionally interned into the session arena, so downstream
/// consumers (consistency probing over the prompts, the differential
/// harness, the CLI) hold handles into one workspace instead of private
/// copies. The report is byte-identical to the fresh-spec variant.
pub fn check_completeness_session(session: &Session, config: &CheckConfig) -> CompletenessReport {
    completeness_impl(session.spec(), config, Some(session))
}

fn completeness_impl(
    spec: &Spec,
    config: &CheckConfig,
    session: Option<&Session>,
) -> CompletenessReport {
    let derived: Vec<OpId> = spec.derived_ops().collect();
    let armed = match &config.faults {
        Some(faults) => faults.arm("completeness", derived.len()),
        None => ArmedFaults::none(),
    };
    let supervisor = config.supervisor.clone();
    // The fuel's step budget caps case partitions, never above the
    // built-in safety valve. An exhaust-fault sabotages the item with a
    // budget too small for any real analysis.
    let case_budget = usize::try_from(config.fuel.steps.min(CASE_BUDGET as u64)).unwrap_or(usize::MAX);
    // Escalated partition budgets for exhausted analyses, never above the
    // safety valve (only budgets that actually grow make a rung).
    let budget_ladder: Vec<(u32, usize)> = config
        .retry
        .map(|retry| {
            let mut out = Vec::new();
            let mut prev = case_budget;
            for rung in 1..=retry.rungs {
                let next =
                    usize::try_from(retry.fuel_at(Fuel::steps(case_budget as u64), rung).steps)
                        .unwrap_or(usize::MAX)
                        .min(CASE_BUDGET);
                if next <= prev {
                    break;
                }
                prev = next;
                out.push((rung, next));
            }
            out
        })
        .unwrap_or_default();
    let run = run_isolated(
        config.jobs,
        &derived,
        |idx, &op| {
            armed.on_item(idx);
            if armed.exhausts(idx) {
                // Exhaust faults pin the ladder at rung 0: the sabotaged
                // budget must stand, or the fault-isolation harness would
                // be testing the ladder instead of the fault.
                return Analyzed {
                    analysis: analyze_op(spec, op, 1),
                    budget: 1,
                    rung: 0,
                    interrupted: None,
                };
            }
            if let Some(kind) = supervisor.interrupted() {
                return Analyzed {
                    analysis: skipped_op(spec, op),
                    budget: case_budget,
                    rung: 0,
                    interrupted: Some(kind),
                };
            }
            let mut budget = case_budget;
            let mut analysis = analyze_op(spec, op, budget);
            let mut rung = 0;
            for &(r, next) in &budget_ladder {
                if !budget_exhausted(&analysis, budget) {
                    break;
                }
                rung = r;
                budget = next;
                analysis = analyze_op(spec, op, budget);
            }
            Analyzed {
                analysis,
                budget,
                rung,
                interrupted: None,
            }
        },
        |_, &op| format!("operation `{}`", spec.sig().op(op).name()),
    );

    let mut stats = CheckStats::default();
    stats.absorb(&run.busy, run.elapsed, derived.len());

    let mut sig = spec.sig().clone();
    let mut witness_vars: Vec<(SortId, Vec<VarId>)> = Vec::new();
    let mut coverage = Vec::new();
    for (idx, outcome) in run.results.into_iter().enumerate() {
        let Analyzed {
            analysis,
            budget,
            rung,
            interrupted,
        } = match outcome {
            ItemOutcome::Done(a) => a,
            ItemOutcome::Failed(failure) => {
                let op = derived[idx];
                coverage.push(OpCoverage {
                    op,
                    op_name: spec.sig().op(op).name().to_owned(),
                    coverage: Coverage::Failed {
                        error: failure.error,
                    },
                    notes: Vec::new(),
                    axiom_count: spec.axioms_for(op).count(),
                });
                continue;
            }
        };
        if let Some(kind) = interrupted {
            coverage.push(OpCoverage {
                op: analysis.op,
                op_name: analysis.op_name,
                coverage: Coverage::Interrupted { kind },
                notes: Vec::new(),
                axiom_count: analysis.axiom_count,
            });
            continue;
        }
        if rung > 0 {
            let end = if budget_exhausted(&analysis, budget) {
                "still exhausted"
            } else {
                "rescued"
            };
            stats.retries.push(format!(
                "operation `{}`: {end} at rung {rung} (budget {budget})",
                analysis.op_name
            ));
        }
        stats
            .op_times
            .push((analysis.op_name.clone(), analysis.time));
        let mut materialize_cases = |cases: &[Vec<Witness>], sig: &mut Signature| -> Vec<Term> {
            cases
                .iter()
                .map(|case| {
                    let terms: Vec<Term> = {
                        let mut counters = std::collections::HashMap::new();
                        case.iter()
                            .map(|w| materialize_inner(w, sig, &mut witness_vars, &mut counters))
                            .collect()
                    };
                    Term::App(analysis.op, terms)
                })
                .collect()
        };
        let missing: Vec<Term> = materialize_cases(&analysis.missing_cases, &mut sig);
        let frontier: Vec<Term> = materialize_cases(&analysis.frontier_cases, &mut sig);
        if let Some(session) = session {
            // Witnesses emit ids too: intern each into the session arena
            // (hash-consed, so shared structure across witnesses costs
            // nothing) for id-holding consumers downstream.
            for witness in missing.iter().chain(frontier.iter()) {
                session.intern(witness);
            }
        }

        let exhausted = !frontier.is_empty() || analysis.frontier_truncated > 0;
        coverage.push(OpCoverage {
            op: analysis.op,
            op_name: analysis.op_name,
            coverage: if exhausted {
                Coverage::Exhausted {
                    spent: FuelSpent {
                        steps: analysis.partitions as u64,
                        depth: 0,
                        cause: ExhaustionCause::Steps,
                    },
                    missing,
                    frontier,
                    truncated: analysis.frontier_truncated,
                }
            } else if missing.is_empty() {
                Coverage::Complete
            } else {
                Coverage::Missing(missing)
            },
            notes: analysis.notes,
            axiom_count: analysis.axiom_count,
        });
    }

    let spec = Spec::from_parts(
        spec.name().to_owned(),
        sig,
        spec.axioms().to_vec(),
        spec.tois().to_vec(),
        spec.params().to_vec(),
    )
    .expect("extending a valid spec with variables keeps it valid");
    CompletenessReport {
        spec,
        coverage,
        stats,
    }
}

fn to_pat(
    term: &Term,
    sig: &Signature,
    axiom: &str,
    seen: &mut HashSet<VarId>,
    notes: &mut Vec<PatternNote>,
) -> Pat {
    match term {
        Term::Var(v) => {
            if seen.insert(*v) {
                Pat::Wild(sig.var(*v).sort())
            } else {
                notes.push(PatternNote::NonLinear {
                    axiom: axiom.to_owned(),
                    var: sig.var(*v).name().to_owned(),
                });
                Pat::Opaque
            }
        }
        Term::App(op, args) => {
            if sig.op(*op).is_constructor() {
                Pat::Ctor(
                    *op,
                    args.iter()
                        .map(|a| to_pat(a, sig, axiom, seen, notes))
                        .collect(),
                )
            } else {
                notes.push(PatternNote::NonConstructor {
                    axiom: axiom.to_owned(),
                    op: sig.op(*op).name().to_owned(),
                });
                Pat::Opaque
            }
        }
        // `error` patterns and conditionals cover nothing we must account
        // for: strictness already defines the error cases.
        Term::Error(_) | Term::Ite(_) => Pat::Opaque,
    }
}

fn has_opaque(p: &Pat) -> bool {
    match p {
        Pat::Opaque => true,
        Pat::Wild(_) => false,
        Pat::Ctor(_, args) => args.iter().any(has_opaque),
    }
}

/// Safety valve: the maximum number of case partitions examined per
/// operation. Real specifications stay far below this.
const CASE_BUDGET: usize = 10_000;

/// Maximum number of missing cases reported per operation.
const MAX_WITNESSES: usize = 64;

/// Maximum number of unexplored case groups reported per operation when
/// the budget runs out (the rest are counted, not materialized).
const MAX_FRONTIER: usize = 8;

/// Recursively partitions `case` along the constructor patterns of the
/// rows, collecting every partition no row subsumes. A case abandoned
/// because the budget (or the witness cap) ran out is recorded on the
/// `frontier` instead of being dropped silently, so exhaustion is
/// visible in the report.
#[allow(clippy::too_many_arguments)]
fn enumerate_missing(
    rows: &[Vec<Pat>],
    case: Vec<Witness>,
    sig: &Signature,
    out: &mut Vec<Vec<Witness>>,
    budget: &mut usize,
    frontier: &mut Vec<Vec<Witness>>,
    truncated: &mut usize,
) {
    if out.len() >= MAX_WITNESSES || *budget == 0 {
        if frontier.len() < MAX_FRONTIER {
            frontier.push(case);
        } else {
            *truncated += 1;
        }
        return;
    }
    *budget -= 1;

    let compat: Vec<&Vec<Pat>> = rows
        .iter()
        .filter(|row| row.iter().zip(&case).all(|(p, w)| compatible(p, w)))
        .collect();
    if compat.is_empty() {
        out.push(case);
        return;
    }
    if compat
        .iter()
        .any(|row| row.iter().zip(&case).all(|(p, w)| subsumes(p, w)))
    {
        return; // fully covered
    }
    // Some compatible row inspects a position the case leaves open: split
    // the case there, one branch per constructor.
    let Some((idx, path, sort)) = find_split(&compat, &case) else {
        // Unreachable in theory (compatible + no split point implies
        // subsumption), but stay conservative.
        out.push(case);
        return;
    };
    let ctors: Vec<OpId> = sig.constructors_of(sort).collect();
    if ctors.is_empty() {
        // A pattern demands a constructor of a sort that has none (an
        // opaque parameter sort): nothing can cover the open values.
        out.push(case);
        return;
    }
    for ctor in ctors {
        let args = sig
            .op(ctor)
            .args()
            .iter()
            .map(|&s| Witness::Any(s))
            .collect();
        let mut split_case = case.clone();
        split_case[idx] = set_at(&case[idx], &path, Witness::Ctor(ctor, args));
        enumerate_missing(rows, split_case, sig, out, budget, frontier, truncated);
    }
}

/// Whether some instance of `case` matches `pat`.
fn compatible(pat: &Pat, case: &Witness) -> bool {
    match (pat, case) {
        (Pat::Opaque, _) => false,
        (Pat::Wild(_), _) => true,
        (Pat::Ctor(_, _), Witness::Any(_)) => true,
        (Pat::Ctor(op, pargs), Witness::Ctor(cop, cargs)) => {
            op == cop && pargs.iter().zip(cargs).all(|(p, w)| compatible(p, w))
        }
    }
}

/// Whether *every* instance of `case` matches `pat`.
fn subsumes(pat: &Pat, case: &Witness) -> bool {
    match (pat, case) {
        (Pat::Opaque, _) => false,
        (Pat::Wild(_), _) => true,
        (Pat::Ctor(_, _), Witness::Any(_)) => false,
        (Pat::Ctor(op, pargs), Witness::Ctor(cop, cargs)) => {
            op == cop && pargs.iter().zip(cargs).all(|(p, w)| subsumes(p, w))
        }
    }
}

/// Finds the leftmost-outermost open position of the case where some
/// compatible row has a constructor pattern; returns the argument index,
/// the path within that argument, and the sort to split on.
fn find_split(compat: &[&Vec<Pat>], case: &[Witness]) -> Option<(usize, Vec<usize>, SortId)> {
    for (idx, w) in case.iter().enumerate() {
        for row in compat {
            if let Some((path, sort)) = find_split_in(&row[idx], w) {
                return Some((idx, path, sort));
            }
        }
    }
    None
}

fn find_split_in(pat: &Pat, case: &Witness) -> Option<(Vec<usize>, SortId)> {
    match (pat, case) {
        (Pat::Ctor(_, _), Witness::Any(sort)) => Some((Vec::new(), *sort)),
        (Pat::Ctor(_, pargs), Witness::Ctor(_, cargs)) => {
            for (i, (p, w)) in pargs.iter().zip(cargs).enumerate() {
                if let Some((mut path, sort)) = find_split_in(p, w) {
                    path.insert(0, i);
                    return Some((path, sort));
                }
            }
            None
        }
        _ => None,
    }
}

/// Returns a copy of `case` with the subtree at `path` replaced.
fn set_at(case: &Witness, path: &[usize], replacement: Witness) -> Witness {
    if path.is_empty() {
        return replacement;
    }
    match case {
        Witness::Ctor(op, args) => {
            let mut new_args = args.clone();
            new_args[path[0]] = set_at(&args[path[0]], &path[1..], replacement);
            Witness::Ctor(*op, new_args)
        }
        Witness::Any(_) => unreachable!("path into a wildcard"),
    }
}

fn materialize_inner(
    w: &Witness,
    sig: &mut Signature,
    pool: &mut Vec<(SortId, Vec<VarId>)>,
    counters: &mut std::collections::HashMap<SortId, usize>,
) -> Term {
    match w {
        Witness::Any(sort) => {
            let idx = counters.entry(*sort).or_insert(0);
            let var = fresh_var(*sort, *idx, sig, pool);
            *idx += 1;
            Term::Var(var)
        }
        Witness::Ctor(op, args) => Term::App(
            *op,
            args.iter()
                .map(|a| materialize_inner(a, sig, pool, counters))
                .collect(),
        ),
    }
}

fn fresh_var(
    sort: SortId,
    idx: usize,
    sig: &mut Signature,
    pool: &mut Vec<(SortId, Vec<VarId>)>,
) -> VarId {
    let entry = match pool.iter_mut().find(|(s, _)| *s == sort) {
        Some(e) => e,
        None => {
            pool.push((sort, Vec::new()));
            pool.last_mut().expect("just pushed")
        }
    };
    while entry.1.len() <= idx {
        let base = sig.sort(sort).name().to_lowercase();
        let n = entry.1.len() + 1;
        // Find a name not already taken in the signature.
        let mut k = n;
        let var = loop {
            let candidate = format!("{base}_{k}");
            match sig.add_var(&candidate, sort) {
                Ok(v) => break v,
                Err(_) => k += 1,
            }
        };
        entry.1.push(var);
    }
    entry.1[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    /// The complete Queue spec of §3.
    fn queue_spec(include_q4: bool) -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let front = b.op("FRONT", [queue], item);
        let remove = b.op("REMOVE", [queue], queue);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        b.ctor("A", [], item);
        let q = Term::Var(b.var("q", queue));
        let i = Term::Var(b.var("i", item));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        b.axiom(
            "q2",
            b.app(is_empty, [b.app(add, [q.clone(), i.clone()])]),
            ff,
        );
        b.axiom("q3", b.app(front, [b.app(new, [])]), Term::Error(item));
        if include_q4 {
            b.axiom(
                "q4",
                b.app(front, [b.app(add, [q.clone(), i.clone()])]),
                Term::ite(
                    b.app(is_empty, [q.clone()]),
                    i.clone(),
                    b.app(front, [q.clone()]),
                ),
            );
        }
        b.axiom("q5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
        b.axiom(
            "q6",
            b.app(remove, [b.app(add, [q.clone(), i.clone()])]),
            Term::ite(
                b.app(is_empty, [q.clone()]),
                b.app(new, []),
                b.app(add, [b.app(remove, [q]), i]),
            ),
        );
        b.build().unwrap()
    }

    #[test]
    fn complete_queue_passes() {
        let spec = queue_spec(true);
        let report = check_completeness(&spec);
        assert!(report.is_sufficiently_complete(), "{}", report.prompts());
        assert_eq!(report.missing_case_count(), 0);
        assert_eq!(report.coverage().len(), 3); // FRONT, REMOVE, IS_EMPTY?
        assert!(report.prompts().contains("sufficiently complete"));
    }

    #[test]
    fn dropping_axiom_4_is_detected_with_the_right_witness() {
        let spec = queue_spec(false);
        let report = check_completeness(&spec);
        assert!(!report.is_sufficiently_complete());
        assert_eq!(report.missing_case_count(), 1);
        let front = spec.sig().find_op("FRONT").unwrap();
        let cov = report.for_op(front).unwrap();
        let Coverage::Missing(cases) = cov.coverage() else {
            panic!("expected missing cases");
        };
        let rendered = display::term(report.spec().sig(), &cases[0]).to_string();
        assert_eq!(rendered, "FRONT(ADD(queue_1, item_1))");
        assert!(report.prompts().contains("FRONT(ADD(queue_1, item_1)) = ?"));
    }

    #[test]
    fn operation_with_no_axioms_reports_all_cases() {
        let mut b = SpecBuilder::new("Nat");
        let s = b.sort("Nat");
        b.ctor("ZERO", [], s);
        b.ctor("SUCC", [s], s);
        b.op("IS_ZERO?", [s], b.bool_sort());
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        assert!(!report.is_sufficiently_complete());
        // No axiom constrains IS_ZERO? at all: one all-open missing case.
        assert_eq!(report.missing_case_count(), 1);
        let prompts = report.prompts();
        assert!(prompts.contains("IS_ZERO?(nat_1) = ?"), "{prompts}");
    }

    #[test]
    fn nested_patterns_cover_like_the_symboltable_axioms() {
        // LEAVEBLOCK is defined on INIT, ENTERBLOCK(s) and ADD(s, id): the
        // three constructor heads — complete even though patterns nest.
        let mut b = SpecBuilder::new("Sym");
        let st = b.sort("Symboltable");
        let ident = b.param_sort("Identifier");
        b.ctor("ID_A", [], ident);
        let init = b.ctor("INIT", [], st);
        let enter = b.ctor("ENTERBLOCK", [st], st);
        let add = b.ctor("ADD", [st, ident], st);
        let leave = b.op("LEAVEBLOCK", [st], st);
        let s = Term::Var(b.var("symtab", st));
        let id = Term::Var(b.var("id", ident));
        b.axiom("a1", b.app(leave, [b.app(init, [])]), Term::Error(st));
        b.axiom("a2", b.app(leave, [b.app(enter, [s.clone()])]), s.clone());
        b.axiom(
            "a3",
            b.app(leave, [b.app(add, [s.clone(), id])]),
            b.app(leave, [s]),
        );
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        assert!(report.is_sufficiently_complete(), "{}", report.prompts());
    }

    #[test]
    fn missing_nested_case_is_pinpointed() {
        // Like above but the ENTERBLOCK case is missing.
        let mut b = SpecBuilder::new("Sym");
        let st = b.sort("Symboltable");
        let init = b.ctor("INIT", [], st);
        let _enter = b.ctor("ENTERBLOCK", [st], st);
        let leave = b.op("LEAVEBLOCK", [st], st);
        b.axiom("a1", b.app(leave, [b.app(init, [])]), Term::Error(st));
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        let leave_id = spec.sig().find_op("LEAVEBLOCK").unwrap();
        let cov = report.for_op(leave_id).unwrap();
        let Coverage::Missing(cases) = cov.coverage() else {
            panic!("expected missing");
        };
        assert_eq!(cases.len(), 1);
        let rendered = display::term(report.spec().sig(), &cases[0]).to_string();
        assert_eq!(rendered, "LEAVEBLOCK(ENTERBLOCK(symboltable_1))");
    }

    #[test]
    fn multi_argument_coverage_enumerates_combinations() {
        // EQ?: two Nat arguments, only (ZERO, ZERO) covered — expect the
        // checker to surface the remaining combinations.
        let mut b = SpecBuilder::new("Nat");
        let s = b.sort("Nat");
        let zero = b.ctor("ZERO", [], s);
        b.ctor("SUCC", [s], s);
        let eq = b.op("EQ?", [s, s], b.bool_sort());
        let tt = b.tt();
        b.axiom("e1", b.app(eq, [b.app(zero, []), b.app(zero, [])]), tt);
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        let eq_id = spec.sig().find_op("EQ?").unwrap();
        let Coverage::Missing(cases) = report.for_op(eq_id).unwrap().coverage() else {
            panic!("expected missing");
        };
        // The uncovered space partitions into EQ?(ZERO, SUCC(_)) and
        // EQ?(SUCC(_), _).
        assert_eq!(cases.len(), 2, "cases: {cases:#?}");
        let rendered: Vec<String> = cases
            .iter()
            .map(|c| display::term(report.spec().sig(), c).to_string())
            .collect();
        assert!(
            rendered.contains(&"EQ?(ZERO, SUCC(nat_1))".to_owned()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"EQ?(SUCC(nat_1), nat_2)".to_owned()),
            "{rendered:?}"
        );
    }

    #[test]
    fn nonlinear_pattern_is_flagged() {
        let mut b = SpecBuilder::new("Pair");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let same = b.op("SAME?", [s, s], b.bool_sort());
        let x = Term::Var(b.var("x", s));
        let tt = b.tt();
        // SAME?(x, x) = true — non-linear.
        b.axiom("s1", b.app(same, [x.clone(), x]), tt);
        let _ = c;
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        let cov = &report.coverage()[0];
        assert!(!cov.is_complete());
        assert!(matches!(cov.notes()[0], PatternNote::NonLinear { .. }));
    }

    #[test]
    fn non_constructor_pattern_is_flagged() {
        let mut b = SpecBuilder::new("S");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let g = b.op("G", [s], s);
        // G(F(x)) = C: F below the head is not a constructor.
        let x = Term::Var(b.var("x", s));
        b.axiom("g1", b.app(g, [b.app(f, [x])]), b.app(c, []));
        b.axiom(
            "f1",
            b.app(f, [Term::Var(b.sig().find_var("x").unwrap())]),
            b.app(c, []),
        );
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        let g_id = spec.sig().find_op("G").unwrap();
        let cov = report.for_op(g_id).unwrap();
        assert!(!cov.is_complete());
        assert!(cov
            .notes()
            .iter()
            .any(|n| matches!(n, PatternNote::NonConstructor { .. })));
    }

    #[test]
    fn parameter_sort_wildcards_cover_opaque_values() {
        // RETRIEVE-style op over a parameter sort with no sample
        // constructors: a wildcard covers it.
        let mut b = SpecBuilder::new("Box");
        let bx = b.sort("Box");
        let item = b.param_sort("Item");
        let mk = b.ctor("MK", [item], bx);
        let get = b.op("GET", [bx], item);
        let i = Term::Var(b.var("i", item));
        b.axiom("g1", b.app(get, [b.app(mk, [i.clone()])]), i);
        let spec = b.build().unwrap();
        let report = check_completeness(&spec);
        assert!(report.is_sufficiently_complete(), "{}", report.prompts());
    }

    #[test]
    fn axiom_counts_are_reported() {
        let spec = queue_spec(true);
        let report = check_completeness(&spec);
        let front = spec.sig().find_op("FRONT").unwrap();
        assert_eq!(report.for_op(front).unwrap().axiom_count(), 2);
    }
}
