//! # adt-verify — implementations checked against their specifications
//!
//! §4 of the paper develops a three-layer story: the abstract type
//! `Symboltable`, a *representation* of it as a Stack of Arrays with an
//! abstraction function Φ, and a proof — carried out "completely
//! mechanically by David Musser" — that the representation satisfies the
//! abstract axioms (axiom 9 only under *Assumption 1*, the paper's notion
//! of **conditional correctness**). This crate mechanizes each part of
//! that story:
//!
//! * [`Model`] / [`ModelBuilder`] — hook a Rust implementation up to a
//!   specification: one closure per operation over dynamic [`MValue`]s,
//!   with the paper's strict `error` propagation applied automatically.
//! * [`check_axioms`] — bounded model checking: every axiom is evaluated
//!   in the implementation over exhaustively enumerated (and optionally
//!   random) ground constructor arguments; counterexamples come back as
//!   bindings.
//! * [`check_representation`] — the value-level Φ check: for generated
//!   terms `t`, `Φ(eval_impl(t))` must equal the specification's normal
//!   form of `t` (a bounded homomorphism proof). Supports *environment
//!   assumptions* (term filters) for conditional correctness.
//! * [`prove_by_induction`] — generator induction (Wegbreit's term, cited
//!   by the paper) at the term level: case-split on constructors,
//!   skolemize, add induction hypotheses as rewrite rules, and close each
//!   case with the rewriting prover.
//! * [`differential_check`] — spec-driven differential testing: bounded
//!   ground terms are generated from the signature alone, and the model
//!   must be *invariant under rewriting* (`eval(t) ≡ eval(nf(t))`) — the
//!   axioms supply both the test cases and the expected results — while
//!   the parallel and sequential checkers must return identical reports.
//! * [`fault_isolation_check`] — robustness differential: inject worker
//!   panics, fuel exhaustion and slow chunks ([`parse_fault_plan`]) into
//!   the checking engine and verify that every *non-faulted* work item's
//!   verdict is byte-identical to a fault-free run.
//! * [`translate_obligations`] / [`verify_obligation`] — the §4 proof
//!   itself: translate each abstract axiom through the implementation
//!   (primed operations) and Φ, then prove the two sides equal with case
//!   analysis, optionally restricted by an assumption such as Assumption 1
//!   ("an identifier is never added to an empty symbol table").
//!
//! Every pass also has a `_session` variant that runs against a shared
//! [`adt_core::Session`], so normal forms derived by one check warm the
//! memo for the next ([`check_representation_session`],
//! [`verify_obligation_session`], [`differential_check_session`]) — or,
//! where memo sharing would be unsound because the pass extends the rule
//! set, at least crosses the id boundary without rebuilding terms
//! ([`prove_by_induction_session`]).
//!
//! See the `representation_proof` and `conditional_correctness`
//! integration tests for the full Symboltable development.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axiom_check;
mod differential;
mod eval;
mod fault;
mod gen;
mod homomorphism;
mod induction;
mod model;
mod rep;
mod value;

pub use axiom_check::{
    check_axioms, check_axioms_jobs, AxiomCheckConfig, AxiomCheckReport, CounterExample,
};
pub use differential::{
    differential_check, differential_check_session, differential_spec_check,
    differential_spec_check_session, DifferentialConfig, DifferentialReport, OracleMismatch,
};
pub use eval::{eval_ground, eval_with_env};
pub use fault::{
    fault_isolation_check, parse_fault_plan, FaultIsolationReport, IsolationMismatch,
    PhaseIsolation,
};
pub use gen::{enumerate_ctor_terms, enumerate_terms, sample_ctor_term, TermPool};
pub use homomorphism::{
    check_representation, check_representation_session, RepCheckConfig, RepCheckReport,
    RepMismatch,
};
pub use induction::{
    instantiate_case, prove_by_induction, prove_by_induction_session, with_lemma, InductionOutcome,
};
pub use model::{Model, ModelBuilder, TableModel};
pub use rep::{
    translate_obligations, verify_obligation, verify_obligation_session, Obligation,
    ObligationKind, ObligationOutcome, OpMap, ProofConfig,
};
pub use value::MValue;
