//! Representation proofs: the mechanization of §4.
//!
//! Given an abstract specification (Symboltable, axioms 1–9), a *combined*
//! concrete specification (Stack + Array axioms, definitions of the primed
//! operations, and the abstraction function Φ as rewrite rules), and a map
//! from abstract to concrete operation names, [`translate_obligations`]
//! produces one proof obligation per abstract axiom:
//!
//! * if the axiom's range is the type being defined:
//!   `Φ(f'(x*')) = Φ(z')` (case (a) in the paper);
//! * otherwise: `f'(x*') = z'` (case (b)).
//!
//! [`verify_obligation`] then proves each obligation by normalization with
//! boolean case analysis, instantiating concrete variables over
//! constructors as needed — optionally *restricted* to a subset of
//! constructors, which is how environment assumptions like Assumption 1
//! ("an identifier is never added to an empty symbol table", i.e. stack
//! variables range over `PUSH`-terms only) enter the proof. This is the
//! paper's **conditional correctness**.

use std::collections::HashMap;
use std::sync::Arc;

use adt_core::{display, OpId, Session, SortId, Spec, Term, VarId};
use adt_rewrite::{Proof, Rewriter};

use crate::induction::instantiate_case;

/// The name maps taking an abstract specification into a concrete one.
#[derive(Debug, Clone, Default)]
pub struct OpMap {
    ops: Vec<(String, String)>,
    sorts: Vec<(String, String)>,
}

impl OpMap {
    /// An empty map (names translate to themselves).
    pub fn new() -> Self {
        OpMap::default()
    }

    /// Maps the abstract operation `abs` to the concrete operation `conc`
    /// (e.g. `ADD` → `ADD'`).
    #[must_use]
    pub fn op(mut self, abs: &str, conc: &str) -> Self {
        self.ops.push((abs.to_owned(), conc.to_owned()));
        self
    }

    /// Maps the abstract sort `abs` to the concrete sort `conc`
    /// (e.g. `Symboltable` → `Stack`).
    #[must_use]
    pub fn sort(mut self, abs: &str, conc: &str) -> Self {
        self.sorts.push((abs.to_owned(), conc.to_owned()));
        self
    }

    fn op_name<'n>(&'n self, abs: &'n str) -> &'n str {
        self.ops
            .iter()
            .find(|(a, _)| a == abs)
            .map(|(_, c)| c.as_str())
            .unwrap_or(abs)
    }

    fn sort_name<'n>(&'n self, abs: &'n str) -> &'n str {
        self.sorts
            .iter()
            .find(|(a, _)| a == abs)
            .map(|(_, c)| c.as_str())
            .unwrap_or(abs)
    }
}

/// Which form a proof obligation takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// Range is the defined type: both sides are wrapped in Φ.
    Phi,
    /// Range is another sort: the translated sides are compared directly.
    Direct,
}

/// One translated proof obligation, expressed in the combined concrete
/// specification returned alongside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Label of the abstract axiom this obligation came from.
    pub label: String,
    /// Left side, in the combined specification.
    pub lhs: Term,
    /// Right side, in the combined specification.
    pub rhs: Term,
    /// Whether Φ wrapping was applied.
    pub kind: ObligationKind,
}

/// Translates every axiom of `abstract_spec` into a proof obligation over
/// (an extension of) `concrete`.
///
/// `phi` names the abstraction operation in the concrete specification
/// (required if any abstract axiom ranges over a sort of interest of the
/// abstract spec). Abstract variables are recreated in the concrete
/// signature with the same names and mapped sorts; the returned
/// specification is `concrete` plus those variables.
///
/// # Errors
///
/// Returns a description of the first unmappable name.
pub fn translate_obligations(
    abstract_spec: &Spec,
    concrete: &Spec,
    map: &OpMap,
    phi: Option<&str>,
) -> Result<(Spec, Vec<Obligation>), String> {
    let mut sig = concrete.sig().clone();
    let abs_sig = abstract_spec.sig();

    // Sort translation table.
    let mut sort_table: HashMap<SortId, SortId> = HashMap::new();
    for s in abs_sig.sort_ids() {
        let abs_name = abs_sig.sort(s).name();
        let conc_name = map.sort_name(abs_name);
        let conc = sig
            .find_sort(conc_name)
            .ok_or_else(|| format!("sort `{conc_name}` not found in the concrete spec"))?;
        sort_table.insert(s, conc);
    }

    // Operation translation table.
    let mut op_table: HashMap<OpId, OpId> = HashMap::new();
    for op in abs_sig.op_ids() {
        let abs_name = abs_sig.op(op).name();
        let conc_name = map.op_name(abs_name);
        let conc = sig
            .find_op(conc_name)
            .ok_or_else(|| format!("operation `{conc_name}` not found in the concrete spec"))?;
        op_table.insert(op, conc);
    }

    // Variable translation table (minting concrete variables as needed).
    let mut var_table: HashMap<VarId, VarId> = HashMap::new();
    for v in abs_sig.var_ids() {
        let name = abs_sig.var(v).name().to_owned();
        let sort = sort_table[&abs_sig.var(v).sort()];
        let conc = match sig.find_var(&name) {
            Some(existing) if sig.var(existing).sort() == sort => existing,
            Some(_) => sig
                .add_var(&format!("{name}~abs"), sort)
                .map_err(|e| e.to_string())?,
            None => sig.add_var(&name, sort).map_err(|e| e.to_string())?,
        };
        var_table.insert(v, conc);
    }

    let phi_op = match phi {
        Some(name) => Some(
            sig.find_op(name)
                .ok_or_else(|| format!("abstraction operation `{name}` not found"))?,
        ),
        None => None,
    };

    let ext = Spec::from_parts(
        concrete.name().to_owned(),
        sig,
        concrete.axioms().to_vec(),
        concrete.tois().to_vec(),
        concrete.params().to_vec(),
    )
    .map_err(|e| e.to_string())?;

    let mut obligations = Vec::new();
    for ax in abstract_spec.axioms() {
        let lhs = translate_term(ax.lhs(), &op_table, &sort_table, &var_table);
        let rhs = translate_term(ax.rhs(), &op_table, &sort_table, &var_table);
        let range = ax
            .lhs()
            .sort(abs_sig)
            .expect("axioms of a valid spec are well-sorted");
        let kind = if abstract_spec.is_toi(range) {
            ObligationKind::Phi
        } else {
            ObligationKind::Direct
        };
        let (lhs, rhs) = match kind {
            ObligationKind::Phi => {
                let phi_op = phi_op.ok_or_else(|| {
                    format!(
                        "axiom `{}` ranges over the defined type but no abstraction \
                         operation was given",
                        ax.label()
                    )
                })?;
                (Term::App(phi_op, vec![lhs]), Term::App(phi_op, vec![rhs]))
            }
            ObligationKind::Direct => (lhs, rhs),
        };
        obligations.push(Obligation {
            label: ax.label().to_owned(),
            lhs,
            rhs,
            kind,
        });
    }
    Ok((ext, obligations))
}

fn translate_term(
    term: &Term,
    ops: &HashMap<OpId, OpId>,
    sorts: &HashMap<SortId, SortId>,
    vars: &HashMap<VarId, VarId>,
) -> Term {
    match term {
        Term::Var(v) => Term::Var(vars[v]),
        Term::Error(s) => Term::Error(sorts[s]),
        Term::App(op, args) => Term::App(
            ops[op],
            args.iter()
                .map(|a| translate_term(a, ops, sorts, vars))
                .collect(),
        ),
        Term::Ite(ite) => Term::ite(
            translate_term(&ite.cond, ops, sorts, vars),
            translate_term(&ite.then_branch, ops, sorts, vars),
            translate_term(&ite.else_branch, ops, sorts, vars),
        ),
    }
}

/// Configuration for [`verify_obligation`].
#[derive(Debug, Clone)]
pub struct ProofConfig {
    /// Boolean case-split budget inside each normalization proof.
    pub max_splits: usize,
    /// How many rounds of constructor case analysis on variables.
    pub case_depth: usize,
    /// For each sort (by name), the constructors (by name) a variable of
    /// that sort may be instantiated with. Sorts not listed use all of
    /// their constructors. This is how environment assumptions enter:
    /// Assumption 1 is `restrict("Stack", ["PUSH"])`.
    pub restrictions: Vec<(String, Vec<String>)>,
    /// Rewriting fuel per normalization.
    pub fuel: u64,
}

impl Default for ProofConfig {
    fn default() -> Self {
        ProofConfig {
            max_splits: 8,
            case_depth: 3,
            restrictions: Vec::new(),
            fuel: 200_000,
        }
    }
}

impl ProofConfig {
    /// Adds a constructor restriction for a sort.
    #[must_use]
    pub fn restrict(mut self, sort: &str, ctors: &[&str]) -> Self {
        self.restrictions.push((
            sort.to_owned(),
            ctors.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }
}

/// The outcome of verifying one obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationOutcome {
    /// Proved in every case.
    Proved {
        /// Total leaf cases closed.
        cases: usize,
    },
    /// A case failed; all terms are rendered strings (the underlying
    /// extended specification is internal).
    Failed {
        /// The chain of case instantiations leading to the failure,
        /// rendered `var := CTOR(…)`.
        trail: Vec<String>,
        /// Boolean assumptions active on the failing path.
        assumptions: Vec<String>,
        /// Normal form of the left side.
        lhs_nf: String,
        /// Normal form of the right side.
        rhs_nf: String,
    },
}

impl ObligationOutcome {
    /// Whether the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, ObligationOutcome::Proved { .. })
    }
}

/// Verifies one obligation over the combined specification.
///
/// # Errors
///
/// Returns a rewriting error (fuel exhaustion) if normalization fails.
pub fn verify_obligation(
    spec: &Spec,
    ob: &Obligation,
    cfg: &ProofConfig,
) -> Result<ObligationOutcome, adt_rewrite::RewriteError> {
    let mut trail = Vec::new();
    verify_rec(spec, None, &ob.lhs, &ob.rhs, cfg, cfg.case_depth, 1, &mut trail)
}

/// [`verify_obligation`] with every rewriter in the case analysis warmed
/// by a shared [`Session`]'s memo.
///
/// The session must hold the *combined* specification the obligations
/// were translated into — build it with `Session::new(ext)` from the
/// extension [`translate_obligations`] returns. Sharing the memo down
/// the recursion is sound because [`instantiate_case`] extends the
/// signature with fresh *variables* only: the operation indices (which
/// the memo's structural hashes bake in) and the axiom set are unchanged
/// at every depth, so every rewriter in the proof computes the same
/// rewrite relation over the same hashes. Contrast
/// [`crate::induction::prove_by_induction`], which adds
/// induction-hypothesis *rules* per case and therefore must not share a
/// memo.
///
/// # Errors
///
/// Returns a rewriting error (fuel exhaustion) if normalization fails.
pub fn verify_obligation_session(
    session: &Session,
    ob: &Obligation,
    cfg: &ProofConfig,
) -> Result<ObligationOutcome, adt_rewrite::RewriteError> {
    let mut trail = Vec::new();
    verify_rec(
        session.spec(),
        Some(session),
        &ob.lhs,
        &ob.rhs,
        cfg,
        cfg.case_depth,
        1,
        &mut trail,
    )
}

#[allow(clippy::too_many_arguments)]
fn verify_rec(
    spec: &Spec,
    session: Option<&Session>,
    lhs: &Term,
    rhs: &Term,
    cfg: &ProofConfig,
    depth: usize,
    round: usize,
    trail: &mut Vec<String>,
) -> Result<ObligationOutcome, adt_rewrite::RewriteError> {
    let mut rw = Rewriter::new(spec).with_fuel(cfg.fuel);
    if let Some(session) = session {
        rw = rw.with_memo(Arc::clone(session.memo()));
    }
    match rw.prove_equal(lhs, rhs, cfg.max_splits)? {
        Proof::Proved { cases } => Ok(ObligationOutcome::Proved { cases }),
        Proof::Undecided {
            assumptions,
            lhs_nf,
            rhs_nf,
        } => {
            if depth > 0 {
                if let Some(var) = pick_split_var(spec, lhs, rhs) {
                    return split_var(spec, session, lhs, rhs, var, cfg, depth, round, trail);
                }
            }
            Ok(ObligationOutcome::Failed {
                trail: trail.clone(),
                assumptions: assumptions
                    .iter()
                    .map(|(t, b)| format!("{} = {b}", display::term(spec.sig(), t)))
                    .collect(),
                lhs_nf: display::term(spec.sig(), &lhs_nf).to_string(),
                rhs_nf: display::term(spec.sig(), &rhs_nf).to_string(),
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn split_var(
    spec: &Spec,
    session: Option<&Session>,
    lhs: &Term,
    rhs: &Term,
    var: VarId,
    cfg: &ProofConfig,
    depth: usize,
    round: usize,
    trail: &mut Vec<String>,
) -> Result<ObligationOutcome, adt_rewrite::RewriteError> {
    let sort = spec.sig().var(var).sort();
    let allowed = allowed_ctors(spec, sort, cfg);
    let mut total = 0;
    for ctor in allowed {
        let (ext, subst) = instantiate_case(spec, var, ctor, round);
        let case_lhs = subst.apply(lhs);
        let case_rhs = subst.apply(rhs);
        trail.push(format!(
            "{} := {}",
            spec.sig().var(var).name(),
            display::term(
                ext.sig(),
                subst.get(var).expect("case substitution binds var")
            )
        ));
        // The extension added variables only (see the soundness note on
        // `verify_obligation_session`), so the session memo stays valid.
        let outcome = verify_rec(
            &ext,
            session,
            &case_lhs,
            &case_rhs,
            cfg,
            depth - 1,
            round + 1,
            trail,
        )?;
        match outcome {
            ObligationOutcome::Proved { cases } => total += cases,
            failed @ ObligationOutcome::Failed { .. } => return Ok(failed),
        }
        trail.pop();
    }
    Ok(ObligationOutcome::Proved { cases: total })
}

/// The first variable of a splittable sort appearing in either side.
fn pick_split_var(spec: &Spec, lhs: &Term, rhs: &Term) -> Option<VarId> {
    let mut vars = lhs.vars();
    for v in rhs.vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.into_iter().find(|&v| {
        let sort = spec.sig().var(v).sort();
        spec.is_toi(sort) && spec.sig().constructors_of(sort).next().is_some()
    })
}

fn allowed_ctors(spec: &Spec, sort: SortId, cfg: &ProofConfig) -> Vec<OpId> {
    let sort_name = spec.sig().sort(sort).name();
    if let Some((_, names)) = cfg.restrictions.iter().find(|(s, _)| s == sort_name) {
        names.iter().filter_map(|n| spec.sig().find_op(n)).collect()
    } else {
        spec.sig().constructors_of(sort).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    /// Abstract spec: a counter with INC / IS_START?.
    fn abstract_counter() -> Spec {
        let mut b = SpecBuilder::new("Counter");
        let c = b.sort("Counter");
        let start = b.ctor("START", [], c);
        let inc = b.ctor("INC", [c], c);
        let is_start = b.op("IS_START?", [c], b.bool_sort());
        let dec = b.op("DEC", [c], c);
        let x = Term::Var(b.var("c", c));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("a1", b.app(is_start, [b.app(start, [])]), tt);
        b.axiom("a2", b.app(is_start, [b.app(inc, [x.clone()])]), ff);
        b.axiom("a3", b.app(dec, [b.app(start, [])]), Term::Error(c));
        b.axiom("a4", b.app(dec, [b.app(inc, [x.clone()])]), x);
        b.build().unwrap()
    }

    /// Concrete spec: counters represented as stacks of unit marks, with
    /// primed ops and Φ.
    fn concrete_stack(correct_dec: bool) -> Spec {
        let mut b = SpecBuilder::new("MarkStack");
        let s = b.sort("Marks");
        let c = b.sort("Counter"); // the abstract sort, target of Φ
        let start_abs = b.ctor("START", [], c);
        let inc_abs = b.ctor("INC", [c], c);
        let nil = b.ctor("NIL", [], s);
        let mark = b.ctor("MARK", [s], s);
        let start_p = b.op("START'", [], s);
        let inc_p = b.op("INC'", [s], s);
        let is_start_p = b.op("IS_START?'", [s], b.bool_sort());
        let dec_p = b.op("DEC'", [s], s);
        let phi = b.op("PHI", [s], c);
        let m = Term::Var(b.var("m", s));
        let tt = b.tt();
        let ff = b.ff();
        // Primed definitions.
        b.axiom("d1", b.app(start_p, []), b.app(nil, []));
        b.axiom("d2", b.app(inc_p, [m.clone()]), b.app(mark, [m.clone()]));
        b.axiom("d3", b.app(is_start_p, [b.app(nil, [])]), tt);
        b.axiom("d4", b.app(is_start_p, [b.app(mark, [m.clone()])]), ff);
        b.axiom("d5", b.app(dec_p, [b.app(nil, [])]), Term::Error(s));
        if correct_dec {
            b.axiom("d6", b.app(dec_p, [b.app(mark, [m.clone()])]), m.clone());
        } else {
            // Wrong: DEC' of a mark keeps the mark (off by one).
            b.axiom(
                "d6",
                b.app(dec_p, [b.app(mark, [m.clone()])]),
                b.app(mark, [m.clone()]),
            );
        }
        // Φ.
        b.axiom("phi1", b.app(phi, [b.app(nil, [])]), b.app(start_abs, []));
        b.axiom(
            "phi2",
            b.app(phi, [b.app(mark, [m.clone()])]),
            b.app(inc_abs, [b.app(phi, [m])]),
        );
        b.build().unwrap()
    }

    fn op_map() -> OpMap {
        OpMap::new()
            .sort("Counter", "Marks")
            .op("START", "START'")
            .op("INC", "INC'")
            .op("IS_START?", "IS_START?'")
            .op("DEC", "DEC'")
    }

    #[test]
    fn translation_produces_phi_and_direct_obligations() {
        let abs = abstract_counter();
        let conc = concrete_stack(true);
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();
        assert_eq!(obs.len(), 4);
        assert_eq!(obs[0].kind, ObligationKind::Direct); // IS_START? : Bool
        assert_eq!(obs[2].kind, ObligationKind::Phi); // DEC : Counter
                                                      // Phi obligations are Φ-wrapped applications.
        let phi = ext.sig().find_op("PHI").unwrap();
        assert!(matches!(&obs[2].lhs, Term::App(op, _) if *op == phi));
        // The abstract variable `c` exists in the extension with sort Marks.
        let v = ext.sig().find_var("c").unwrap();
        assert_eq!(
            ext.sig().var(v).sort(),
            ext.sig().find_sort("Marks").unwrap()
        );
    }

    #[test]
    fn correct_representation_proves_all_obligations() {
        let abs = abstract_counter();
        let conc = concrete_stack(true);
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();
        let cfg = ProofConfig::default();
        for ob in &obs {
            let outcome = verify_obligation(&ext, ob, &cfg).unwrap();
            assert!(outcome.is_proved(), "axiom {}: {outcome:?}", ob.label);
        }
    }

    #[test]
    fn session_proof_agrees_with_fresh_and_shares_the_memo() {
        let abs = abstract_counter();
        let conc = concrete_stack(true);
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();
        let cfg = ProofConfig::default();
        let session = Session::new(ext.clone());
        for ob in &obs {
            let fresh = verify_obligation(&ext, ob, &cfg).unwrap();
            let shared = verify_obligation_session(&session, ob, &cfg).unwrap();
            assert_eq!(shared, fresh, "axiom {}", ob.label);
            assert!(shared.is_proved(), "axiom {}: {shared:?}", ob.label);
        }
        // Ground facts (e.g. IS_START?'(START') → TRUE) accumulated in
        // the shared memo across obligations.
        let stats = session.stats();
        assert!(stats.memo_entries > 0, "{stats:?}");
    }

    #[test]
    fn broken_representation_fails_the_right_axiom() {
        let abs = abstract_counter();
        let conc = concrete_stack(false);
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();
        let cfg = ProofConfig::default();
        let mut failed = Vec::new();
        for ob in &obs {
            if !verify_obligation(&ext, ob, &cfg).unwrap().is_proved() {
                failed.push(ob.label.clone());
            }
        }
        // Only DEC's inductive axiom a4 breaks.
        assert_eq!(failed, vec!["a4".to_owned()]);
    }

    #[test]
    fn failure_reports_carry_the_case_trail() {
        let abs = abstract_counter();
        let conc = concrete_stack(false);
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();
        let a4 = obs.iter().find(|o| o.label == "a4").unwrap();
        let outcome = verify_obligation(&ext, a4, &ProofConfig::default()).unwrap();
        let ObligationOutcome::Failed { lhs_nf, rhs_nf, .. } = outcome else {
            panic!("expected failure");
        };
        assert_ne!(lhs_nf, rhs_nf);
        assert!(
            lhs_nf.contains("INC") || rhs_nf.contains("INC"),
            "{lhs_nf} vs {rhs_nf}"
        );
    }

    #[test]
    fn restrictions_limit_case_analysis() {
        // With DEC' broken only on NIL (axiom d5 made wrong), restricting
        // Marks to MARK-built values (the "legal environment") hides the
        // failure — conditional correctness in miniature.
        let abs = abstract_counter();
        let mut b = SpecBuilder::new("MarkStack");
        let s = b.sort("Marks");
        let c = b.sort("Counter");
        let start_abs = b.ctor("START", [], c);
        let inc_abs = b.ctor("INC", [c], c);
        let nil = b.ctor("NIL", [], s);
        let mark = b.ctor("MARK", [s], s);
        let start_p = b.op("START'", [], s);
        let inc_p = b.op("INC'", [s], s);
        let is_start_p = b.op("IS_START?'", [s], b.bool_sort());
        let dec_p = b.op("DEC'", [s], s);
        let phi = b.op("PHI", [s], c);
        let m = Term::Var(b.var("m", s));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("d1", b.app(start_p, []), b.app(nil, []));
        b.axiom("d2", b.app(inc_p, [m.clone()]), b.app(mark, [m.clone()]));
        b.axiom("d3", b.app(is_start_p, [b.app(nil, [])]), tt);
        b.axiom("d4", b.app(is_start_p, [b.app(mark, [m.clone()])]), ff);
        // WRONG on the boundary: DEC'(NIL) = NIL instead of error.
        b.axiom("d5", b.app(dec_p, [b.app(nil, [])]), b.app(nil, []));
        b.axiom("d6", b.app(dec_p, [b.app(mark, [m.clone()])]), m.clone());
        b.axiom("phi1", b.app(phi, [b.app(nil, [])]), b.app(start_abs, []));
        b.axiom(
            "phi2",
            b.app(phi, [b.app(mark, [m.clone()])]),
            b.app(inc_abs, [b.app(phi, [m])]),
        );
        let conc = b.build().unwrap();
        let (ext, obs) = translate_obligations(&abs, &conc, &op_map(), Some("PHI")).unwrap();

        // a3 (DEC(START) = error) mentions no variable: still fails — the
        // boundary bug is in a constant case.
        let a3 = obs.iter().find(|o| o.label == "a3").unwrap();
        assert!(!verify_obligation(&ext, a3, &ProofConfig::default())
            .unwrap()
            .is_proved());

        // a4 (DEC(INC(c)) = c): proved unrestricted too (the bug is only
        // on NIL *as the direct argument of DEC'*, and INC'(m) is never
        // NIL). Restricting changes nothing here but exercises the path.
        let a4 = obs.iter().find(|o| o.label == "a4").unwrap();
        let restricted = ProofConfig::default().restrict("Marks", &["MARK"]);
        assert!(verify_obligation(&ext, a4, &restricted)
            .unwrap()
            .is_proved());
    }
}
