//! Dynamic values flowing through implementation models.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A value produced by an implementation model.
///
/// The primitive variants cover the sorts every specification shares
/// (booleans, and the small scalar types typically used to instantiate
/// parameter sorts such as `Identifier` or `AttributeList`); `Data` holds
/// an implementation-specific structure (a linked stack, a hash array, a
/// ring buffer, …) behind `Arc<dyn Any + Send + Sync>` — `Arc` rather
/// than `Rc` so values can cross the parallel checker's worker threads.
///
/// `Error` is the paper's distinguished error value; [`Model::apply`]
/// propagates it strictly before an implementation closure ever runs.
///
/// [`Model::apply`]: crate::Model::apply
#[derive(Clone)]
pub enum MValue {
    /// A boolean (the built-in `Bool` sort).
    Bool(bool),
    /// A small integer (commonly used for parameter sorts).
    Int(i64),
    /// A string (commonly used for `Identifier`-like parameter sorts).
    Str(String),
    /// The distinguished error value.
    Error,
    /// An implementation-specific structure.
    Data(Arc<dyn Any + Send + Sync>),
}

impl MValue {
    /// Wraps an implementation structure.
    pub fn data<T: Send + Sync + 'static>(value: T) -> Self {
        MValue::Data(Arc::new(value))
    }

    /// Downcasts a `Data` value to a concrete type.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        match self {
            MValue::Data(rc) => rc.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            MValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            MValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the error value.
    pub fn is_error(&self) -> bool {
        matches!(self, MValue::Error)
    }

    /// Structural equality for primitive variants; `None` when either side
    /// is `Data` (implementation equality is the model's business).
    pub fn prim_eq(&self, other: &MValue) -> Option<bool> {
        match (self, other) {
            (MValue::Bool(a), MValue::Bool(b)) => Some(a == b),
            (MValue::Int(a), MValue::Int(b)) => Some(a == b),
            (MValue::Str(a), MValue::Str(b)) => Some(a == b),
            (MValue::Error, MValue::Error) => Some(true),
            (MValue::Error, _) | (_, MValue::Error) => Some(false),
            (MValue::Data(_), _) | (_, MValue::Data(_)) => None,
            // Mixed primitive kinds cannot denote equal values.
            _ => Some(false),
        }
    }
}

impl fmt::Debug for MValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MValue::Bool(b) => write!(f, "{b}"),
            MValue::Int(i) => write!(f, "{i}"),
            MValue::Str(s) => write!(f, "{s:?}"),
            MValue::Error => f.write_str("error"),
            MValue::Data(_) => f.write_str("<data>"),
        }
    }
}

impl From<bool> for MValue {
    fn from(b: bool) -> Self {
        MValue::Bool(b)
    }
}

impl From<i64> for MValue {
    fn from(i: i64) -> Self {
        MValue::Int(i)
    }
}

impl From<&str> for MValue {
    fn from(s: &str) -> Self {
        MValue::Str(s.to_owned())
    }
}

impl From<String> for MValue {
    fn from(s: String) -> Self {
        MValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_equality() {
        assert_eq!(MValue::Bool(true).prim_eq(&MValue::Bool(true)), Some(true));
        assert_eq!(MValue::Int(1).prim_eq(&MValue::Int(2)), Some(false));
        assert_eq!(MValue::Str("a".into()).prim_eq(&"a".into()), Some(true));
        assert_eq!(MValue::Error.prim_eq(&MValue::Error), Some(true));
        assert_eq!(MValue::Error.prim_eq(&MValue::Int(0)), Some(false));
        assert_eq!(MValue::data(3u8).prim_eq(&MValue::Int(0)), None);
    }

    #[test]
    fn downcasting() {
        #[derive(Debug, PartialEq)]
        struct Stack(Vec<u32>);
        let v = MValue::data(Stack(vec![1, 2]));
        assert_eq!(v.downcast::<Stack>(), Some(&Stack(vec![1, 2])));
        assert!(v.downcast::<u32>().is_none());
        assert!(MValue::Int(1).downcast::<Stack>().is_none());
    }

    #[test]
    fn accessors() {
        assert_eq!(MValue::Bool(true).as_bool(), Some(true));
        assert_eq!(MValue::Int(7).as_int(), Some(7));
        assert_eq!(MValue::from("id").as_str(), Some("id"));
        assert!(MValue::Error.is_error());
        assert!(!MValue::Int(0).is_error());
        assert_eq!(MValue::Int(7).as_bool(), None);
    }

    #[test]
    fn debug_is_nonempty() {
        for v in [
            MValue::Bool(false),
            MValue::Int(-3),
            MValue::from("x"),
            MValue::Error,
            MValue::data(()),
        ] {
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
