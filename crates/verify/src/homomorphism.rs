//! Value-level abstraction-function checking.
//!
//! A representation of a type comes with "a function Φ that maps terms in
//! the model domain onto their representatives in the abstract domain"
//! (§4). For an implementation to be correct, evaluation and abstraction
//! must commute: for every generated term `t`,
//!
//! ```text
//! Φ(eval_impl(t))  =  normal-form(t)
//! ```
//!
//! where the right side is computed by the specification's rewrite system.
//! This module checks that equation over exhaustively generated ground
//! terms — the bounded, value-level counterpart of the term-level proofs
//! in [`crate::rep`]. Since Φ⁻¹ may be one-to-many (the paper's
//! ring-buffer example), the comparison is always made in the *abstract*
//! domain.

use adt_core::{display, Session, Spec, Term};
use adt_rewrite::Rewriter;

use crate::eval::eval_ground;
use crate::gen::enumerate_terms;
use crate::model::Model;
use crate::value::MValue;

/// Configuration for [`check_representation`].
pub struct RepCheckConfig<'f> {
    /// Depth bound for constructor arguments of generated terms.
    pub max_arg_depth: usize,
    /// Cap on generated terms per operation.
    pub cap_per_op: usize,
    /// Rewriting fuel.
    pub fuel: u64,
    /// Environment assumption: only terms satisfying the predicate are
    /// checked (conditional correctness, e.g. Assumption 1). `None`
    /// checks everything.
    pub assumption: Option<&'f dyn Fn(&Term) -> bool>,
}

impl Default for RepCheckConfig<'_> {
    fn default() -> Self {
        RepCheckConfig {
            max_arg_depth: 4,
            cap_per_op: 400,
            fuel: 1_000_000,
            assumption: None,
        }
    }
}

impl std::fmt::Debug for RepCheckConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepCheckConfig")
            .field("max_arg_depth", &self.max_arg_depth)
            .field("cap_per_op", &self.cap_per_op)
            .field("fuel", &self.fuel)
            .field("assumption", &self.assumption.is_some())
            .finish()
    }
}

/// A term where evaluation and abstraction disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepMismatch {
    /// The offending term, rendered.
    pub term: String,
    /// The specification's normal form, rendered.
    pub spec_nf: String,
    /// What `Φ(eval_impl(term))` produced, rendered (or a description of
    /// the value for non-abstract sorts).
    pub via_impl: String,
}

/// The result of a representation check.
#[derive(Debug, Clone)]
pub struct RepCheckReport {
    /// Disagreements found (empty on success).
    pub mismatches: Vec<RepMismatch>,
    /// Terms checked.
    pub terms_checked: usize,
    /// Terms skipped: filtered out by the assumption, or whose
    /// specification normal form was not a canonical value (an incomplete
    /// spec leaves observers stuck).
    pub terms_skipped: usize,
}

impl RepCheckReport {
    /// Whether the implementation commutes with abstraction on every
    /// checked term.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "representation check: {} term(s) checked, {} skipped, {} mismatch(es)\n",
            self.terms_checked,
            self.terms_skipped,
            self.mismatches.len()
        );
        for m in self.mismatches.iter().take(10) {
            out.push_str(&format!(
                "  {}: spec says {}, implementation gives {}\n",
                m.term, m.spec_nf, m.via_impl
            ));
        }
        out
    }
}

/// Checks that `Φ ∘ eval_impl = normal-form` over generated ground terms.
///
/// For terms of a sort of interest, `phi` abstracts the implementation
/// value to a term, which is then normalized and compared with the
/// specification's normal form. For terms of other sorts (observers), the
/// specification's normal form is evaluated back in the model and compared
/// with [`Model::values_equal`].
pub fn check_representation(
    model: &dyn Model,
    phi: &dyn Fn(&MValue) -> Term,
    cfg: &RepCheckConfig<'_>,
) -> RepCheckReport {
    let rw = Rewriter::new(model.spec()).with_fuel(cfg.fuel);
    check_representation_with(&rw, model, phi, cfg)
}

/// [`check_representation`] with the rewriter borrowing a shared
/// [`Session`]'s compiled rules and memo, so normal forms computed here
/// stay warm for every later check against the same session (and vice
/// versa).
///
/// The session must have been built over the same specification the
/// model implements: the memo is keyed by structural hashes, which bake
/// in operation indices, so mixing signatures would cross facts between
/// unrelated terms. The report is identical to a fresh
/// [`check_representation`] run — a warm memo changes how fast a normal
/// form is found, never which one.
pub fn check_representation_session(
    session: &Session,
    model: &dyn Model,
    phi: &dyn Fn(&MValue) -> Term,
    cfg: &RepCheckConfig<'_>,
) -> RepCheckReport {
    let rw = Rewriter::for_session(session).with_fuel(cfg.fuel);
    check_representation_with(&rw, model, phi, cfg)
}

fn check_representation_with(
    rw: &Rewriter<'_>,
    model: &dyn Model,
    phi: &dyn Fn(&MValue) -> Term,
    cfg: &RepCheckConfig<'_>,
) -> RepCheckReport {
    let spec: &Spec = model.spec();
    let sig = spec.sig();

    let mut mismatches = Vec::new();
    let mut checked = 0;
    let mut skipped = 0;

    for term in enumerate_terms(sig, cfg.max_arg_depth, cfg.cap_per_op) {
        if let Some(assume) = cfg.assumption {
            if !assume(&term) {
                skipped += 1;
                continue;
            }
        }
        let sort = term.sort(sig).expect("generated terms are well-sorted");
        let Ok(spec_nf) = rw.normalize(&term) else {
            skipped += 1;
            continue;
        };
        if !spec_nf.is_constructor_term(sig) {
            // The specification does not decide this term (insufficient
            // completeness); nothing to compare against.
            skipped += 1;
            continue;
        }
        let impl_value = eval_ground(model, &term);
        checked += 1;

        if spec.is_toi(sort) {
            let abstracted = if impl_value.is_error() {
                Term::Error(sort)
            } else {
                phi(&impl_value)
            };
            let Ok(abstracted_nf) = rw.normalize(&abstracted) else {
                skipped += 1;
                continue;
            };
            if abstracted_nf != spec_nf {
                mismatches.push(RepMismatch {
                    term: display::term(sig, &term).to_string(),
                    spec_nf: display::term(sig, &spec_nf).to_string(),
                    via_impl: display::term(sig, &abstracted_nf).to_string(),
                });
            }
        } else {
            // Observer result: evaluate the canonical normal form in the
            // model and compare values.
            let expected = eval_ground(model, &spec_nf);
            if !model.values_equal(sort, &impl_value, &expected) {
                mismatches.push(RepMismatch {
                    term: display::term(sig, &term).to_string(),
                    spec_nf: display::term(sig, &spec_nf).to_string(),
                    via_impl: format!("{impl_value:?}"),
                });
            }
        }
    }

    RepCheckReport {
        mismatches,
        terms_checked: checked,
        terms_skipped: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use adt_core::SpecBuilder;

    /// Nat with DOUBLE, implemented over i64.
    fn nat_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let nat = b.sort("Nat");
        let zero = b.ctor("ZERO", [], nat);
        let succ = b.ctor("SUCC", [nat], nat);
        let double = b.op("DOUBLE", [nat], nat);
        let is_zero = b.op("IS_ZERO?", [nat], b.bool_sort());
        let n = Term::Var(b.var("n", nat));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [n.clone()])]), ff);
        b.axiom("d1", b.app(double, [b.app(zero, [])]), b.app(zero, []));
        b.axiom(
            "d2",
            b.app(double, [b.app(succ, [n.clone()])]),
            b.app(succ, [b.app(succ, [b.app(double, [n])])]),
        );
        b.build().unwrap()
    }

    fn int_model(spec: &Spec, broken: bool) -> crate::TableModel<'_> {
        let mut mb = ModelBuilder::new(spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |a| MValue::Int(a[0].as_int().unwrap() + 1))
            .op("IS_ZERO?", |a| MValue::Bool(a[0].as_int() == Some(0)));
        mb = if broken {
            mb.op("DOUBLE", |a| MValue::Int(a[0].as_int().unwrap() * 2 + 1))
        } else {
            mb.op("DOUBLE", |a| MValue::Int(a[0].as_int().unwrap() * 2))
        };
        mb.build().unwrap()
    }

    fn int_phi(spec: &Spec) -> impl Fn(&MValue) -> Term + '_ {
        move |v: &MValue| {
            let zero = spec.sig().find_op("ZERO").unwrap();
            let succ = spec.sig().find_op("SUCC").unwrap();
            let mut t = Term::constant(zero);
            for _ in 0..v.as_int().unwrap() {
                t = Term::App(succ, vec![t]);
            }
            t
        }
    }

    #[test]
    fn correct_implementation_commutes_with_phi() {
        let spec = nat_spec();
        let model = int_model(&spec, false);
        let phi = int_phi(&spec);
        let report = check_representation(&model, &phi, &RepCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
        assert!(report.terms_checked > 10);
    }

    #[test]
    fn broken_double_is_caught_with_the_term() {
        let spec = nat_spec();
        let model = int_model(&spec, true);
        let phi = int_phi(&spec);
        let report = check_representation(&model, &phi, &RepCheckConfig::default());
        assert!(!report.passed());
        // Every mismatch is a DOUBLE term; observers still agree.
        assert!(
            report
                .mismatches
                .iter()
                .all(|m| m.term.starts_with("DOUBLE")),
            "{}",
            report.summary()
        );
        let first = &report.mismatches[0];
        assert_ne!(first.spec_nf, first.via_impl);
    }

    #[test]
    fn assumption_filters_terms() {
        let spec = nat_spec();
        let model = int_model(&spec, true);
        let phi = int_phi(&spec);
        // Assume DOUBLE is never used: the broken op goes unnoticed —
        // conditional correctness.
        let double = spec.sig().find_op("DOUBLE").unwrap();
        let no_double = move |t: &Term| !matches!(t, Term::App(op, _) if *op == double);
        let cfg = RepCheckConfig {
            assumption: Some(&no_double),
            ..RepCheckConfig::default()
        };
        let report = check_representation(&model, &phi, &cfg);
        assert!(report.passed(), "{}", report.summary());
        assert!(report.terms_skipped > 0);
    }

    #[test]
    fn session_check_agrees_with_fresh_and_warms_the_memo() {
        let spec = nat_spec();
        let model = int_model(&spec, false);
        let phi = int_phi(&spec);
        let fresh = check_representation(&model, &phi, &RepCheckConfig::default());

        let session = Session::new(spec.clone());
        let shared = check_representation_session(&session, &model, &phi, &RepCheckConfig::default());
        assert_eq!(shared.mismatches, fresh.mismatches);
        assert_eq!(shared.terms_checked, fresh.terms_checked);
        assert_eq!(shared.terms_skipped, fresh.terms_skipped);
        // The ground facts derived here live in the session's memo now.
        let stats = session.stats();
        assert!(stats.memo_entries > 0, "{stats:?}");

        // A second run over the same session is answered from the memo.
        let rerun = check_representation_session(&session, &model, &phi, &RepCheckConfig::default());
        assert_eq!(rerun.mismatches, fresh.mismatches);
        assert!(session.stats().memo_hits > 0);
    }

    #[test]
    fn observer_disagreements_are_value_level() {
        let spec = nat_spec();
        // IS_ZERO? inverted.
        let model = ModelBuilder::new(&spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |a| MValue::Int(a[0].as_int().unwrap() + 1))
            .op("DOUBLE", |a| MValue::Int(a[0].as_int().unwrap() * 2))
            .op("IS_ZERO?", |a| MValue::Bool(a[0].as_int() != Some(0)))
            .build()
            .unwrap();
        let phi = int_phi(&spec);
        let report = check_representation(&model, &phi, &RepCheckConfig::default());
        assert!(!report.passed());
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.term.starts_with("IS_ZERO?")));
    }
}
