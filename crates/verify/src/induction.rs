//! Generator induction (Wegbreit [23], cited in §4).
//!
//! To prove an equation `lhs = rhs` universally in a variable `x` of a
//! defined sort, case-split `x` over the sort's constructors. In the case
//! `x = c(y₁, …, yₙ)`, the `yᵢ` become fresh *skolem constants* and, for
//! every recursive argument (same sort as `x`), the equation instantiated
//! at that argument is available as an **induction hypothesis** — an extra
//! rewrite rule. Each case is then closed by the normalization prover.

use adt_core::{OpId, Session, SortId, Spec, Subst, Term, TermId, VarId};
use adt_rewrite::{Proof, Rewriter, Rule, RuleSet};

/// The outcome of an induction proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InductionOutcome {
    /// Every constructor case closed.
    Proved {
        /// One entry per constructor case: (constructor name, leaf cases
        /// closed by the boolean splitter).
        cases: Vec<(String, usize)>,
    },
    /// Some case did not close; the normal forms are rendered against the
    /// extended (skolemized) specification's signature.
    Failed {
        /// Name of the constructor case that failed.
        case: String,
        /// Rendered normal form of the left side in that case.
        lhs_nf: String,
        /// Rendered normal form of the right side in that case.
        rhs_nf: String,
    },
}

impl InductionOutcome {
    /// Whether the proof succeeded.
    pub fn is_proved(&self) -> bool {
        matches!(self, InductionOutcome::Proved { .. })
    }
}

/// Attempts to prove `lhs = rhs` for all values of `ind_var` by structural
/// induction over the constructors of `ind_var`'s sort.
///
/// `max_splits` bounds the boolean case analysis inside each constructor
/// case (see [`Rewriter::prove_equal`]).
///
/// # Errors
///
/// Returns a rewriting error (fuel exhaustion) if some case fails to
/// normalize.
pub fn prove_by_induction(
    spec: &Spec,
    lhs: &Term,
    rhs: &Term,
    ind_var: VarId,
    max_splits: usize,
) -> Result<InductionOutcome, adt_rewrite::RewriteError> {
    let sort = spec.sig().var(ind_var).sort();
    let ctors: Vec<OpId> = spec.sig().constructors_of(sort).collect();
    assert!(
        !ctors.is_empty(),
        "cannot induct over sort `{}`: it has no constructors",
        spec.sig().sort(sort).name()
    );

    let mut cases = Vec::new();
    for ctor in ctors {
        let ctor_name = spec.sig().op(ctor).name().to_owned();

        // Extend a copy of the spec with skolem constants for the
        // constructor's arguments.
        let mut sig = spec.sig().clone();
        let arg_sorts: Vec<SortId> = sig.op(ctor).args().to_vec();
        let mut skolems = Vec::with_capacity(arg_sorts.len());
        for (i, &arg_sort) in arg_sorts.iter().enumerate() {
            let mut n = i + 1;
            let sk = loop {
                let name = format!("sk{n}_{}", sig.sort(arg_sort).name().to_lowercase());
                match sig.add_ctor(&name, Vec::new(), arg_sort) {
                    Ok(op) => break op,
                    Err(_) => n += arg_sorts.len(),
                }
            };
            skolems.push((sk, arg_sort));
        }
        let ext = Spec::from_parts(
            spec.name().to_owned(),
            sig,
            spec.axioms().to_vec(),
            spec.tois().to_vec(),
            spec.params().to_vec(),
        )
        .expect("adding skolem constants keeps the spec valid");

        // The case instantiation x ↦ c(sk₁, …, skₙ).
        let case_term = Term::App(
            ctor,
            skolems.iter().map(|&(sk, _)| Term::constant(sk)).collect(),
        );
        let case_subst = Subst::single(ind_var, case_term);

        // Induction hypotheses for recursive arguments.
        let mut rules = RuleSet::from_spec(&ext);
        for (k, &(sk, arg_sort)) in skolems.iter().enumerate() {
            if arg_sort != sort {
                continue;
            }
            let ih_subst = Subst::single(ind_var, Term::constant(sk));
            let ih_lhs = ih_subst.apply(lhs);
            let ih_rhs = ih_subst.apply(rhs);
            if matches!(ih_lhs, Term::App(_, _)) {
                rules.add(Rule::new(format!("IH{}", k + 1), ih_lhs, ih_rhs));
            }
        }

        let rw = Rewriter::with_rules(&ext, rules);
        let goal_lhs = case_subst.apply(lhs);
        let goal_rhs = case_subst.apply(rhs);
        match rw.prove_equal(&goal_lhs, &goal_rhs, max_splits)? {
            Proof::Proved { cases: leaf } => cases.push((ctor_name, leaf)),
            Proof::Undecided { lhs_nf, rhs_nf, .. } => {
                return Ok(InductionOutcome::Failed {
                    case: ctor_name,
                    lhs_nf: adt_core::display::term(ext.sig(), &lhs_nf).to_string(),
                    rhs_nf: adt_core::display::term(ext.sig(), &rhs_nf).to_string(),
                });
            }
        }
    }
    Ok(InductionOutcome::Proved { cases })
}

/// [`prove_by_induction`] over goals interned in a shared [`Session`].
///
/// The goal sides arrive as ids into the session's arena and are
/// materialized exactly once at this boundary. Unlike the other verify
/// passes, the per-case rewriters deliberately do **not** share the
/// session's memo: every constructor case extends the specification with
/// induction-hypothesis *rules* (and skolem constructors), and a normal
/// form memoized under the base rules may reduce further once an
/// induction hypothesis is available — a shared memo would hand back
/// stale normal forms. The session contributes the id boundary and the
/// shared arena here, not the cache.
///
/// # Errors
///
/// Returns a rewriting error (fuel exhaustion) if some case fails to
/// normalize.
pub fn prove_by_induction_session(
    session: &Session,
    lhs: TermId,
    rhs: TermId,
    ind_var: VarId,
    max_splits: usize,
) -> Result<InductionOutcome, adt_rewrite::RewriteError> {
    let lhs = session.term(lhs);
    let rhs = session.term(rhs);
    prove_by_induction(session.spec(), &lhs, &rhs, ind_var, max_splits)
}

/// Returns a copy of the specification with an extra axiom — typically a
/// lemma previously proved (e.g. by [`prove_by_induction`]) that a larger
/// proof needs as a rewrite rule.
///
/// This is how multi-lemma induction proofs compose: prove the lemma,
/// install it, prove the theorem in the extended specification. The §5
/// claim that algebraic specifications provide "a set of powerful rules
/// of inference" is this function in action.
///
/// # Errors
///
/// Returns a validation error if the lemma is ill-formed as an axiom
/// (ill-sorted, variable-introducing right side, …).
pub fn with_lemma(
    spec: &Spec,
    label: &str,
    lhs: Term,
    rhs: Term,
) -> Result<Spec, adt_core::CoreError> {
    let mut axioms = spec.axioms().to_vec();
    axioms.push(adt_core::Axiom::new(label, lhs, rhs));
    Spec::from_parts(
        spec.name().to_owned(),
        spec.sig().clone(),
        axioms,
        spec.tois().to_vec(),
        spec.params().to_vec(),
    )
}

/// Instantiates `var ↦ ctor(fresh variables)` in a copy of the
/// specification, returning the extended spec and the substitution.
///
/// Unlike skolemization this keeps the arguments as *variables*, so a
/// subsequent round of case analysis can split them again — the mechanism
/// behind nested case analysis in representation proofs.
pub fn instantiate_case(spec: &Spec, var: VarId, ctor: OpId, round: usize) -> (Spec, Subst) {
    let mut sig = spec.sig().clone();
    let arg_sorts: Vec<SortId> = sig.op(ctor).args().to_vec();
    let mut fresh = Vec::with_capacity(arg_sorts.len());
    for (i, &arg_sort) in arg_sorts.iter().enumerate() {
        let mut n = i + 1;
        let v = loop {
            let name = format!("{}#{round}_{n}", sig.sort(arg_sort).name().to_lowercase());
            match sig.add_var(&name, arg_sort) {
                Ok(v) => break v,
                Err(_) => n += arg_sorts.len(),
            }
        };
        fresh.push(v);
    }
    let ext = Spec::from_parts(
        spec.name().to_owned(),
        sig,
        spec.axioms().to_vec(),
        spec.tois().to_vec(),
        spec.params().to_vec(),
    )
    .expect("adding variables keeps the spec valid");
    let case_term = Term::App(ctor, fresh.into_iter().map(Term::Var).collect());
    (ext, Subst::single(var, case_term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    /// Peano naturals with PLUS, the classic induction example.
    fn nat_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let nat = b.sort("Nat");
        let zero = b.ctor("ZERO", [], nat);
        let succ = b.ctor("SUCC", [nat], nat);
        let plus = b.op("PLUS", [nat, nat], nat);
        let n = Term::Var(b.var("n", nat));
        let m = Term::Var(b.var("m", nat));
        b.axiom("p1", b.app(plus, [b.app(zero, []), m.clone()]), m.clone());
        b.axiom(
            "p2",
            b.app(plus, [b.app(succ, [n.clone()]), m.clone()]),
            b.app(succ, [b.app(plus, [n, m])]),
        );
        b.build().unwrap()
    }

    #[test]
    fn plus_n_zero_needs_and_gets_induction() {
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        let lhs = spec.sig().apply("PLUS", vec![Term::Var(n), zero]).unwrap();
        let rhs = Term::Var(n);

        // Plain rewriting cannot prove it (PLUS recurses on its *first*
        // argument, which is a variable here)…
        let rw = Rewriter::new(&spec);
        assert!(!rw.prove_equal(&lhs, &rhs, 4).unwrap().is_proved());

        // …but induction over n closes both cases.
        let outcome = prove_by_induction(&spec, &lhs, &rhs, n, 4).unwrap();
        match &outcome {
            InductionOutcome::Proved { cases } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].0, "ZERO");
                assert_eq!(cases[1].0, "SUCC");
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn session_induction_matches_the_tree_prover() {
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        let lhs = spec.sig().apply("PLUS", vec![Term::Var(n), zero]).unwrap();
        let rhs = Term::Var(n);
        let tree = prove_by_induction(&spec, &lhs, &rhs, n, 4).unwrap();

        let session = Session::new(spec.clone());
        let lhs_id = session.intern(&lhs);
        let rhs_id = session.intern(&rhs);
        let via_ids = prove_by_induction_session(&session, lhs_id, rhs_id, n, 4).unwrap();
        assert_eq!(via_ids, tree);
        assert!(via_ids.is_proved());
    }

    #[test]
    fn false_equation_fails_with_a_case_report() {
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        // PLUS(n, ZERO) = ZERO is false for n = SUCC(…).
        let lhs = spec
            .sig()
            .apply("PLUS", vec![Term::Var(n), zero.clone()])
            .unwrap();
        let outcome = prove_by_induction(&spec, &lhs, &zero, n, 4).unwrap();
        match outcome {
            InductionOutcome::Failed {
                case,
                lhs_nf,
                rhs_nf,
            } => {
                assert_eq!(case, "SUCC");
                assert_ne!(lhs_nf, rhs_nf);
                assert!(lhs_nf.contains("SUCC"), "{lhs_nf}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn succ_plus_commutes_with_plus_succ() {
        // PLUS(n, SUCC(m)) = SUCC(PLUS(n, m)) — needs induction on n.
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let m = spec.sig().find_var("m").unwrap();
        let lhs = spec
            .sig()
            .apply(
                "PLUS",
                vec![
                    Term::Var(n),
                    spec.sig().apply("SUCC", vec![Term::Var(m)]).unwrap(),
                ],
            )
            .unwrap();
        let rhs = spec
            .sig()
            .apply(
                "SUCC",
                vec![spec
                    .sig()
                    .apply("PLUS", vec![Term::Var(n), Term::Var(m)])
                    .unwrap()],
            )
            .unwrap();
        let outcome = prove_by_induction(&spec, &lhs, &rhs, n, 4).unwrap();
        assert!(outcome.is_proved(), "{outcome:?}");
    }

    #[test]
    fn instantiate_case_produces_fresh_variables() {
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        let (ext, subst) = instantiate_case(&spec, n, succ, 1);
        let case = subst.get(n).unwrap();
        let Term::App(op, args) = case else { panic!() };
        assert_eq!(*op, succ);
        let Term::Var(fresh) = &args[0] else { panic!() };
        // The fresh variable exists only in the extended spec.
        assert!(ext.sig().var(*fresh).name().contains("nat#1"));
        assert_eq!(ext.sig().var_count(), spec.sig().var_count() + 1);
    }

    #[test]
    fn nested_instantiation_keeps_minting_names() {
        let spec = nat_spec();
        let n = spec.sig().find_var("n").unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        let (ext1, s1) = instantiate_case(&spec, n, succ, 1);
        let Term::App(_, args) = s1.get(n).unwrap() else {
            panic!()
        };
        let Term::Var(fresh1) = args[0] else { panic!() };
        let (ext2, s2) = instantiate_case(&ext1, fresh1, succ, 2);
        let Term::App(_, args2) = s2.get(fresh1).unwrap() else {
            panic!()
        };
        let Term::Var(fresh2) = args2[0] else {
            panic!()
        };
        assert_ne!(fresh1, fresh2);
        assert_eq!(ext2.sig().var_count(), spec.sig().var_count() + 2);
    }
}
