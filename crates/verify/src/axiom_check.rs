//! Bounded model checking of axioms against an implementation.
//!
//! "The basic procedure followed in verifying the inherent invariants is to
//! take each axiom … and [show] that the left-hand side of each axiom is
//! equivalent to the right-hand side" (§4). Here the showing is by
//! exhaustive evaluation over enumerated ground arguments (plus optional
//! random sampling at greater depths): not a proof for all inputs, but a
//! mechanical check that catches real implementation bugs immediately and
//! pairs with the term-level proofs in [`crate::rep`].

use std::collections::HashMap;

use adt_check::parallel::{run_indexed, CheckStats};
use adt_core::{display, DetRng, Term, VarId};

use crate::eval::eval_with_env;
use crate::gen::{sample_ctor_term, TermPool};
use crate::model::Model;
use crate::value::MValue;

/// Configuration for [`check_axioms`].
#[derive(Debug, Clone)]
pub struct AxiomCheckConfig {
    /// Depth bound for the exhaustive enumeration of arguments.
    pub max_depth: usize,
    /// Cap on enumerated terms per sort.
    pub cap_per_sort: usize,
    /// Cap on instantiations checked per axiom (the variable assignments
    /// are a cartesian product; this truncates it).
    pub max_instances_per_axiom: usize,
    /// Additional random instantiations per axiom at `random_depth`.
    pub random_instances: usize,
    /// Depth for random sampling (usually deeper than `max_depth`).
    pub random_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AxiomCheckConfig {
    fn default() -> Self {
        AxiomCheckConfig {
            max_depth: 4,
            cap_per_sort: 60,
            max_instances_per_axiom: 4_000,
            random_instances: 100,
            random_depth: 8,
            seed: 0x1977,
        }
    }
}

/// A falsifying instantiation of an axiom.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Label of the violated axiom.
    pub axiom: String,
    /// The variable assignment, as ground terms, rendered `name = term`.
    pub bindings: Vec<(String, String)>,
    /// What the left-hand side evaluated to.
    pub lhs_value: MValue,
    /// What the right-hand side evaluated to.
    pub rhs_value: MValue,
}

/// The result of a bounded axiom check.
#[derive(Debug, Clone)]
pub struct AxiomCheckReport {
    /// Falsifying instances found (empty on success).
    pub counterexamples: Vec<CounterExample>,
    /// Total instantiations evaluated.
    pub instances_checked: usize,
    /// Labels of axioms skipped because some variable's sort had no
    /// ground constructor terms (uninstantiated parameter sorts).
    pub skipped_axioms: Vec<String>,
    /// Telemetry from the run (worker utilization). Timings vary between
    /// runs; everything else in the report does not.
    pub stats: CheckStats,
}

impl AxiomCheckReport {
    /// Whether the implementation passed every checked instance.
    pub fn passed(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "axiom check: {} instance(s), {} counterexample(s), {} skipped axiom(s)\n",
            self.instances_checked,
            self.counterexamples.len(),
            self.skipped_axioms.len()
        );
        for ce in &self.counterexamples {
            out.push_str(&format!(
                "  axiom {} violated at {{{}}}: lhs = {:?}, rhs = {:?}\n",
                ce.axiom,
                ce.bindings
                    .iter()
                    .map(|(n, t)| format!("{n} = {t}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                ce.lhs_value,
                ce.rhs_value
            ));
        }
        out
    }
}

/// One axiom instantiation queued for evaluation: the axiom index plus the
/// ground terms bound to its variables, in variable order.
struct Instance {
    axiom: usize,
    terms: Vec<Term>,
}

/// Checks every axiom of the model's specification against the
/// implementation, over enumerated and sampled ground arguments.
///
/// Runs on the calling thread; see [`check_axioms_jobs`] for the parallel
/// variant (whose report is identical apart from timing stats).
pub fn check_axioms(model: &(dyn Model + Sync), cfg: &AxiomCheckConfig) -> AxiomCheckReport {
    check_axioms_jobs(model, cfg, 1)
}

/// [`check_axioms`] with instance evaluation fanned out across `jobs`
/// worker threads (`0` = every available core).
///
/// Determinism: instances are *generated* sequentially (the exhaustive
/// odometer plus one seeded RNG stream define the instance list and its
/// order) and only *evaluated* in parallel; the merge restores generation
/// order, so the counterexample list is identical to the sequential one at
/// any job count. The model must be `Sync` — models built from
/// [`ModelBuilder`](crate::ModelBuilder) with `Send + Sync` values are.
pub fn check_axioms_jobs(
    model: &(dyn Model + Sync),
    cfg: &AxiomCheckConfig,
    jobs: usize,
) -> AxiomCheckReport {
    let spec = model.spec();
    let pool = TermPool::build(spec.sig(), cfg.max_depth, cfg.cap_per_sort);
    let mut rng = DetRng::new(cfg.seed);

    // Phase A (sequential): enumerate the instance list.
    let axioms = spec.axioms();
    let axiom_vars: Vec<Vec<VarId>> = axioms.iter().map(|ax| ax.lhs().vars()).collect();
    let mut instances: Vec<Instance> = Vec::new();
    let mut skipped = Vec::new();
    for (ai, axiom) in axioms.iter().enumerate() {
        let vars = &axiom_vars[ai];
        let var_sorts: Vec<_> = vars.iter().map(|&v| spec.sig().var(v).sort()).collect();
        if !pool.inhabits_all(var_sorts.iter().copied()) {
            skipped.push(axiom.label().to_owned());
            continue;
        }

        // Exhaustive product over the pools, truncated.
        let choices: Vec<&[Term]> = var_sorts.iter().map(|&s| pool.terms(s)).collect();
        let mut indices = vec![0usize; vars.len()];
        let mut produced = 0;
        'product: loop {
            if produced >= cfg.max_instances_per_axiom {
                break;
            }
            instances.push(Instance {
                axiom: ai,
                terms: indices
                    .iter()
                    .zip(&choices)
                    .map(|(&i, c)| c[i].clone())
                    .collect(),
            });
            produced += 1;
            if vars.is_empty() {
                break;
            }
            let mut k = indices.len();
            loop {
                if k == 0 {
                    break 'product;
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < choices[k].len() {
                    break;
                }
                indices[k] = 0;
            }
        }

        // Random deep instances.
        if !vars.is_empty() {
            for _ in 0..cfg.random_instances {
                let sampled: Option<Vec<Term>> = var_sorts
                    .iter()
                    .map(|&s| sample_ctor_term(spec.sig(), s, cfg.random_depth, &mut rng))
                    .collect();
                let Some(sampled) = sampled else { break };
                instances.push(Instance {
                    axiom: ai,
                    terms: sampled,
                });
            }
        }
    }

    // Phase B (parallel): evaluate every instance against the model.
    let run = run_indexed(jobs, &instances, |_, inst| {
        let axiom = &axioms[inst.axiom];
        let vars = &axiom_vars[inst.axiom];
        let env = build_env(model, vars, |k| inst.terms[k].clone());
        check_instance(model, axiom.label(), axiom.lhs(), axiom.rhs(), vars, &env)
    });
    let instances_checked = instances.len();
    let mut stats = CheckStats::default();
    stats.absorb(&run.busy, run.elapsed, instances_checked);
    let counterexamples: Vec<CounterExample> = run.results.into_iter().flatten().collect();

    AxiomCheckReport {
        counterexamples,
        instances_checked,
        skipped_axioms: skipped,
        stats,
    }
}

type Env = HashMap<VarId, (Term, MValue)>;

fn build_env(model: &dyn Model, vars: &[VarId], term_of: impl Fn(usize) -> Term) -> Env {
    vars.iter()
        .enumerate()
        .map(|(k, &v)| {
            let term = term_of(k);
            let value = crate::eval::eval_ground(model, &term);
            (v, (term, value))
        })
        .collect()
}

fn check_instance(
    model: &dyn Model,
    label: &str,
    lhs: &Term,
    rhs: &Term,
    vars: &[VarId],
    env: &Env,
) -> Option<CounterExample> {
    let spec = model.spec();
    let value_env: HashMap<VarId, MValue> =
        env.iter().map(|(&v, (_, val))| (v, val.clone())).collect();
    let lhs_value = eval_with_env(model, lhs, &value_env);
    let rhs_value = eval_with_env(model, rhs, &value_env);
    let sort = lhs
        .sort(spec.sig())
        .expect("axioms are validated before checking");
    if model.values_equal(sort, &lhs_value, &rhs_value) {
        return None;
    }
    Some(CounterExample {
        axiom: label.to_owned(),
        bindings: vars
            .iter()
            .map(|v| {
                let (term, _) = &env[v];
                (
                    spec.sig().var(*v).name().to_owned(),
                    display::term(spec.sig(), term).to_string(),
                )
            })
            .collect(),
        lhs_value,
        rhs_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use adt_core::{Spec, SpecBuilder};
    use std::collections::VecDeque;

    /// The Queue of §3, with Item = two constants.
    fn queue_spec() -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let front = b.op("FRONT", [queue], item);
        let remove = b.op("REMOVE", [queue], queue);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        b.ctor("A", [], item);
        b.ctor("B", [], item);
        let q = Term::Var(b.var("q", queue));
        let i = Term::Var(b.var("i", item));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        b.axiom(
            "q2",
            b.app(is_empty, [b.app(add, [q.clone(), i.clone()])]),
            ff,
        );
        b.axiom("q3", b.app(front, [b.app(new, [])]), Term::Error(item));
        b.axiom(
            "q4",
            b.app(front, [b.app(add, [q.clone(), i.clone()])]),
            Term::ite(
                b.app(is_empty, [q.clone()]),
                i.clone(),
                b.app(front, [q.clone()]),
            ),
        );
        b.axiom("q5", b.app(remove, [b.app(new, [])]), Term::Error(queue));
        b.axiom(
            "q6",
            b.app(remove, [b.app(add, [q.clone(), i.clone()])]),
            Term::ite(
                b.app(is_empty, [q.clone()]),
                b.app(new, []),
                b.app(add, [b.app(remove, [q]), i]),
            ),
        );
        b.build().unwrap()
    }

    /// A correct FIFO model over `VecDeque` (plain values, no interior
    /// mutability — the model must be `Sync` for the parallel checker).
    fn fifo_model(spec: &Spec) -> crate::TableModel<'_> {
        let deque = |args: &[MValue]| -> VecDeque<String> {
            args[0].downcast::<VecDeque<String>>().unwrap().clone()
        };
        ModelBuilder::new(spec)
            .op("NEW", |_| MValue::data(VecDeque::<String>::new()))
            .op("A", |_| "A".into())
            .op("B", |_| "B".into())
            .op("ADD", move |args| {
                let mut d = deque(args);
                d.push_back(args[1].as_str().unwrap().to_owned());
                MValue::data(d)
            })
            .op("FRONT", move |args| match deque(args).front() {
                Some(s) => MValue::Str(s.clone()),
                None => MValue::Error,
            })
            .op("REMOVE", move |args| {
                let mut d = deque(args);
                if d.pop_front().is_none() {
                    return MValue::Error;
                }
                MValue::data(d)
            })
            .op("IS_EMPTY?", move |args| {
                MValue::Bool(deque(args).is_empty())
            })
            .eq("Queue", |a, b| {
                a.downcast::<VecDeque<String>>() == b.downcast::<VecDeque<String>>()
            })
            .build()
            .unwrap()
    }

    /// A LIFO (stack) model — satisfies the signature but not the axioms.
    fn lifo_model(spec: &Spec) -> crate::TableModel<'_> {
        let vec =
            |args: &[MValue]| -> Vec<String> { args[0].downcast::<Vec<String>>().unwrap().clone() };
        ModelBuilder::new(spec)
            .op("NEW", |_| MValue::data(Vec::<String>::new()))
            .op("A", |_| "A".into())
            .op("B", |_| "B".into())
            .op("ADD", move |args| {
                let mut v = vec(args);
                v.push(args[1].as_str().unwrap().to_owned());
                MValue::data(v)
            })
            .op("FRONT", move |args| match vec(args).last() {
                Some(s) => MValue::Str(s.clone()),
                None => MValue::Error,
            })
            .op("REMOVE", move |args| {
                let mut v = vec(args);
                if v.pop().is_none() {
                    return MValue::Error;
                }
                MValue::data(v)
            })
            .op("IS_EMPTY?", move |args| MValue::Bool(vec(args).is_empty()))
            .eq("Queue", |a, b| {
                a.downcast::<Vec<String>>() == b.downcast::<Vec<String>>()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn correct_fifo_passes_all_axioms() {
        let spec = queue_spec();
        let model = fifo_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(report.passed(), "{}", report.summary());
        // 3 ground axioms + 3 axioms over (15 queues × 2 items) enumerated
        // plus 100 random instances each.
        assert_eq!(report.instances_checked, 3 + 3 * (15 * 2 + 100));
        assert!(report.skipped_axioms.is_empty());
    }

    #[test]
    fn lifo_masquerading_as_queue_is_caught() {
        // The paper's §2 point: the *signatures* of Stack and Queue are
        // isomorphic; only the axioms tell them apart. The axiom check
        // must reject a stack pretending to be a queue.
        let spec = queue_spec();
        let model = lifo_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert!(!report.passed());
        // The violated axioms are exactly the FIFO-order ones (q4/q6).
        let violated: std::collections::HashSet<&str> = report
            .counterexamples
            .iter()
            .map(|c| c.axiom.as_str())
            .collect();
        assert!(
            violated.contains("q4") || violated.contains("q6"),
            "{violated:?}"
        );
        assert!(!violated.contains("q1"));
        assert!(!violated.contains("q2"));
    }

    #[test]
    fn parallel_axiom_check_matches_sequential() {
        let spec = queue_spec();
        for model in [fifo_model(&spec), lifo_model(&spec)] {
            let cfg = AxiomCheckConfig::default();
            let seq = check_axioms_jobs(&model, &cfg, 1);
            let par = check_axioms_jobs(&model, &cfg, 4);
            assert_eq!(seq.passed(), par.passed());
            assert_eq!(seq.instances_checked, par.instances_checked);
            assert_eq!(seq.skipped_axioms, par.skipped_axioms);
            assert_eq!(seq.summary(), par.summary());
        }
    }

    #[test]
    fn counterexamples_carry_readable_bindings() {
        let spec = queue_spec();
        let model = lifo_model(&spec);
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        let ce = &report.counterexamples[0];
        assert!(!ce.bindings.is_empty());
        // Bindings are printable term strings, e.g. q = ADD(NEW, A).
        assert!(ce.bindings.iter().any(|(_, t)| t.contains("ADD")), "{ce:?}");
        let summary = report.summary();
        assert!(summary.contains("violated at"), "{summary}");
    }

    #[test]
    fn uninstantiated_parameter_sorts_skip_axioms() {
        // Queue without Item constants: q4 etc. cannot be instantiated.
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        let q = Term::Var(b.var("q", queue));
        let i = Term::Var(b.var("i", item));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        b.axiom("q2", b.app(is_empty, [b.app(add, [q, i])]), ff);
        let spec = b.build().unwrap();
        let model = ModelBuilder::new(&spec)
            .op("NEW", |_| MValue::Int(0))
            .op("ADD", |args| MValue::Int(args[0].as_int().unwrap() + 1))
            .op("IS_EMPTY?", |args| {
                MValue::Bool(args[0].as_int() == Some(0))
            })
            .build()
            .unwrap();
        let report = check_axioms(&model, &AxiomCheckConfig::default());
        assert_eq!(report.skipped_axioms, vec!["q2".to_owned()]);
        assert!(report.passed());
        assert!(report.instances_checked >= 1); // q1 still ran
    }
}
