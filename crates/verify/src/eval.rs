//! Evaluating terms inside an implementation model.

use std::collections::HashMap;

use adt_core::{Term, VarId};

use crate::model::Model;
use crate::value::MValue;

/// Evaluates a ground term in a model.
///
/// Conditionals are lazy in their branches (only the taken branch is
/// evaluated) and strict in the condition, mirroring the rewrite engine.
///
/// # Panics
///
/// Panics if the term contains a variable; use [`eval_with_env`] for open
/// terms.
pub fn eval_ground(model: &dyn Model, term: &Term) -> MValue {
    eval_with_env(model, term, &HashMap::new())
}

/// Evaluates a term in a model, reading variable values from `env`.
///
/// # Panics
///
/// Panics if the term contains a variable absent from `env`, or if a
/// condition evaluates to a non-boolean, non-error value — both indicate
/// misuse by the caller, not a property of the implementation under test.
pub fn eval_with_env(model: &dyn Model, term: &Term, env: &HashMap<VarId, MValue>) -> MValue {
    match term {
        Term::Var(v) => env
            .get(v)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable {v:?} during model evaluation")),
        Term::Error(_) => MValue::Error,
        Term::App(op, args) => {
            let values: Vec<MValue> = args.iter().map(|a| eval_with_env(model, a, env)).collect();
            model.apply(*op, &values)
        }
        Term::Ite(ite) => match eval_with_env(model, &ite.cond, env) {
            MValue::Bool(true) => eval_with_env(model, &ite.then_branch, env),
            MValue::Bool(false) => eval_with_env(model, &ite.else_branch, env),
            MValue::Error => MValue::Error,
            other => panic!("condition evaluated to non-boolean {other:?}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use adt_core::{Spec, SpecBuilder};

    fn nat_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let nat = b.sort("Nat");
        b.ctor("ZERO", [], nat);
        b.ctor("SUCC", [nat], nat);
        b.op("PRED", [nat], nat);
        b.op("IS_ZERO?", [nat], b.bool_sort());
        b.var("n", nat);
        b.build().unwrap()
    }

    fn model(spec: &Spec) -> crate::model::TableModel<'_> {
        ModelBuilder::new(spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |a| MValue::Int(a[0].as_int().unwrap() + 1))
            .op("PRED", |a| match a[0].as_int().unwrap() {
                0 => MValue::Error,
                n => MValue::Int(n - 1),
            })
            .op("IS_ZERO?", |a| MValue::Bool(a[0].as_int() == Some(0)))
            .build()
            .unwrap()
    }

    #[test]
    fn ground_evaluation() {
        let spec = nat_spec();
        let m = model(&spec);
        // PRED(SUCC(SUCC(ZERO))) = 1
        let t = spec
            .sig()
            .apply(
                "PRED",
                vec![spec
                    .sig()
                    .apply(
                        "SUCC",
                        vec![spec
                            .sig()
                            .apply("SUCC", vec![spec.sig().apply("ZERO", vec![]).unwrap()])
                            .unwrap()],
                    )
                    .unwrap()],
            )
            .unwrap();
        assert_eq!(eval_ground(&m, &t).as_int(), Some(1));
    }

    #[test]
    fn conditionals_are_lazy_in_branches() {
        let spec = nat_spec();
        let m = model(&spec);
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        // if IS_ZERO?(ZERO) then ZERO else PRED(ZERO): the error branch is
        // never evaluated.
        let t = Term::ite(
            spec.sig().apply("IS_ZERO?", vec![zero.clone()]).unwrap(),
            zero.clone(),
            spec.sig().apply("PRED", vec![zero]).unwrap(),
        );
        assert_eq!(eval_ground(&m, &t).as_int(), Some(0));
    }

    #[test]
    fn error_condition_poisons_conditional() {
        let spec = nat_spec();
        let m = model(&spec);
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        let bad_cond = spec
            .sig()
            .apply(
                "IS_ZERO?",
                vec![spec.sig().apply("PRED", vec![zero.clone()]).unwrap()],
            )
            .unwrap();
        let t = Term::ite(bad_cond, zero.clone(), zero);
        assert!(eval_ground(&m, &t).is_error());
    }

    #[test]
    fn environment_supplies_variables() {
        let spec = nat_spec();
        let m = model(&spec);
        let n = spec.sig().find_var("n").unwrap();
        let t = spec.sig().apply("SUCC", vec![Term::Var(n)]).unwrap();
        let mut env = HashMap::new();
        env.insert(n, MValue::Int(41));
        assert_eq!(eval_with_env(&m, &t, &env).as_int(), Some(42));
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let spec = nat_spec();
        let m = model(&spec);
        let n = spec.sig().find_var("n").unwrap();
        eval_ground(&m, &Term::Var(n));
    }

    #[test]
    fn error_terms_evaluate_to_error() {
        let spec = nat_spec();
        let m = model(&spec);
        let nat = spec.sig().find_sort("Nat").unwrap();
        assert!(eval_ground(&m, &Term::Error(nat)).is_error());
        // And propagate through applications.
        let t = spec.sig().apply("SUCC", vec![Term::Error(nat)]).unwrap();
        assert!(eval_ground(&m, &t).is_error());
    }
}
