//! The [`Model`] trait: a Rust implementation of a specification's
//! operations, plus the table-driven [`ModelBuilder`] for assembling one
//! from closures.

use std::collections::HashMap;
use std::sync::Arc;

use adt_core::{OpId, SortId, Spec};

use crate::value::MValue;

/// An implementation ("interpretation", in the paper's words) of the
/// operations of a specification.
///
/// A model is *a representation of a type*: "(i) any interpretation
/// (implementation) of the operations of the type that is a model for the
/// axioms of the specification" (§4). Whether it actually is a model for
/// the axioms is what [`check_axioms`](crate::check_axioms) tests.
pub trait Model {
    /// The specification this model implements.
    fn spec(&self) -> &Spec;

    /// Applies the implementation of `op` to argument values.
    ///
    /// Implementations can assume arguments are non-`error` and of the
    /// declared sorts: the framework propagates `error` strictly before
    /// calling (paper, §3) and generates only well-sorted arguments.
    fn apply_op(&self, op: OpId, args: &[MValue]) -> MValue;

    /// Value equality at a sort.
    ///
    /// The default handles primitive values; models with `Data` values at
    /// observable sorts must override. (For hidden/TOI sorts, equality is
    /// usually *behavioral* and tested through observers or Φ instead.)
    fn values_equal(&self, sort: SortId, a: &MValue, b: &MValue) -> bool {
        let _ = sort;
        a.prim_eq(b).unwrap_or(false)
    }

    /// Applies `op` with the paper's strict error rule.
    fn apply(&self, op: OpId, args: &[MValue]) -> MValue {
        if args.iter().any(MValue::is_error) {
            return MValue::Error;
        }
        self.apply_op(op, args)
    }
}

// `Arc … + Send + Sync` so a built model can be shared by reference
// across the parallel checker's worker threads.
type OpFn = Arc<dyn Fn(&[MValue]) -> MValue + Send + Sync>;
type EqFn = Arc<dyn Fn(&MValue, &MValue) -> bool + Send + Sync>;

/// A [`Model`] assembled from per-operation closures.
///
/// Built with [`ModelBuilder`]; the built-in `true` and `false` are wired
/// automatically.
pub struct TableModel<'a> {
    spec: &'a Spec,
    ops: HashMap<OpId, OpFn>,
    eqs: HashMap<SortId, EqFn>,
}

impl std::fmt::Debug for TableModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableModel")
            .field("spec", &self.spec.name())
            .field("ops", &self.ops.len())
            .field("eqs", &self.eqs.len())
            .finish()
    }
}

impl Model for TableModel<'_> {
    fn spec(&self) -> &Spec {
        self.spec
    }

    fn apply_op(&self, op: OpId, args: &[MValue]) -> MValue {
        match self.ops.get(&op) {
            Some(f) => f(args),
            None => panic!(
                "no implementation registered for operation `{}`",
                self.spec.sig().op(op).name()
            ),
        }
    }

    fn values_equal(&self, sort: SortId, a: &MValue, b: &MValue) -> bool {
        if let Some(eq) = self.eqs.get(&sort) {
            if let Some(prim) = a.prim_eq(b) {
                // Error vs non-error is decided uniformly.
                if a.is_error() || b.is_error() {
                    return prim;
                }
            }
            eq(a, b)
        } else {
            a.prim_eq(b).unwrap_or(false)
        }
    }
}

/// Builder for [`TableModel`].
///
/// ```
/// use adt_core::SpecBuilder;
/// use adt_verify::{Model, ModelBuilder, MValue};
///
/// let mut b = SpecBuilder::new("Nat");
/// let nat = b.sort("Nat");
/// let zero = b.ctor("ZERO", [], nat);
/// let succ = b.ctor("SUCC", [nat], nat);
/// let is_zero = b.op("IS_ZERO?", [nat], b.bool_sort());
/// let spec = b.build()?;
///
/// let model = ModelBuilder::new(&spec)
///     .op("ZERO", |_| MValue::Int(0))
///     .op("SUCC", |args| MValue::Int(args[0].as_int().unwrap() + 1))
///     .op("IS_ZERO?", |args| MValue::Bool(args[0].as_int() == Some(0)))
///     .build()?;
/// let z = model.apply(zero, &[]);
/// let one = model.apply(succ, &[z]);
/// assert_eq!(model.apply(is_zero, &[one]).as_bool(), Some(false));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ModelBuilder<'a> {
    spec: &'a Spec,
    ops: HashMap<OpId, OpFn>,
    eqs: HashMap<SortId, EqFn>,
    missing: Vec<String>,
}

impl std::fmt::Debug for ModelBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBuilder")
            .field("spec", &self.spec.name())
            .field("ops", &self.ops.len())
            .finish()
    }
}

impl<'a> ModelBuilder<'a> {
    /// Starts a model for `spec` with the booleans pre-wired.
    pub fn new(spec: &'a Spec) -> Self {
        let mut ops: HashMap<OpId, OpFn> = HashMap::new();
        ops.insert(spec.sig().true_op(), Arc::new(|_| MValue::Bool(true)));
        ops.insert(spec.sig().false_op(), Arc::new(|_| MValue::Bool(false)));
        ModelBuilder {
            spec,
            ops,
            eqs: HashMap::new(),
            missing: Vec::new(),
        }
    }

    /// Registers the implementation of the operation named `name`.
    ///
    /// Unknown names are collected and reported by [`ModelBuilder::build`].
    #[must_use]
    pub fn op(mut self, name: &str, f: impl Fn(&[MValue]) -> MValue + Send + Sync + 'static) -> Self {
        match self.spec.sig().find_op(name) {
            Some(id) => {
                self.ops.insert(id, Arc::new(f));
            }
            None => self.missing.push(format!("unknown operation `{name}`")),
        }
        self
    }

    /// Registers a value-equality predicate for the sort named `name`
    /// (needed when the sort's values are `Data`).
    #[must_use]
    pub fn eq(
        mut self,
        name: &str,
        f: impl Fn(&MValue, &MValue) -> bool + Send + Sync + 'static,
    ) -> Self {
        match self.spec.sig().find_sort(name) {
            Some(id) => {
                self.eqs.insert(id, Arc::new(f));
            }
            None => self.missing.push(format!("unknown sort `{name}`")),
        }
        self
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns a message listing unknown names passed to
    /// [`ModelBuilder::op`]/[`ModelBuilder::eq`] and operations of the
    /// specification left without an implementation.
    pub fn build(self) -> Result<TableModel<'a>, String> {
        let mut problems = self.missing;
        for op in self.spec.sig().op_ids() {
            if !self.ops.contains_key(&op) {
                problems.push(format!(
                    "operation `{}` has no implementation",
                    self.spec.sig().op(op).name()
                ));
            }
        }
        if problems.is_empty() {
            Ok(TableModel {
                spec: self.spec,
                ops: self.ops,
                eqs: self.eqs,
            })
        } else {
            Err(problems.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::SpecBuilder;

    fn nat_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let nat = b.sort("Nat");
        b.ctor("ZERO", [], nat);
        b.ctor("SUCC", [nat], nat);
        b.op("PRED", [nat], nat);
        b.build().unwrap()
    }

    fn nat_model(spec: &Spec) -> TableModel<'_> {
        ModelBuilder::new(spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |args| MValue::Int(args[0].as_int().unwrap() + 1))
            .op("PRED", |args| match args[0].as_int().unwrap() {
                0 => MValue::Error,
                n => MValue::Int(n - 1),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn closures_implement_operations() {
        let spec = nat_spec();
        let model = nat_model(&spec);
        let zero = spec.sig().find_op("ZERO").unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        let pred = spec.sig().find_op("PRED").unwrap();
        let z = model.apply(zero, &[]);
        let one = model.apply(succ, std::slice::from_ref(&z));
        assert_eq!(model.apply(pred, &[one]).as_int(), Some(0));
        assert!(model.apply(pred, &[z]).is_error());
    }

    #[test]
    fn error_propagates_strictly_without_calling_the_closure() {
        let spec = nat_spec();
        let model = ModelBuilder::new(&spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |_| panic!("must not be called on error"))
            .op("PRED", |_| MValue::Int(0))
            .build()
            .unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        assert!(model.apply(succ, &[MValue::Error]).is_error());
    }

    #[test]
    fn builtin_booleans_are_prewired() {
        let spec = nat_spec();
        let model = nat_model(&spec);
        assert_eq!(model.apply(spec.sig().true_op(), &[]).as_bool(), Some(true));
        assert_eq!(
            model.apply(spec.sig().false_op(), &[]).as_bool(),
            Some(false)
        );
    }

    #[test]
    fn missing_implementation_is_reported() {
        let spec = nat_spec();
        let err = ModelBuilder::new(&spec)
            .op("ZERO", |_| MValue::Int(0))
            .build()
            .unwrap_err();
        assert!(err.contains("`SUCC`"));
        assert!(err.contains("`PRED`"));
    }

    #[test]
    fn unknown_names_are_reported() {
        let spec = nat_spec();
        let err = ModelBuilder::new(&spec)
            .op("ZORO", |_| MValue::Int(0))
            .eq("Gnat", |_, _| true)
            .build()
            .unwrap_err();
        assert!(err.contains("`ZORO`"));
        assert!(err.contains("`Gnat`"));
    }

    #[test]
    fn custom_equality_is_used_for_data() {
        let spec = nat_spec();
        let model = ModelBuilder::new(&spec)
            .op("ZERO", |_| MValue::data(vec![0u8]))
            .op("SUCC", |args| {
                let mut v = args[0].downcast::<Vec<u8>>().unwrap().clone();
                v.push(0);
                MValue::data(v)
            })
            .op("PRED", |_| MValue::Error)
            .eq("Nat", |a, b| {
                a.downcast::<Vec<u8>>().map(Vec::len) == b.downcast::<Vec<u8>>().map(Vec::len)
            })
            .build()
            .unwrap();
        let nat = spec.sig().find_sort("Nat").unwrap();
        let zero = spec.sig().find_op("ZERO").unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        let a = model.apply(zero, &[]);
        let b = model.apply(succ, std::slice::from_ref(&a));
        assert!(model.values_equal(nat, &a, &a));
        assert!(!model.values_equal(nat, &a, &b));
        // Error compares by the uniform rule even with a custom eq.
        assert!(model.values_equal(nat, &MValue::Error, &MValue::Error));
        assert!(!model.values_equal(nat, &MValue::Error, &a));
    }
}
