//! Ground-term generation: the argument supply for bounded verification.
//!
//! Bounded model checking of axioms needs ground constructor terms of
//! every sort, both exhaustively (up to a depth) and sampled at random
//! (for depths the exhaustive enumeration cannot reach).

use std::collections::HashMap;

use adt_core::{DetRng, OpId, Signature, SortId, Term};

/// Enumerates all ground constructor terms of `sort` with depth ≤
/// `max_depth`, capped at `cap` terms (breadth-first by depth, so shallow
/// terms are preferred when the cap bites).
pub fn enumerate_ctor_terms(
    sig: &Signature,
    sort: SortId,
    max_depth: usize,
    cap: usize,
) -> Vec<Term> {
    let mut memo: HashMap<(SortId, usize), Vec<Term>> = HashMap::new();
    let result = enumerate_rec(sig, sort, max_depth, cap, &mut memo);
    result.into_iter().take(cap).collect()
}

fn enumerate_rec(
    sig: &Signature,
    sort: SortId,
    depth: usize,
    cap: usize,
    memo: &mut HashMap<(SortId, usize), Vec<Term>>,
) -> Vec<Term> {
    if depth == 0 {
        return Vec::new();
    }
    if let Some(hit) = memo.get(&(sort, depth)) {
        return hit.clone();
    }
    let mut out: Vec<Term> = Vec::new();
    for ctor in sig.constructors_of(sort) {
        let info = sig.op(ctor);
        if info.arity() == 0 {
            out.push(Term::App(ctor, Vec::new()));
            continue;
        }
        // Cartesian product of argument enumerations at depth-1.
        let arg_choices: Vec<Vec<Term>> = info
            .args()
            .iter()
            .map(|&s| enumerate_rec(sig, s, depth - 1, cap, memo))
            .collect();
        if arg_choices.iter().any(Vec::is_empty) {
            continue;
        }
        let mut indices = vec![0usize; arg_choices.len()];
        'product: loop {
            if out.len() >= cap {
                break 'product;
            }
            let args: Vec<Term> = indices
                .iter()
                .zip(&arg_choices)
                .map(|(&i, choices)| choices[i].clone())
                .collect();
            out.push(Term::App(ctor, args));
            // Advance the odometer.
            let mut k = indices.len();
            loop {
                if k == 0 {
                    break 'product;
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < arg_choices[k].len() {
                    break;
                }
                indices[k] = 0;
            }
        }
        if out.len() >= cap {
            break;
        }
    }
    // Prefer shallow terms: enumeration above interleaves by constructor;
    // sort by size for stability.
    out.sort_by_key(Term::size);
    out.truncate(cap);
    memo.insert((sort, depth), out.clone());
    out
}

/// Enumerates ground terms *rooted at any operation* (constructors and
/// derived alike) whose arguments are constructor terms — the terms whose
/// meaning the axioms must pin down.
pub fn enumerate_terms(sig: &Signature, max_arg_depth: usize, cap_per_op: usize) -> Vec<Term> {
    let mut out = Vec::new();
    for op in sig.op_ids() {
        let info = sig.op(op);
        if info.is_builtin() {
            continue;
        }
        let arg_choices: Vec<Vec<Term>> = info
            .args()
            .iter()
            .map(|&s| enumerate_ctor_terms(sig, s, max_arg_depth, cap_per_op))
            .collect();
        if arg_choices.iter().any(Vec::is_empty) {
            if info.arity() == 0 {
                out.push(Term::App(op, Vec::new()));
            }
            continue;
        }
        let mut count = 0;
        let mut indices = vec![0usize; arg_choices.len()];
        'product: loop {
            if count >= cap_per_op {
                break;
            }
            let args: Vec<Term> = indices
                .iter()
                .zip(&arg_choices)
                .map(|(&i, choices)| choices[i].clone())
                .collect();
            out.push(Term::App(op, args));
            count += 1;
            let mut k = indices.len();
            loop {
                if k == 0 {
                    break 'product;
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < arg_choices[k].len() {
                    break;
                }
                indices[k] = 0;
            }
        }
    }
    out
}

/// Samples one random ground constructor term of `sort`, or `None` if the
/// sort cannot be inhabited within `max_depth`.
pub fn sample_ctor_term(
    sig: &Signature,
    sort: SortId,
    max_depth: usize,
    rng: &mut DetRng,
) -> Option<Term> {
    let ctors: Vec<OpId> = sig.constructors_of(sort).collect();
    if ctors.is_empty() {
        return None;
    }
    let usable: Vec<OpId> = if max_depth <= 1 {
        ctors
            .iter()
            .copied()
            .filter(|&c| sig.op(c).arity() == 0)
            .collect()
    } else {
        ctors
    };
    if usable.is_empty() {
        return None;
    }
    let ctor = usable[rng.below(usable.len())];
    let args: Option<Vec<Term>> = sig
        .op(ctor)
        .args()
        .iter()
        .map(|&s| sample_ctor_term(sig, s, max_depth - 1, rng))
        .collect();
    Some(Term::App(ctor, args?))
}

/// A per-sort pool of enumerated ground constructor terms, shared by the
/// checking passes.
#[derive(Debug, Clone)]
pub struct TermPool {
    by_sort: HashMap<SortId, Vec<Term>>,
}

impl TermPool {
    /// Enumerates a pool for every sort of the signature.
    pub fn build(sig: &Signature, max_depth: usize, cap_per_sort: usize) -> Self {
        let by_sort = sig
            .sort_ids()
            .map(|s| (s, enumerate_ctor_terms(sig, s, max_depth, cap_per_sort)))
            .collect();
        TermPool { by_sort }
    }

    /// The enumerated terms of `sort` (empty if uninhabited).
    pub fn terms(&self, sort: SortId) -> &[Term] {
        self.by_sort.get(&sort).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether every listed sort is inhabited.
    pub fn inhabits_all(&self, sorts: impl IntoIterator<Item = SortId>) -> bool {
        sorts.into_iter().all(|s| !self.terms(s).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::{Spec, SpecBuilder};

    fn queue_spec() -> Spec {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        b.ctor("NEW", [], queue);
        b.ctor("ADD", [queue, item], queue);
        b.ctor("A", [], item);
        b.ctor("B", [], item);
        b.op("FRONT", [queue], item);
        b.build().unwrap()
    }

    #[test]
    fn enumeration_counts_match_the_combinatorics() {
        let spec = queue_spec();
        let queue = spec.sig().find_sort("Queue").unwrap();
        // depth 1: NEW. depth 2: NEW, ADD(NEW, A), ADD(NEW, B).
        let d1 = enumerate_ctor_terms(spec.sig(), queue, 1, 1000);
        assert_eq!(d1.len(), 1);
        let d2 = enumerate_ctor_terms(spec.sig(), queue, 2, 1000);
        assert_eq!(d2.len(), 3);
        // depth 3: 1 + 2*3 = 7.
        let d3 = enumerate_ctor_terms(spec.sig(), queue, 3, 1000);
        assert_eq!(d3.len(), 7);
        for t in &d3 {
            assert!(t.is_constructor_term(spec.sig()));
            assert!(t.depth() <= 3);
        }
    }

    #[test]
    fn cap_prefers_shallow_terms() {
        let spec = queue_spec();
        let queue = spec.sig().find_sort("Queue").unwrap();
        let capped = enumerate_ctor_terms(spec.sig(), queue, 4, 4);
        assert_eq!(capped.len(), 4);
        // NEW must be present (it is the smallest term).
        let new = spec.sig().apply("NEW", vec![]).unwrap();
        assert!(capped.contains(&new));
        assert!(capped.windows(2).all(|w| w[0].size() <= w[1].size()));
    }

    #[test]
    fn uninhabited_sorts_enumerate_empty() {
        let mut b = SpecBuilder::new("S");
        let s = b.sort("S");
        let p = b.param_sort("P");
        b.ctor("MK", [p], s);
        let spec = b.build().unwrap();
        let sid = spec.sig().find_sort("S").unwrap();
        assert!(enumerate_ctor_terms(spec.sig(), sid, 5, 100).is_empty());
    }

    #[test]
    fn term_enumeration_includes_derived_roots() {
        let spec = queue_spec();
        let terms = enumerate_terms(spec.sig(), 2, 100);
        let front = spec.sig().find_op("FRONT").unwrap();
        let fronted = terms
            .iter()
            .filter(|t| matches!(t, Term::App(op, _) if *op == front))
            .count();
        assert_eq!(fronted, 3); // FRONT applied to each depth-2 queue
    }

    #[test]
    fn sampling_is_well_sorted_and_bounded() {
        let spec = queue_spec();
        let queue = spec.sig().find_sort("Queue").unwrap();
        let mut rng = DetRng::new(11);
        for _ in 0..200 {
            let t = sample_ctor_term(spec.sig(), queue, 5, &mut rng).unwrap();
            assert!(t.depth() <= 5);
            assert_eq!(t.sort(spec.sig()).unwrap(), queue);
        }
    }

    #[test]
    fn pool_serves_all_sorts() {
        let spec = queue_spec();
        let pool = TermPool::build(spec.sig(), 3, 50);
        let queue = spec.sig().find_sort("Queue").unwrap();
        let item = spec.sig().find_sort("Item").unwrap();
        assert_eq!(pool.terms(queue).len(), 7);
        assert_eq!(pool.terms(item).len(), 2);
        assert!(pool.inhabits_all([queue, item]));
        // Bool is inhabited by the builtins.
        assert!(pool.inhabits_all([spec.sig().bool_sort()]));
    }
}
