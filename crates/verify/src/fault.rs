//! Fault-isolation harness: proves the checking engine's robustness
//! claims by *injecting* faults and differencing the reports.
//!
//! The claim under test: a sabotaged work item — a panicking worker, an
//! exhausted budget, an artificially slow chunk — must not perturb the
//! verdict of any *other* item. The harness runs every checker twice over
//! the same specification, once clean and once under a [`FaultSpec`],
//! re-arms the plan to learn exactly which indices were sabotaged, and
//! compares the per-item verdict strings of every non-faulted index. Any
//! difference is an isolation failure in the engine itself.

use adt_check::{
    check_completeness_with_config, check_consistency_with_config, CheckConfig, FaultSpec,
    OpCoverage, ProbeConfig,
};
use adt_core::Spec;

/// Parses a fault plan of the form
/// `"seed=7,panic=1,exhaust=1,slow=2,slow-ms=5"`.
///
/// Every key is optional but may appear at most once (aliases such as
/// `panic`/`panics` count as the same key); repeated, unknown, and
/// malformed entries are errors. An empty string parses to the inert
/// default plan.
pub fn parse_fault_plan(text: &str) -> Result<FaultSpec, String> {
    let mut plan = FaultSpec::default();
    let mut seen: Vec<&'static str> = Vec::new();
    let mut claim = |canonical: &'static str, spelled: &str| -> Result<(), String> {
        if seen.contains(&canonical) {
            return Err(format!(
                "fault plan key `{spelled}` given more than once (`{canonical}` was already set)"
            ));
        }
        seen.push(canonical);
        Ok(())
    };
    for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("fault plan entry `{part}` is not of the form key=value"))?;
        let parse = |v: &str| -> Result<u64, String> {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("fault plan value `{v}` for `{key}` is not a number"))
        };
        let n = parse(value)?;
        let key = key.trim();
        match key {
            "seed" => {
                claim("seed", key)?;
                plan.seed = n;
            }
            "panic" | "panics" => {
                claim("panic", key)?;
                plan.panics = n as usize;
            }
            "exhaust" | "exhausts" => {
                claim("exhaust", key)?;
                plan.exhausts = n as usize;
            }
            "slow" | "slows" => {
                claim("slow", key)?;
                plan.slows = n as usize;
            }
            "slow-ms" => {
                claim("slow-ms", key)?;
                plan.slow_ms = n;
            }
            other => {
                return Err(format!(
                    "unknown fault plan key `{other}` (expected seed, panic, exhaust, slow, slow-ms)"
                ))
            }
        }
    }
    Ok(plan)
}

/// A non-faulted item whose verdict changed between the clean and the
/// faulted run — an isolation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationMismatch {
    /// The item's index within its phase.
    pub index: usize,
    /// The clean run's verdict string.
    pub clean: String,
    /// The faulted run's verdict string.
    pub faulted: String,
}

/// Isolation comparison for one checker phase.
#[derive(Debug, Clone)]
pub struct PhaseIsolation {
    /// The phase (`"completeness"`, `"pairs"`, `"probes"`).
    pub phase: &'static str,
    /// Work items in the phase.
    pub items: usize,
    /// Indices the plan sabotaged (ascending).
    pub faulted: Vec<usize>,
    /// Non-faulted items whose verdicts differ between the runs.
    pub mismatches: Vec<IsolationMismatch>,
    /// Whether the two runs even reported the same number of items (they
    /// must: a lost item is the worst isolation failure of all).
    pub item_counts_agree: bool,
}

impl PhaseIsolation {
    /// Whether every non-faulted item in this phase was untouched.
    pub fn isolated(&self) -> bool {
        self.item_counts_agree && self.mismatches.is_empty()
    }
}

/// Outcome of a [`fault_isolation_check`] run.
#[derive(Debug, Clone)]
pub struct FaultIsolationReport {
    /// The plan that was injected.
    pub plan: FaultSpec,
    /// Worker count of both runs.
    pub jobs: usize,
    /// Per-phase comparisons.
    pub phases: Vec<PhaseIsolation>,
}

impl FaultIsolationReport {
    /// Whether every non-faulted item in every phase produced a verdict
    /// byte-identical to the fault-free run.
    pub fn isolated(&self) -> bool {
        self.phases.iter().all(PhaseIsolation::isolated)
    }

    /// Total number of sabotaged items across all phases.
    pub fn faults_injected(&self) -> usize {
        self.phases.iter().map(|p| p.faulted.len()).sum()
    }

    /// A printable account of the run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            let faulted = if p.faulted.is_empty() {
                "none faulted".to_owned()
            } else {
                format!(
                    "faulted item(s) [{}]",
                    p.faulted
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            out.push_str(&format!(
                "phase {}: {} item(s), {}, {} isolation mismatch(es)\n",
                p.phase,
                p.items,
                faulted,
                p.mismatches.len()
            ));
            if !p.item_counts_agree {
                out.push_str("  item counts differ between clean and faulted runs\n");
            }
            for m in &p.mismatches {
                out.push_str(&format!(
                    "  item #{}: clean `{}` vs faulted `{}`\n",
                    m.index, m.clean, m.faulted
                ));
            }
        }
        out.push_str(&format!(
            "non-faulted verdicts identical: {}\n",
            if self.isolated() { "yes" } else { "NO" }
        ));
        out
    }
}

/// Renders one operation's coverage verdict as a deterministic string
/// (the completeness analogue of the consistency per-item verdicts).
fn coverage_item(oc: &OpCoverage) -> String {
    format!("{}: {:?}", oc.op_name(), oc.coverage())
}

fn compare_phase(
    phase: &'static str,
    plan: &FaultSpec,
    clean: &[String],
    faulted: &[String],
) -> PhaseIsolation {
    let armed = plan.arm(phase, clean.len());
    let sabotaged: Vec<usize> = (0..clean.len()).filter(|&i| armed.is_faulted(i)).collect();
    let mut mismatches = Vec::new();
    for (index, (c, f)) in clean.iter().zip(faulted).enumerate() {
        if !armed.is_faulted(index) && c != f {
            mismatches.push(IsolationMismatch {
                index,
                clean: c.clone(),
                faulted: f.clone(),
            });
        }
    }
    PhaseIsolation {
        phase,
        items: clean.len(),
        faulted: sabotaged,
        mismatches,
        item_counts_agree: clean.len() == faulted.len(),
    }
}

/// Runs both checkers twice — clean, then under `plan` — and verifies
/// that every non-faulted work item's verdict is byte-identical across
/// the two runs. `config.faults` is ignored (the harness supplies its
/// own plans); `config.jobs` and `config.fuel` apply to both runs.
pub fn fault_isolation_check(
    spec: &Spec,
    probe: &ProbeConfig,
    plan: &FaultSpec,
    config: &CheckConfig,
) -> FaultIsolationReport {
    let clean_cfg = CheckConfig {
        faults: None,
        ..config.clone()
    };
    let fault_cfg = CheckConfig {
        faults: Some(plan.clone()),
        ..config.clone()
    };

    let comp_clean = check_completeness_with_config(spec, &clean_cfg);
    let comp_fault = check_completeness_with_config(spec, &fault_cfg);
    let cons_clean = check_consistency_with_config(spec, probe, &clean_cfg);
    let cons_fault = check_consistency_with_config(spec, probe, &fault_cfg);

    let comp_items: Vec<String> = comp_clean.coverage().iter().map(coverage_item).collect();
    let comp_items_f: Vec<String> = comp_fault.coverage().iter().map(coverage_item).collect();

    let phases = vec![
        compare_phase("completeness", plan, &comp_items, &comp_items_f),
        compare_phase(
            "pairs",
            plan,
            cons_clean.pair_verdicts(),
            cons_fault.pair_verdicts(),
        ),
        compare_phase(
            "probes",
            plan,
            cons_clean.probe_verdicts(),
            cons_fault.probe_verdicts(),
        ),
    ];

    FaultIsolationReport {
        plan: plan.clone(),
        jobs: config.jobs,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_core::{SpecBuilder, Term};

    fn queue_like_spec() -> Spec {
        // Enough derived ops and axioms to give every phase real items.
        let mut b = SpecBuilder::new("Nat");
        let s = b.sort("Nat");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let pred = b.op("PRED", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let n = Term::Var(b.var("n", s));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("p1", b.app(pred, [b.app(zero, [])]), Term::Error(s));
        b.axiom("p2", b.app(pred, [b.app(succ, [n.clone()])]), n.clone());
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [n])]), ff);
        b.build().unwrap()
    }

    #[test]
    fn plan_parser_round_trips() {
        let plan = parse_fault_plan("seed=7,panic=1,exhaust=2,slow=3,slow-ms=5").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panics, 1);
        assert_eq!(plan.exhausts, 2);
        assert_eq!(plan.slows, 3);
        assert_eq!(plan.slow_ms, 5);
        assert_eq!(parse_fault_plan("").unwrap(), FaultSpec::default());
        assert!(parse_fault_plan("panic=x").is_err());
        assert!(parse_fault_plan("frobnicate=1").is_err());
        assert!(parse_fault_plan("panic").is_err());
    }

    #[test]
    fn plan_parser_rejects_duplicate_keys() {
        // A literal repeat: the second assignment must not silently win.
        let err = parse_fault_plan("seed=1,seed=2").unwrap_err();
        assert!(err.contains("`seed`"), "unhelpful error: {err}");
        assert!(err.contains("more than once"), "unhelpful error: {err}");

        // An alias pair names the same knob, so it is the same conflict
        // even though the spellings differ.
        let err = parse_fault_plan("panic=1,panics=2").unwrap_err();
        assert!(err.contains("`panics`"), "unhelpful error: {err}");
        assert!(err.contains("`panic`"), "unhelpful error: {err}");

        for dup in [
            "exhaust=1,exhausts=1",
            "slows=1,slow=1",
            "slow-ms=1,slow-ms=2",
            "seed=7,panic=1,exhaust=1,panic=1",
        ] {
            assert!(parse_fault_plan(dup).is_err(), "accepted `{dup}`");
        }

        // Distinct keys remain fine in any order.
        let plan = parse_fault_plan("slows=2,panics=1,seed=9").unwrap();
        assert_eq!((plan.seed, plan.panics, plan.slows), (9, 1, 2));
    }

    #[test]
    fn injected_faults_are_isolated_at_any_job_count() {
        let spec = queue_like_spec();
        let plan = parse_fault_plan("seed=3,panic=1,exhaust=1,slow=1,slow-ms=1").unwrap();
        for jobs in [1, 4] {
            let report = fault_isolation_check(
                &spec,
                &ProbeConfig::default(),
                &plan,
                &CheckConfig::jobs(jobs),
            );
            assert!(report.isolated(), "jobs {jobs}:\n{}", report.render());
            assert!(report.faults_injected() > 0);
            assert!(report.render().contains("non-faulted verdicts identical: yes"));
        }
    }

    #[test]
    fn inert_plan_reports_no_faults() {
        let spec = queue_like_spec();
        let report = fault_isolation_check(
            &spec,
            &ProbeConfig::default(),
            &FaultSpec::default(),
            &CheckConfig::jobs(2),
        );
        assert!(report.isolated());
        assert_eq!(report.faults_injected(), 0);
    }
}
