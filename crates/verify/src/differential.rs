//! Spec-driven differential testing: independent interpreters of the same
//! specification must agree.
//!
//! Two oracles, both derived mechanically from a [`Spec`] — no
//! hand-written expected values anywhere:
//!
//! * **checker vs. checker** — the parallel checking engine
//!   ([`check_completeness_jobs`], [`check_consistency_jobs`]) must
//!   produce *byte-identical* reports to the sequential one at any job
//!   count. Parallelism is an implementation detail; any divergence is a
//!   merge-order bug.
//! * **rewriter vs. model** — for bounded ground terms `t` over the
//!   signature (constructor arguments under every operation root), a
//!   correct implementation is *invariant under rewriting*:
//!   `eval(t) ≡ eval(nf(t))` in the model, where `nf` is the symbolic
//!   normal form under the axioms. This is the classic algebraic testing
//!   oracle (Gaudel): the axioms generate the test cases *and* the
//!   expected results, so a FIFO model passes against the Queue axioms
//!   while a LIFO model is caught on the first `FRONT(ADD(ADD(…)))`.

use adt_check::{
    check_completeness_session, check_completeness_with_config, check_consistency_session,
    check_consistency_with_config, CheckConfig, CompletenessReport, ConsistencyReport, ProbeConfig,
};
use adt_core::{display, Fuel, Session, Spec, Supervisor};
use adt_rewrite::{RewriteError, Rewriter};

use crate::eval::eval_ground;
use crate::gen::enumerate_terms;
use crate::model::Model;

/// Bounds for the differential harness.
#[derive(Debug, Clone)]
pub struct DifferentialConfig {
    /// Depth bound for the constructor arguments of generated terms.
    pub max_arg_depth: usize,
    /// Cap on generated terms per operation root.
    pub cap_per_op: usize,
    /// Worker count compared against the sequential (1-job) run.
    pub jobs: usize,
    /// Probe configuration used by both consistency runs.
    pub probe: ProbeConfig,
    /// Resource budget applied to every checker run and to the
    /// rewriter-vs-model oracle's normalizations.
    pub fuel: Fuel,
    /// Cooperative supervision (deadline / cancellation) threaded through
    /// every checker run and oracle normalization. Inert by default.
    pub supervisor: Supervisor,
}

impl Default for DifferentialConfig {
    fn default() -> Self {
        DifferentialConfig {
            max_arg_depth: 3,
            cap_per_op: 50,
            jobs: 4,
            probe: ProbeConfig::default(),
            fuel: Fuel::default(),
            supervisor: Supervisor::none(),
        }
    }
}

/// One rewriter-vs-model disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleMismatch {
    /// The generated term, rendered.
    pub term: String,
    /// Its symbolic normal form, rendered.
    pub normal_form: String,
    /// What went wrong.
    pub detail: String,
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Name of the specification tested.
    pub spec: String,
    /// Ground terms the rewriter-vs-model oracle examined (0 when no
    /// model was supplied).
    pub terms_tested: usize,
    /// Human-readable descriptions of parallel-vs-sequential checker
    /// divergences (empty means the reports were identical).
    pub checker_diffs: Vec<String>,
    /// Rewriter-vs-model disagreements.
    pub mismatches: Vec<OracleMismatch>,
    /// Oracle terms the supervisor stopped before a verdict. Partial
    /// coverage, not a failure: [`DifferentialReport::passed`] ignores it.
    pub interrupted: usize,
}

impl DifferentialReport {
    /// Whether every oracle agreed.
    pub fn passed(&self) -> bool {
        self.checker_diffs.is_empty() && self.mismatches.is_empty()
    }

    /// A printable account of every disagreement.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.checker_diffs {
            out.push_str("checker divergence: ");
            out.push_str(d);
            out.push('\n');
        }
        for m in &self.mismatches {
            out.push_str(&format!(
                "model mismatch: eval({}) != eval({}) — {}\n",
                m.term, m.normal_form, m.detail
            ));
        }
        if self.interrupted > 0 {
            out.push_str(&format!(
                "interrupted: {} oracle term(s) stopped before a verdict\n",
                self.interrupted
            ));
        }
        out
    }
}

/// Checker-vs-checker differential: runs completeness and consistency
/// sequentially and with `cfg.jobs` workers and reports any divergence
/// between the two reports.
pub fn differential_spec_check(spec: &Spec, cfg: &DifferentialConfig) -> DifferentialReport {
    let seq_cfg = CheckConfig::jobs(1)
        .with_fuel(cfg.fuel)
        .with_supervisor(cfg.supervisor.clone());
    let par_cfg = CheckConfig::jobs(cfg.jobs)
        .with_fuel(cfg.fuel)
        .with_supervisor(cfg.supervisor.clone());
    let comp_seq = check_completeness_with_config(spec, &seq_cfg);
    let comp_par = check_completeness_with_config(spec, &par_cfg);
    let cons_seq = check_consistency_with_config(spec, &cfg.probe, &seq_cfg);
    let cons_par = check_consistency_with_config(spec, &cfg.probe, &par_cfg);
    DifferentialReport {
        spec: spec.name().to_owned(),
        terms_tested: 0,
        checker_diffs: diff_reports(&comp_seq, &comp_par, &cons_seq, &cons_par),
        mismatches: Vec::new(),
        interrupted: 0,
    }
}

/// [`differential_spec_check`] against a shared [`Session`]: all four
/// checker runs (sequential and parallel, completeness and consistency)
/// borrow the session's arena and memo, so the comparison also exercises
/// the warm-cache path — the parallel run sees every fact the sequential
/// run derived.
///
/// The reports must still match byte-for-byte: memoized facts are
/// context-free and can only shorten a derivation, never change a normal
/// form. The one caveat is inherited from [`check_consistency_session`]:
/// a probe whose exhaustion is fuel-marginal could normalize on the warm
/// second run after giving up on the cold first one. At the default fuel
/// on the shipped specifications no probe is marginal.
pub fn differential_spec_check_session(
    session: &Session,
    cfg: &DifferentialConfig,
) -> DifferentialReport {
    let seq_cfg = CheckConfig::jobs(1)
        .with_fuel(cfg.fuel)
        .with_supervisor(cfg.supervisor.clone());
    let par_cfg = CheckConfig::jobs(cfg.jobs)
        .with_fuel(cfg.fuel)
        .with_supervisor(cfg.supervisor.clone());
    let comp_seq = check_completeness_session(session, &seq_cfg);
    let comp_par = check_completeness_session(session, &par_cfg);
    let cons_seq = check_consistency_session(session, &cfg.probe, &seq_cfg);
    let cons_par = check_consistency_session(session, &cfg.probe, &par_cfg);
    DifferentialReport {
        spec: session.spec().name().to_owned(),
        terms_tested: 0,
        checker_diffs: diff_reports(&comp_seq, &comp_par, &cons_seq, &cons_par),
        mismatches: Vec::new(),
        interrupted: 0,
    }
}

fn diff_reports(
    comp_seq: &CompletenessReport,
    comp_par: &CompletenessReport,
    cons_seq: &ConsistencyReport,
    cons_par: &ConsistencyReport,
) -> Vec<String> {
    let mut diffs = Vec::new();
    if comp_seq.is_sufficiently_complete() != comp_par.is_sufficiently_complete() {
        diffs.push(format!(
            "completeness verdict: sequential {} vs parallel {}",
            comp_seq.is_sufficiently_complete(),
            comp_par.is_sufficiently_complete()
        ));
    }
    if comp_seq.coverage() != comp_par.coverage() {
        diffs.push("completeness coverage tables differ".to_owned());
    }
    if comp_seq.prompts() != comp_par.prompts() {
        diffs.push("completeness prompts differ".to_owned());
    }

    if cons_seq.is_consistent() != cons_par.is_consistent() {
        diffs.push(format!(
            "consistency verdict: sequential {} vs parallel {}",
            cons_seq.is_consistent(),
            cons_par.is_consistent()
        ));
    }
    if cons_seq.contradictions() != cons_par.contradictions() {
        diffs.push("contradiction lists differ".to_owned());
    }
    if cons_seq.pair_verdicts() != cons_par.pair_verdicts()
        || cons_seq.probe_verdicts() != cons_par.probe_verdicts()
    {
        diffs.push("per-item verdict vectors differ".to_owned());
    }
    if cons_seq.summary() != cons_par.summary() {
        diffs.push(format!(
            "consistency summaries differ:\n--- sequential\n{}\n--- parallel\n{}",
            cons_seq.summary(),
            cons_par.summary()
        ));
    }
    if (cons_seq.pairs_checked(), cons_seq.probes_run())
        != (cons_par.pairs_checked(), cons_par.probes_run())
    {
        diffs.push("pair/probe counts differ".to_owned());
    }
    diffs
}

/// Full differential run: the checker-vs-checker comparison of
/// [`differential_spec_check`] plus the rewriter-vs-model invariance
/// oracle over bounded ground terms.
pub fn differential_check(
    model: &(dyn Model + Sync),
    cfg: &DifferentialConfig,
) -> DifferentialReport {
    let spec = model.spec();
    let mut report = differential_spec_check(spec, cfg);

    let sig = spec.sig();
    let rw = Rewriter::new(spec)
        .with_budget(cfg.fuel)
        .supervised(cfg.supervisor.clone());
    let terms = enumerate_terms(sig, cfg.max_arg_depth, cfg.cap_per_op);
    for t in &terms {
        let rendered = display::term(sig, t).to_string();
        let nf = match rw.normalize(t) {
            Ok(nf) => nf,
            Err(RewriteError::Interrupted { .. }) => {
                report.interrupted += 1;
                continue;
            }
            Err(e) => {
                report.mismatches.push(OracleMismatch {
                    term: rendered,
                    normal_form: "<none>".to_owned(),
                    detail: format!("normalization failed: {e}"),
                });
                continue;
            }
        };
        let direct = eval_ground(model, t);
        let via_nf = eval_ground(model, &nf);
        let sort = t.sort(sig).expect("generated terms are well-sorted");
        if !model.values_equal(sort, &direct, &via_nf) {
            report.mismatches.push(OracleMismatch {
                term: rendered,
                normal_form: display::term(sig, &nf).to_string(),
                detail: format!("direct value {direct:?} vs normal-form value {via_nf:?}"),
            });
        }
    }
    report.terms_tested = terms.len();
    report
}

/// [`differential_check`] against a shared [`Session`]: the checker runs
/// go through [`differential_spec_check_session`], and the
/// rewriter-vs-model oracle normalizes through the session's id surface
/// ([`Rewriter::normalize_id`]), so every generated term is interned
/// once and its normal form lands in the session's NF cache for later
/// checks.
///
/// The model must implement the session's specification. The interned
/// ids never leave this function — session ids are session-local, and
/// the report carries rendered terms only.
pub fn differential_check_session(
    session: &Session,
    model: &(dyn Model + Sync),
    cfg: &DifferentialConfig,
) -> DifferentialReport {
    let spec = model.spec();
    let mut report = differential_spec_check_session(session, cfg);

    let sig = spec.sig();
    let rw = Rewriter::for_session(session)
        .with_budget(cfg.fuel)
        .supervised(cfg.supervisor.clone());
    let terms = enumerate_terms(sig, cfg.max_arg_depth, cfg.cap_per_op);
    for t in &terms {
        let rendered = display::term(sig, t).to_string();
        let id = session.intern(t);
        let nf = match rw.normalize_id(session, id) {
            Ok(nf_id) => session.term(nf_id),
            Err(RewriteError::Interrupted { .. }) => {
                report.interrupted += 1;
                continue;
            }
            Err(e) => {
                report.mismatches.push(OracleMismatch {
                    term: rendered,
                    normal_form: "<none>".to_owned(),
                    detail: format!("normalization failed: {e}"),
                });
                continue;
            }
        };
        let direct = eval_ground(model, t);
        let via_nf = eval_ground(model, &nf);
        let sort = t.sort(sig).expect("generated terms are well-sorted");
        if !model.values_equal(sort, &direct, &via_nf) {
            report.mismatches.push(OracleMismatch {
                term: rendered,
                normal_form: display::term(sig, &nf).to_string(),
                detail: format!("direct value {direct:?} vs normal-form value {via_nf:?}"),
            });
        }
    }
    report.terms_tested = terms.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness itself is spec-driven, so the unit tests here only need
    // tiny fixtures; the cross-spec runs live in the workspace-level
    // `differential` and `parallel_equivalence` integration tests.
    use crate::model::ModelBuilder;
    use crate::value::MValue;
    use adt_core::{SpecBuilder, Term};

    fn nat_spec() -> Spec {
        let mut b = SpecBuilder::new("Nat");
        let nat = b.sort("Nat");
        let zero = b.ctor("ZERO", [], nat);
        let succ = b.ctor("SUCC", [nat], nat);
        let pred = b.op("PRED", [nat], nat);
        let is_zero = b.op("IS_ZERO?", [nat], b.bool_sort());
        let n = Term::Var(b.var("n", nat));
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("p1", b.app(pred, [b.app(zero, [])]), Term::Error(nat));
        b.axiom("p2", b.app(pred, [b.app(succ, [n.clone()])]), n.clone());
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [n])]), ff);
        b.build().unwrap()
    }

    fn correct_model(spec: &Spec) -> crate::TableModel<'_> {
        ModelBuilder::new(spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |a| MValue::Int(a[0].as_int().unwrap() + 1))
            .op("PRED", |a| match a[0].as_int().unwrap() {
                0 => MValue::Error,
                n => MValue::Int(n - 1),
            })
            .op("IS_ZERO?", |a| MValue::Bool(a[0].as_int() == Some(0)))
            .build()
            .unwrap()
    }

    /// An off-by-one model: PRED(0) yields 0 instead of error — exactly
    /// the boundary condition the axioms pin down.
    fn saturating_model(spec: &Spec) -> crate::TableModel<'_> {
        ModelBuilder::new(spec)
            .op("ZERO", |_| MValue::Int(0))
            .op("SUCC", |a| MValue::Int(a[0].as_int().unwrap() + 1))
            .op("PRED", |a| MValue::Int(a[0].as_int().unwrap().max(1) - 1))
            .op("IS_ZERO?", |a| MValue::Bool(a[0].as_int() == Some(0)))
            .build()
            .unwrap()
    }

    #[test]
    fn correct_model_is_invariant_under_rewriting() {
        let spec = nat_spec();
        let model = correct_model(&spec);
        let report = differential_check(&model, &DifferentialConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert!(report.terms_tested > 0);
    }

    #[test]
    fn boundary_bug_is_caught_by_the_oracle() {
        let spec = nat_spec();
        let model = saturating_model(&spec);
        let report = differential_check(&model, &DifferentialConfig::default());
        assert!(!report.passed());
        // The offending term is PRED(ZERO) (or a term containing it).
        assert!(
            report.mismatches.iter().any(|m| m.term.contains("PRED")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn checkers_agree_on_the_fixture() {
        let spec = nat_spec();
        let report = differential_spec_check(&spec, &DifferentialConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.terms_tested, 0);
    }

    #[test]
    fn session_differential_agrees_with_fresh_runs() {
        let spec = nat_spec();
        let model = correct_model(&spec);
        let cfg = DifferentialConfig::default();
        let fresh = differential_check(&model, &cfg);

        let session = Session::new(spec.clone());
        let shared = differential_check_session(&session, &model, &cfg);
        assert!(shared.passed(), "{}", shared.render());
        assert_eq!(shared.terms_tested, fresh.terms_tested);
        let stats = session.stats();
        assert!(stats.normalizations > 0, "{stats:?}");
        assert!(stats.interned_terms > 0, "{stats:?}");
    }

    #[test]
    fn session_differential_still_catches_the_boundary_bug() {
        let spec = nat_spec();
        let model = saturating_model(&spec);
        let session = Session::new(spec.clone());
        let report = differential_check_session(&session, &model, &DifferentialConfig::default());
        assert!(!report.passed());
        assert!(
            report.mismatches.iter().any(|m| m.term.contains("PRED")),
            "{}",
            report.render()
        );
    }
}
