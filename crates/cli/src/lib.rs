//! # adt-cli — the `adt` command-line tool
//!
//! A small driver over the whole toolchain, for working with `.adt`
//! specification files from a shell:
//!
//! ```text
//! adt check <file>                 parse + completeness + consistency
//! adt fmt <file>                   print the canonical form
//! adt eval <file> <term>           normalize a term of the specification
//! adt trace <file> <term>          normalize, showing every rewrite step
//! adt prove <file> <lhs> = <rhs>   prove an equation (with case analysis)
//! ```
//!
//! The command logic lives in this library (returning the output as a
//! string) so it is directly testable; the binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod checkpoint;
pub mod repl;

use std::fmt::Write as _;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use adt_check::{
    check_completeness_session, check_consistency_session, classification_warnings,
    overlap_warnings, recursion_warnings, CheckConfig, CheckStats, ConsistencyVerdict, FaultSpec,
    ProbeConfig, RetryFuel,
};
use adt_core::{display, Deadline, Fuel, Session, Spec, Supervisor};
use adt_dsl::{parse_session, parse_term_id, print_spec};
use adt_rewrite::{Proof, Rewriter};
use adt_verify::{fault_isolation_check, parse_fault_plan};

use checkpoint::{fnv1a_hex, Checkpoint, Phase, VerdictGroup};

/// The outcome of running a command: what to print, and the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit code (0 = success; 1 = the check failed; 2 = usage or
    /// input error).
    pub code: i32,
}

impl Outcome {
    fn ok(output: String) -> Self {
        Outcome { output, code: 0 }
    }

    fn fail(output: String) -> Self {
        Outcome { output, code: 1 }
    }

    fn usage(output: String) -> Self {
        Outcome { output, code: 2 }
    }
}

/// The usage banner.
pub const USAGE: &str = "usage:
  adt check [--jobs N] [--stats] [--fuel N] [--deadline DUR] [--retry-fuel PLAN]
            [--checkpoint FILE] [--faults PLAN] <file.adt>
                                       parse and run the mechanical checks
                                       (--jobs 0 = all cores; --stats prints
                                       worker/probe and session arena/memo
                                       telemetry; --fuel caps
                                       rewrite steps per work item; --deadline
                                       bounds the whole run by wall clock,
                                       e.g. 500ms, 2s, 1m — work stopped at
                                       the deadline reports UNDETERMINED;
                                       --retry-fuel re-runs items that ran out
                                       of steps with escalating budgets, e.g.
                                       \"factor=4,rungs=3,cap=64000000\";
                                       --checkpoint records each finished
                                       phase in FILE so an interrupted run
                                       resumes instead of restarting; --faults
                                       injects engine faults, e.g.
                                       \"seed=7,panic=1\", and verifies the
                                       non-faulted verdicts are untouched)
  adt batch [--jobs N] [--fuel N] [--deadline DUR] [--retry-fuel PLAN] <dir>
                                       check every .adt spec in a directory;
                                       each spec gets its own deadline and
                                       panic isolation, and a spec that
                                       panics twice is QUARANTINED (the only
                                       batch outcome with a nonzero exit)
  adt fmt <file.adt>                   print the canonical form
  adt eval <file.adt> <term>           normalize a term
  adt trace <file.adt> <term>          normalize, printing the derivation
  adt prove <file.adt> <lhs> = <rhs>   prove an equation by rewriting
  adt repl <file.adt>                  interactive symbolic interpretation
";

/// Options parsed from `adt check` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckOpts {
    /// Worker threads (`0` = every available core). The default, 1, keeps
    /// output timing-free and matches the sequential checker exactly.
    jobs: usize,
    /// Whether to print the [`CheckStats`] telemetry after the report.
    stats: bool,
    /// Rewrite-step budget per work item (`None` = the engine default).
    fuel: Option<u64>,
    /// Wall-clock budget for the whole run (`None` = unbounded).
    deadline: Option<Duration>,
    /// Escalating-fuel retry ladder for exhausted items (`None` = no retry).
    retry: Option<RetryFuel>,
    /// Checkpoint file for phase-granular resume (`None` = no checkpoint).
    checkpoint: Option<String>,
    /// Fault-injection plan (switches `check` into isolation-harness mode).
    faults: Option<FaultSpec>,
}

/// Splits the `check`/`batch` flags out of an argument list, leaving the
/// positional arguments in place.
fn parse_check_flags(args: &[String]) -> Result<(CheckOpts, Vec<String>), String> {
    let mut opts = CheckOpts {
        jobs: 1,
        stats: false,
        fuel: None,
        deadline: None,
        retry: None,
        checkpoint: None,
        faults: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stats" => opts.stats = true,
            "--jobs" => {
                let Some(n) = it.next() else {
                    return Err("--jobs needs a number (0 = all cores)\n".to_owned());
                };
                opts.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs: `{n}` is not a number\n"))?;
            }
            "--fuel" => {
                let Some(n) = it.next() else {
                    return Err("--fuel needs a rewrite-step budget\n".to_owned());
                };
                let steps: u64 = n
                    .parse()
                    .map_err(|_| format!("--fuel: `{n}` is not a number\n"))?;
                if steps == 0 {
                    return Err("--fuel: the budget must be at least 1\n".to_owned());
                }
                opts.fuel = Some(steps);
            }
            "--deadline" => {
                let Some(dur) = it.next() else {
                    return Err("--deadline needs a duration, e.g. 500ms, 2s, 1m\n".to_owned());
                };
                opts.deadline = Some(parse_deadline(dur)?);
            }
            "--retry-fuel" => {
                let Some(plan) = it.next() else {
                    return Err(
                        "--retry-fuel needs a plan, e.g. \"factor=4,rungs=3\"\n".to_owned()
                    );
                };
                opts.retry =
                    Some(RetryFuel::parse(plan).map_err(|e| format!("--retry-fuel: {e}\n"))?);
            }
            "--checkpoint" => {
                let Some(path) = it.next() else {
                    return Err("--checkpoint needs a file path\n".to_owned());
                };
                opts.checkpoint = Some(path.clone());
            }
            "--faults" => {
                let Some(plan) = it.next() else {
                    return Err("--faults needs a plan, e.g. \"seed=7,panic=1\"\n".to_owned());
                };
                opts.faults =
                    Some(parse_fault_plan(plan).map_err(|e| format!("--faults: {e}\n"))?);
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((opts, positional))
}

/// Parses a human wall-clock duration: `500ms`, `2s`, `1m`, or a bare
/// number of seconds. Zero is allowed — an already-expired deadline is the
/// cheapest way to see a fully degraded (all-UNDETERMINED) report.
pub(crate) fn parse_deadline(text: &str) -> Result<Duration, String> {
    // `ms` must be peeled before `s`: every millisecond suffix also ends
    // in the seconds suffix.
    let (digits, unit_ms) = if let Some(n) = text.strip_suffix("ms") {
        (n, 1.0)
    } else if let Some(n) = text.strip_suffix('s') {
        (n, 1000.0)
    } else if let Some(n) = text.strip_suffix('m') {
        (n, 60_000.0)
    } else {
        (text, 1000.0)
    };
    let value: f64 = digits
        .parse()
        .map_err(|_| format!("--deadline: `{text}` is not a duration (try 500ms, 2s, 1m)\n"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("--deadline: `{text}` is not a duration\n"));
    }
    Ok(Duration::from_secs_f64(value * unit_ms / 1000.0))
}

/// Runs the tool on already-split arguments (without the program name).
pub fn run(args: &[String]) -> Outcome {
    match args {
        [] => Outcome::usage(USAGE.to_owned()),
        [cmd, rest @ ..] => match cmd.as_str() {
            "check" => match parse_check_flags(rest) {
                Ok((opts, positional)) => {
                    with_file(&positional, 0, |session, _| cmd_check(session, &opts))
                }
                Err(msg) => Outcome::usage(format!("{msg}{USAGE}")),
            },
            "batch" => cmd_batch(rest),
            "fmt" => with_file(rest, 0, |session, _| Outcome::ok(print_spec(session.spec()))),
            "eval" => with_file(rest, 1, |session, extra| cmd_eval(session, &extra[0], false)),
            "trace" => with_file(rest, 1, |session, extra| cmd_eval(session, &extra[0], true)),
            "prove" => cmd_prove(rest),
            "help" | "--help" | "-h" => Outcome::ok(USAGE.to_owned()),
            other => Outcome::usage(format!("unknown command `{other}`\n{USAGE}")),
        },
    }
}

/// Loads the `.adt` file named by `args[0]` into one [`Session`] (the
/// interned workspace every command runs against), requires exactly
/// `extra_args` further arguments, and hands both to `f`.
fn with_file(
    args: &[String],
    extra_args: usize,
    f: impl FnOnce(&Session, &[String]) -> Outcome,
) -> Outcome {
    if args.len() != extra_args + 1 {
        return Outcome::usage(USAGE.to_owned());
    }
    let path = &args[0];
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return Outcome::usage(format!("cannot read `{path}`: {e}\n")),
    };
    match parse_session(&source) {
        Ok(session) => f(&session, &args[1..]),
        Err(diags) => Outcome::fail(diags.render(&source)),
    }
}

fn cmd_check(session: &Session, opts: &CheckOpts) -> Outcome {
    let spec = session.spec();
    let mut config = CheckConfig::jobs(opts.jobs);
    if let Some(steps) = opts.fuel {
        config = config.with_fuel(Fuel::steps(steps));
    }
    if let Some(retry) = opts.retry {
        config = config.with_retry(retry);
    }
    if let Some(budget) = opts.deadline {
        // The deadline starts counting here, at command entry, so every
        // phase shares one wall-clock budget.
        config = config.with_supervisor(Supervisor::none().with_deadline(Deadline::after(budget)));
    }
    if let Some(plan) = &opts.faults {
        if opts.checkpoint.is_some() {
            // Fault runs are deliberately non-representative; caching their
            // verdicts would poison a later real resume.
            return Outcome::usage(format!(
                "--checkpoint cannot be combined with --faults\n{USAGE}"
            ));
        }
        // The fault harness injects tiny fuel budgets on purpose; a warm
        // memo would rescue exhaust-faulted items, so it runs spec-based
        // with fresh rewriters rather than against the session.
        return cmd_check_faults(spec, plan, &config);
    }

    // A checkpoint is keyed on the spec's canonical text and the parts of
    // the configuration that determine verdicts (fuel and the retry plan —
    // NOT --jobs, which never changes the report, and NOT the deadline,
    // since a resume may run under a different remaining budget).
    let mut ckpt = opts.checkpoint.as_ref().map(|path| {
        let spec_hash = fnv1a_hex(&print_spec(spec));
        let fingerprint = config_fingerprint(&config);
        let loaded = Checkpoint::load(Path::new(path))
            .filter(|c| c.matches(&spec_hash, &fingerprint))
            .unwrap_or_else(|| Checkpoint::new(spec_hash, fingerprint));
        (PathBuf::from(path), loaded)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} sort(s) of interest, {} operation(s), {} axiom(s)",
        spec.name(),
        spec.tois().len(),
        spec.sig().op_count(),
        spec.axioms().len()
    );
    let mut failed = false;

    // ---- completeness phase (cached section replayed verbatim) ----
    let mut completeness = None;
    match ckpt.as_ref().and_then(|(_, c)| c.phase("completeness")) {
        Some(cached) => {
            failed |= cached.failed;
            out.push_str(&cached.section);
        }
        None => {
            let report = check_completeness_session(session, &config);
            let mut section = String::new();
            let phase_failed = if report.has_definite_missing() {
                // Definite negatives fail the check; a merely *partial*
                // analysis (exhausted, interrupted, or faulted) is reported
                // but keeps exit code 0 — the engine ran out of budget, the
                // spec was not proved wrong.
                let _ = writeln!(section, "sufficiently complete: NO");
                for line in report.prompts().lines() {
                    let _ = writeln!(section, "  {line}");
                }
                true
            } else if !report.undetermined_ops().is_empty() {
                let _ = writeln!(section, "sufficiently complete: UNDETERMINED (partial analysis)");
                for line in report.prompts().lines() {
                    let _ = writeln!(section, "  {line}");
                }
                false
            } else {
                let _ = writeln!(section, "sufficiently complete: yes");
                false
            };
            failed |= phase_failed;
            // Only a phase that ran to the end is worth remembering: an
            // interrupted analysis would replay its degraded verdicts on
            // resume instead of finishing the work.
            if report.interrupted_ops() == 0 {
                if let Some((path, c)) = ckpt.as_mut() {
                    c.set_phase(Phase {
                        name: "completeness".to_owned(),
                        failed: phase_failed,
                        section: section.clone(),
                        verdicts: Vec::new(),
                    });
                    let _ = c.save(path);
                }
            }
            out.push_str(&section);
            completeness = Some(report);
        }
    }

    // ---- consistency phase ----
    let mut consistency = None;
    match ckpt.as_ref().and_then(|(_, c)| c.phase("consistency")) {
        Some(cached) => {
            failed |= cached.failed;
            out.push_str(&cached.section);
        }
        None => {
            let report = check_consistency_session(session, &ProbeConfig::default(), &config);
            let mut section = String::new();
            let phase_failed = match report.verdict() {
                ConsistencyVerdict::Consistent => {
                    let _ = writeln!(
                        section,
                        "consistent: yes ({} critical pairs, {} probes)",
                        report.pairs_checked(),
                        report.probes_run()
                    );
                    false
                }
                ConsistencyVerdict::Exhausted => {
                    let _ = writeln!(
                        section,
                        "consistent: UNDETERMINED (normalization exhausted its fuel budget)"
                    );
                    for line in report.summary().lines().skip(1) {
                        let _ = writeln!(section, "  {line}");
                    }
                    false
                }
                ConsistencyVerdict::Interrupted => {
                    let _ = writeln!(
                        section,
                        "consistent: UNDETERMINED (checking was interrupted before a verdict)"
                    );
                    for line in report.summary().lines().skip(1) {
                        let _ = writeln!(section, "  {line}");
                    }
                    false
                }
                ConsistencyVerdict::Inconsistent | ConsistencyVerdict::Unknown => {
                    let _ = writeln!(section, "consistent: NO");
                    for line in report.summary().lines().skip(1) {
                        let _ = writeln!(section, "  {line}");
                    }
                    true
                }
            };
            for f in report.failures() {
                let _ = writeln!(section, "warning: {}", f.error);
            }
            failed |= phase_failed;
            if report.interrupted_items() == 0 {
                if let Some((path, c)) = ckpt.as_mut() {
                    c.set_phase(Phase {
                        name: "consistency".to_owned(),
                        failed: phase_failed,
                        section: section.clone(),
                        verdicts: vec![
                            VerdictGroup {
                                group: "pairs".to_owned(),
                                items: report.pair_verdicts().to_vec(),
                            },
                            VerdictGroup {
                                group: "probes".to_owned(),
                                items: report.probe_verdicts().to_vec(),
                            },
                        ],
                    });
                    let _ = c.save(path);
                }
            }
            out.push_str(&section);
            consistency = Some(report);
        }
    }

    // Structural warnings are cheap and deterministic — always recomputed,
    // never cached.
    for w in classification_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }
    for w in overlap_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }
    for w in recursion_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }

    if opts.stats {
        // Fold both phases into one telemetry block. Timings vary between
        // runs; everything above this line does not. Phases replayed from a
        // checkpoint did no work, so they contribute nothing here.
        let mut stats = CheckStats::default();
        if let Some(c) = completeness.as_ref().map(|r| r.stats()) {
            stats.absorb(&c.busy, c.elapsed, c.items);
            stats.op_times = c.op_times.clone();
            stats.retries.extend(c.retries.iter().cloned());
        }
        if let Some(k) = consistency.as_ref().map(|r| r.stats()) {
            stats.absorb(&k.busy, k.elapsed, k.items);
            stats.pairs_checked = k.pairs_checked;
            stats.probes_run = k.probes_run;
            stats.rewrite_steps = k.rewrite_steps;
            stats.retries.extend(k.retries.iter().cloned());
        }
        out.push_str(&stats.render());
        out.push_str(&session.stats().render());
    }

    if failed {
        Outcome::fail(out)
    } else {
        Outcome::ok(out)
    }
}

/// The configuration fingerprint checkpoints are validated against.
fn config_fingerprint(config: &CheckConfig) -> String {
    let retry = match &config.retry {
        Some(r) => format!("factor={},rungs={},cap={}", r.factor, r.rungs, r.cap_steps),
        None => "none".to_owned(),
    };
    format!("fuel={};retry={retry}", config.fuel.steps)
}

/// `adt check --faults`: run the fault-isolation harness instead of the
/// plain checks. Exit code 0 means every *non-faulted* work item produced
/// a verdict byte-identical to a fault-free run — the injected faults
/// (worker panics, exhausted budgets, slow chunks) were fully contained.
fn cmd_check_faults(spec: &Spec, plan: &FaultSpec, config: &CheckConfig) -> Outcome {
    let report = fault_isolation_check(spec, &ProbeConfig::default(), plan, config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: fault-injection harness ({} fault(s) armed, {} job(s))",
        spec.name(),
        report.faults_injected(),
        config.jobs
    );
    out.push_str(&report.render());
    if report.isolated() {
        Outcome::ok(out)
    } else {
        Outcome::fail(out)
    }
}

/// One spec's outcome under `adt batch`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchVerdict {
    /// Every check passed.
    Passed,
    /// A definite negative (incomplete, inconsistent, or a parse error).
    Failed,
    /// The checks ran out of fuel or time before a verdict.
    Undetermined,
    /// The spec made the checker panic twice in a row; the payload is the
    /// second panic's message.
    Quarantined(String),
}

/// Maps one `adt check` outcome onto a batch verdict.
fn classify_batch(outcome: &Outcome) -> BatchVerdict {
    if outcome.code != 0 {
        BatchVerdict::Failed
    } else if outcome.output.contains("UNDETERMINED") {
        BatchVerdict::Undetermined
    } else {
        BatchVerdict::Passed
    }
}

/// Runs one spec's check with panic isolation: a first panic earns one
/// retry (transient faults happen), a second quarantines the spec. Returns
/// the verdict and how many attempts panicked.
fn supervise_spec(check: impl Fn() -> Outcome) -> (BatchVerdict, u32) {
    for attempt in 0u32..2 {
        match catch_unwind(AssertUnwindSafe(&check)) {
            Ok(outcome) => return (classify_batch(&outcome), attempt),
            Err(payload) if attempt == 0 => drop(payload),
            Err(payload) => return (BatchVerdict::Quarantined(panic_text(&*payload)), 2),
        }
    }
    unreachable!("both attempts return above")
}

pub(crate) fn panic_text(payload: &dyn std::any::Any) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// `adt batch <dir>`: checks every `.adt` spec in a directory, in name
/// order, under one supervisor policy. Each spec gets a *fresh* deadline
/// (the `--deadline` budget is per spec, not for the whole batch) and full
/// panic isolation. FAILED and UNDETERMINED specs are reported but do not
/// affect the exit code — a batch is a survey, not a gate; only a
/// quarantined spec (the checker itself crashed twice) exits nonzero.
fn cmd_batch(args: &[String]) -> Outcome {
    let (opts, positional) = match parse_check_flags(args) {
        Ok(parsed) => parsed,
        Err(msg) => return Outcome::usage(format!("{msg}{USAGE}")),
    };
    if opts.checkpoint.is_some() {
        return Outcome::usage(format!(
            "batch does not take --checkpoint (each spec is checked in isolation)\n{USAGE}"
        ));
    }
    if opts.faults.is_some() {
        return Outcome::usage(format!(
            "batch does not take --faults (use `adt check --faults` per spec)\n{USAGE}"
        ));
    }
    let [dir] = positional.as_slice() else {
        return Outcome::usage(USAGE.to_owned());
    };
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => return Outcome::usage(format!("cannot read `{dir}`: {e}\n")),
    };
    let mut specs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "adt"))
        .collect();
    specs.sort();
    if specs.is_empty() {
        return Outcome::usage(format!("no .adt specs in `{dir}`\n"));
    }

    let mut out = String::new();
    let (mut passed, mut failed, mut undetermined, mut quarantined) = (0, 0, 0, 0);
    for path in &specs {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let (verdict, panics) = supervise_spec(|| {
            let source = match fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return Outcome::fail(format!("cannot read `{}`: {e}\n", path.display())),
            };
            match parse_session(&source) {
                // cmd_check re-arms Deadline::after at entry, so each spec
                // starts with the full --deadline budget.
                Ok(session) => cmd_check(&session, &opts),
                Err(diags) => Outcome::fail(diags.render(&source)),
            }
        });
        let retried = if panics == 1 { " (retried after a panic)" } else { "" };
        match verdict {
            BatchVerdict::Passed => {
                passed += 1;
                let _ = writeln!(out, "  {name}: PASSED{retried}");
            }
            BatchVerdict::Failed => {
                failed += 1;
                let _ = writeln!(out, "  {name}: FAILED{retried}");
            }
            BatchVerdict::Undetermined => {
                undetermined += 1;
                let _ = writeln!(out, "  {name}: UNDETERMINED{retried}");
            }
            BatchVerdict::Quarantined(msg) => {
                quarantined += 1;
                let _ = writeln!(out, "  {name}: QUARANTINED (panicked twice: {msg})");
            }
        }
    }
    let _ = writeln!(
        out,
        "batch: {} spec(s) — {passed} passed, {failed} failed, {undetermined} undetermined, \
         {quarantined} quarantined",
        specs.len()
    );
    if quarantined > 0 {
        Outcome::fail(out)
    } else {
        Outcome::ok(out)
    }
}

fn cmd_eval(session: &Session, term_src: &str, trace: bool) -> Outcome {
    let sig = session.sig();
    // The query is interned into the session arena and materialized once
    // at the engine boundary; its normal form is recorded back so a later
    // query against the same session starts warm.
    let id = match parse_term_id(session, term_src) {
        Ok(id) => id,
        Err(diags) => return Outcome::fail(diags.render(term_src)),
    };
    let term = session.term(id);
    let rw = Rewriter::for_session(session);
    if trace {
        match rw.normalize_traced(&term) {
            Ok((nf, trace)) => {
                let mut out = trace.render(sig).to_string();
                let _ = writeln!(out, "normal form: {}", display::term(sig, &nf));
                Outcome::ok(out)
            }
            Err(e) => Outcome::fail(format!("{e}\n")),
        }
    } else {
        match rw.normalize_full(&term) {
            Ok(norm) => {
                session.record_nf(id, session.intern(&norm.term));
                session.note_normalization(norm.steps);
                Outcome::ok(format!(
                    "{}   ({} step(s))\n",
                    display::term(sig, &norm.term),
                    norm.steps
                ))
            }
            Err(e) => Outcome::fail(format!("{e}\n")),
        }
    }
}

fn cmd_prove(args: &[String]) -> Outcome {
    // adt prove <file> <lhs> = <rhs>
    if args.len() != 4 || args[2] != "=" {
        return Outcome::usage(USAGE.to_owned());
    }
    let (file, lhs_src, rhs_src) = (&args[0], &args[1], &args[3]);
    let source = match fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => return Outcome::usage(format!("cannot read `{file}`: {e}\n")),
    };
    let session = match parse_session(&source) {
        Ok(s) => s,
        Err(diags) => return Outcome::fail(diags.render(&source)),
    };
    let spec = session.spec();
    let lhs = match parse_term_id(&session, lhs_src) {
        Ok(id) => session.term(id),
        Err(diags) => return Outcome::fail(diags.render(lhs_src)),
    };
    let rhs = match parse_term_id(&session, rhs_src) {
        Ok(id) => session.term(id),
        Err(diags) => return Outcome::fail(diags.render(rhs_src)),
    };
    let rw = Rewriter::for_session(&session);
    match rw.prove_equal(&lhs, &rhs, 8) {
        Ok(Proof::Proved { cases }) => Outcome::ok(format!("proved ({cases} case(s))\n")),
        Ok(Proof::Undecided {
            assumptions,
            lhs_nf,
            rhs_nf,
        }) => {
            let mut out = String::from("NOT proved\n");
            if !assumptions.is_empty() {
                let _ = writeln!(out, "under the assumptions:");
                for (t, b) in &assumptions {
                    let _ = writeln!(out, "  {} = {b}", display::term(spec.sig(), t));
                }
            }
            let _ = writeln!(
                out,
                "left side normalizes to:  {}",
                display::term(spec.sig(), &lhs_nf)
            );
            let _ = writeln!(
                out,
                "right side normalizes to: {}",
                display::term(spec.sig(), &rhs_nf)
            );
            Outcome::fail(out)
        }
        Err(e) => Outcome::fail(format!("{e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("adt_cli_test_{}_{name}.adt", std::process::id()));
        fs::write(&path, contents).expect("temp file is writable");
        path
    }

    const QUEUE: &str = r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool
  A: -> Item ctor
  B: -> Item ctor
vars
  q: Queue
  i: Item
axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]);
        assert_eq!(out.code, 2);
        assert!(out.output.contains("usage:"));
    }

    #[test]
    fn unknown_command_prints_usage() {
        let out = run(&args(&["frobnicate"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("unknown command"));
    }

    #[test]
    fn check_passes_on_a_good_file() {
        let path = fixture("good", QUEUE);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("sufficiently complete: yes"));
        assert!(out.output.contains("consistent: yes"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_jobs_and_stats_flags_are_parsed() {
        let path = fixture("flags", QUEUE);
        let out = run(&args(&[
            "check",
            "--jobs",
            "4",
            "--stats",
            path.to_str().unwrap(),
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("stats: 4 job(s)"), "{}", out.output);
        assert!(out.output.contains("utilization"), "{}", out.output);
        assert!(out.output.contains("stats: session arena"), "{}", out.output);
        assert!(out.output.contains("stats: session memo"), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_without_stats_prints_no_telemetry() {
        let path = fixture("nostats", QUEUE);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(!out.output.contains("stats:"), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_report_is_identical_across_job_counts() {
        let path = fixture("jobseq", QUEUE);
        let seq = run(&args(&["check", "--jobs", "1", path.to_str().unwrap()]));
        let par = run(&args(&["check", "--jobs", "4", path.to_str().unwrap()]));
        assert_eq!(seq, par);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_rejects_malformed_jobs_flag() {
        let out = run(&args(&["check", "--jobs", "many", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("not a number"));
        let out = run(&args(&["check", "--jobs"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--jobs needs a number"));
    }

    const LOOP: &str = "type L\nops\n  C: -> L ctor\n  F: L -> L\nvars\n  x: L\naxioms\n  [1] F(x) = F(x)\nend\n";

    #[test]
    fn check_fuel_flag_surfaces_divergence_as_undetermined() {
        let path = fixture("fuel", LOOP);
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--fuel",
                "100",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output.contains("consistent: UNDETERMINED"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("exhausted probe"),
                "jobs {jobs}: {}",
                out.output
            );
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_faults_flag_runs_the_isolation_harness() {
        let path = fixture("faults", QUEUE);
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--faults",
                "seed=7,panic=1",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output.contains("fault-injection harness"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("non-faulted verdicts identical: yes"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("faulted item(s) ["),
                "jobs {jobs}: {}",
                out.output
            );
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_rejects_malformed_fuel_and_fault_flags() {
        let out = run(&args(&["check", "--fuel", "many", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("not a number"));
        let out = run(&args(&["check", "--fuel", "0", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("at least 1"));
        let out = run(&args(&["check", "--faults", "frobnicate=1", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("unknown fault plan key"));
        let out = run(&args(&["check", "--faults"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--faults needs a plan"));
    }

    #[test]
    fn check_fails_on_an_incomplete_file() {
        let incomplete: String = QUEUE
            .lines()
            .filter(|l| !l.contains("[4]"))
            .collect::<Vec<_>>()
            .join("\n");
        let path = fixture("incomplete", &incomplete);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("sufficiently complete: NO"));
        assert!(out.output.contains("FRONT(ADD("), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_reports_parse_errors_with_carets() {
        let path = fixture("broken", "type Q\nops\n  F: Zorp -> Q\nend");
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("unknown sort `Zorp`"));
        assert!(out.output.contains('^'));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_a_usage_error() {
        let out = run(&args(&["check", "/no/such/file.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("cannot read"));
    }

    #[test]
    fn fmt_round_trips() {
        let path = fixture("fmt", QUEUE);
        let out = run(&args(&["fmt", path.to_str().unwrap()]));
        assert_eq!(out.code, 0);
        assert!(out.output.contains("type Queue"));
        assert!(out.output.contains("[4] FRONT(ADD(q, i)) ="));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn eval_normalizes_terms() {
        let path = fixture("eval", QUEUE);
        let out = run(&args(&[
            "eval",
            path.to_str().unwrap(),
            "FRONT(ADD(ADD(NEW, A), B))",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.starts_with("A "), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn eval_reports_bad_terms() {
        let path = fixture("evalbad", QUEUE);
        let out = run(&args(&[
            "eval",
            path.to_str().unwrap(),
            "FRONT(APPEND(NEW))",
        ]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("unknown operation `APPEND`"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn trace_shows_the_derivation() {
        let path = fixture("trace", QUEUE);
        let out = run(&args(&[
            "trace",
            path.to_str().unwrap(),
            "REMOVE(ADD(NEW, A))",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("=[6]=>"), "{}", out.output);
        assert!(out.output.contains("normal form: NEW"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_closes_a_symbolic_equation() {
        let path = fixture("prove", QUEUE);
        let out = run(&args(&[
            "prove",
            path.to_str().unwrap(),
            "FRONT(ADD(q, i))",
            "=",
            "if IS_EMPTY?(q) then i else FRONT(q)",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("proved"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_reports_failures_with_normal_forms() {
        let path = fixture("provebad", QUEUE);
        let out = run(&args(&["prove", path.to_str().unwrap(), "A", "=", "B"]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("NOT proved"));
        assert!(out.output.contains("left side normalizes to:  A"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_usage_requires_equals_sign() {
        let path = fixture("proveusage", QUEUE);
        let out = run(&args(&["prove", path.to_str().unwrap(), "A", "B"]));
        assert_eq!(out.code, 2);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn parse_deadline_accepts_common_suffixes() {
        assert_eq!(parse_deadline("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_deadline("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_deadline("1m").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_deadline("3").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_deadline("0s").unwrap(), Duration::ZERO);
        assert_eq!(parse_deadline("1.5s").unwrap(), Duration::from_millis(1500));
        assert!(parse_deadline("fast").is_err());
        assert!(parse_deadline("-1s").is_err());
        let out = run(&args(&["check", "--deadline", "soon", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("not a duration"));
    }

    #[test]
    fn check_expired_deadline_degrades_to_undetermined() {
        let path = fixture("deadline0", QUEUE);
        let mut reports = Vec::new();
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--deadline",
                "0s",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output
                    .contains("sufficiently complete: UNDETERMINED (partial analysis)"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output
                    .contains("consistent: UNDETERMINED (checking was interrupted"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("deadline exceeded"),
                "jobs {jobs}: {}",
                out.output
            );
            reports.push(out);
        }
        // An already-expired deadline interrupts every item before it
        // starts, so even the degraded report is identical at any --jobs.
        assert_eq!(reports[0], reports[1]);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_generous_deadline_leaves_the_report_untouched() {
        let path = fixture("deadline60", QUEUE);
        let plain = run(&args(&["check", path.to_str().unwrap()]));
        let supervised = run(&args(&[
            "check",
            "--deadline",
            "60s",
            path.to_str().unwrap(),
        ]));
        assert_eq!(plain, supervised);
        let _ = fs::remove_file(path);
    }

    fn retry_stat_lines(output: &str) -> Vec<String> {
        output
            .lines()
            .filter(|l| l.contains("stats: retry"))
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn check_retry_ladder_reports_rescued_rungs_in_stats() {
        // Starve the checker (--fuel 2) and let the ladder escalate: items
        // that exhausted their first budget come back rescued, and --stats
        // names the rung that saved each one. Sequential only — at tiny
        // budgets a concurrently warmed memo can legitimately rescue an
        // item at rung 0, so cross-job telemetry is compared on the
        // divergent spec below instead.
        let path = fixture("retry", QUEUE);
        let cmd = args(&[
            "check",
            "--fuel",
            "2",
            "--retry-fuel",
            "factor=8,rungs=3",
            "--stats",
            path.to_str().unwrap(),
        ]);
        let out = run(&cmd);
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("rescued at rung"), "{}", out.output);
        let lines = retry_stat_lines(&out.output);
        assert!(!lines.is_empty(), "{}", out.output);
        // Re-running the same command reproduces the same ladder telemetry.
        assert_eq!(lines, retry_stat_lines(&run(&cmd).output));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_retry_ladder_telemetry_is_identical_across_job_counts() {
        // A genuinely divergent operation can never be rescued — no memo
        // warmth or scheduling changes that — so the rung telemetry must be
        // byte-identical at any --jobs.
        let path = fixture("retryloop", LOOP);
        let mut per_jobs = Vec::new();
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--fuel",
                "100",
                "--retry-fuel",
                "factor=4,rungs=2",
                "--stats",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output.contains("still exhausted at rung 2"),
                "jobs {jobs}: {}",
                out.output
            );
            per_jobs.push(retry_stat_lines(&out.output));
        }
        assert_eq!(per_jobs[0], per_jobs[1]);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_rejects_malformed_retry_and_deadline_flags() {
        let out = run(&args(&["check", "--retry-fuel", "sideways=9", "x.adt"]));
        assert_eq!(out.code, 2, "{}", out.output);
        let out = run(&args(&["check", "--retry-fuel"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--retry-fuel needs a plan"));
        let out = run(&args(&["check", "--deadline"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--deadline needs a duration"));
        let out = run(&args(&["check", "--checkpoint"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--checkpoint needs a file path"));
    }

    #[test]
    fn check_checkpoint_with_faults_is_a_usage_error() {
        let path = fixture("ckptfaults", QUEUE);
        let out = run(&args(&[
            "check",
            "--checkpoint",
            "/tmp/never-written.json",
            "--faults",
            "seed=7,panic=1",
            path.to_str().unwrap(),
        ]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--checkpoint cannot be combined"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_checkpoint_resumes_byte_identical_at_any_job_count() {
        let path = fixture("ckpt", QUEUE);
        let mut ck = std::env::temp_dir();
        ck.push(format!("adt_cli_test_{}_ckpt.json", std::process::id()));
        let _ = fs::remove_file(&ck);
        let plain = run(&args(&["check", path.to_str().unwrap()]));

        // A full run populates the checkpoint without changing the report.
        let first = run(&args(&[
            "check",
            "--checkpoint",
            ck.to_str().unwrap(),
            path.to_str().unwrap(),
        ]));
        assert_eq!(first, plain);
        let saved = Checkpoint::load(&ck).expect("checkpoint written");
        assert!(saved.phase("completeness").is_some());
        assert!(saved.phase("consistency").is_some());

        // Simulate a run killed between the phases: only completeness was
        // recorded. Resuming must replay it and recompute the rest, ending
        // byte-identical to the uninterrupted run — at any --jobs.
        let mut partial = saved.clone();
        partial.phases.retain(|p| p.name == "completeness");
        for jobs in ["1", "4"] {
            partial.save(&ck).expect("checkpoint is writable");
            let resumed = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--checkpoint",
                ck.to_str().unwrap(),
                path.to_str().unwrap(),
            ]));
            assert_eq!(resumed, plain, "jobs {jobs}");
        }

        // A replay from a fully populated checkpoint is also identical.
        let replay = run(&args(&[
            "check",
            "--checkpoint",
            ck.to_str().unwrap(),
            path.to_str().unwrap(),
        ]));
        assert_eq!(replay, plain);

        // Changing the fuel changes the fingerprint: the stale checkpoint
        // is ignored (fresh run), then overwritten with the new config.
        let refueled = run(&args(&[
            "check",
            "--fuel",
            "500000",
            "--checkpoint",
            ck.to_str().unwrap(),
            path.to_str().unwrap(),
        ]));
        assert_eq!(refueled.code, 0, "{}", refueled.output);
        let rewritten = Checkpoint::load(&ck).expect("checkpoint rewritten");
        assert!(rewritten.config.contains("fuel=500000"));

        let _ = fs::remove_file(path);
        let _ = fs::remove_file(ck);
    }

    #[test]
    fn expired_deadline_caches_no_phases() {
        let path = fixture("ckptdead", QUEUE);
        let mut ck = std::env::temp_dir();
        ck.push(format!("adt_cli_test_{}_dead.json", std::process::id()));
        let _ = fs::remove_file(&ck);
        let out = run(&args(&[
            "check",
            "--deadline",
            "0s",
            "--checkpoint",
            ck.to_str().unwrap(),
            path.to_str().unwrap(),
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        // Both phases were interrupted, so neither may be remembered — a
        // resume must redo the work, not replay the degraded verdicts.
        assert!(Checkpoint::load(&ck).is_none_or(|c| c.phases.is_empty()));
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(ck);
    }

    fn batch_dir(name: &str, specs: &[(&str, &str)]) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("adt_cli_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir is writable");
        for (file, contents) in specs {
            fs::write(dir.join(file), contents).expect("spec is writable");
        }
        dir
    }

    #[test]
    fn batch_surveys_a_directory_without_failing_on_bad_specs() {
        let incomplete: String = QUEUE
            .lines()
            .filter(|l| !l.contains("[4]"))
            .collect::<Vec<_>>()
            .join("\n");
        let dir = batch_dir(
            "batch",
            &[
                ("a_good.adt", QUEUE),
                ("b_incomplete.adt", &incomplete),
                ("c_loop.adt", LOOP),
                ("ignored.txt", "not a spec"),
            ],
        );
        let out = run(&args(&["batch", "--fuel", "100", dir.to_str().unwrap()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("a_good.adt: PASSED"), "{}", out.output);
        assert!(
            out.output.contains("b_incomplete.adt: FAILED"),
            "{}",
            out.output
        );
        assert!(
            out.output.contains("c_loop.adt: UNDETERMINED"),
            "{}",
            out.output
        );
        assert!(
            out.output.contains(
                "batch: 3 spec(s) — 1 passed, 1 failed, 1 undetermined, 0 quarantined"
            ),
            "{}",
            out.output
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_rejects_checkpoint_faults_and_bad_directories() {
        let out = run(&args(&["batch", "--checkpoint", "x.json", "specs"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("batch does not take --checkpoint"));
        let out = run(&args(&["batch", "--faults", "seed=7,panic=1", "specs"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("batch does not take --faults"));
        let out = run(&args(&["batch", "/no/such/dir"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("cannot read"));
        let empty = batch_dir("empty", &[]);
        let out = run(&args(&["batch", empty.to_str().unwrap()]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("no .adt specs"));
        let _ = fs::remove_dir_all(empty);
    }

    #[test]
    fn supervise_spec_retries_once_then_quarantines() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let (verdict, panics) = supervise_spec(|| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient fault");
            }
            Outcome::ok("consistent: yes\n".to_owned())
        });
        assert_eq!(verdict, BatchVerdict::Passed);
        assert_eq!(panics, 1);

        let (verdict, panics) = supervise_spec(|| panic!("hard crash"));
        assert!(
            matches!(&verdict, BatchVerdict::Quarantined(msg) if msg.contains("hard crash")),
            "{verdict:?}"
        );
        assert_eq!(panics, 2);
    }

    #[test]
    fn classify_batch_maps_outcomes_onto_verdicts() {
        let ok = Outcome::ok("consistent: yes\n".to_owned());
        assert_eq!(classify_batch(&ok), BatchVerdict::Passed);
        let undet = Outcome::ok("consistent: UNDETERMINED (…)\n".to_owned());
        assert_eq!(classify_batch(&undet), BatchVerdict::Undetermined);
        let bad = Outcome::fail("consistent: NO\n".to_owned());
        assert_eq!(classify_batch(&bad), BatchVerdict::Failed);
    }
}
