//! # adt-cli — the `adt` command-line tool
//!
//! A small driver over the whole toolchain, for working with `.adt`
//! specification files from a shell:
//!
//! ```text
//! adt check <file>                 parse + completeness + consistency
//! adt fmt <file>                   print the canonical form
//! adt eval <file> <term>           normalize a term of the specification
//! adt trace <file> <term>          normalize, showing every rewrite step
//! adt prove <file> <lhs> = <rhs>   prove an equation (with case analysis)
//! ```
//!
//! The command logic lives in this library (returning the output as a
//! string) so it is directly testable; the binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod repl;

use std::fmt::Write as _;
use std::fs;

use adt_check::{
    check_completeness_session, check_consistency_session, classification_warnings,
    overlap_warnings, recursion_warnings, CheckConfig, CheckStats, ConsistencyVerdict, FaultSpec,
    ProbeConfig,
};
use adt_core::{display, Fuel, Session, Spec};
use adt_dsl::{parse_session, parse_term_id, print_spec};
use adt_rewrite::{Proof, Rewriter};
use adt_verify::{fault_isolation_check, parse_fault_plan};

/// The outcome of running a command: what to print, and the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit code (0 = success; 1 = the check failed; 2 = usage or
    /// input error).
    pub code: i32,
}

impl Outcome {
    fn ok(output: String) -> Self {
        Outcome { output, code: 0 }
    }

    fn fail(output: String) -> Self {
        Outcome { output, code: 1 }
    }

    fn usage(output: String) -> Self {
        Outcome { output, code: 2 }
    }
}

/// The usage banner.
pub const USAGE: &str = "usage:
  adt check [--jobs N] [--stats] [--fuel N] [--faults PLAN] <file.adt>
                                       parse and run the mechanical checks
                                       (--jobs 0 = all cores; --stats prints
                                       worker/probe and session arena/memo
                                       telemetry; --fuel caps
                                       rewrite steps per work item; --faults
                                       injects engine faults, e.g.
                                       \"seed=7,panic=1\", and verifies the
                                       non-faulted verdicts are untouched)
  adt fmt <file.adt>                   print the canonical form
  adt eval <file.adt> <term>           normalize a term
  adt trace <file.adt> <term>          normalize, printing the derivation
  adt prove <file.adt> <lhs> = <rhs>   prove an equation by rewriting
  adt repl <file.adt>                  interactive symbolic interpretation
";

/// Options parsed from `adt check` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckOpts {
    /// Worker threads (`0` = every available core). The default, 1, keeps
    /// output timing-free and matches the sequential checker exactly.
    jobs: usize,
    /// Whether to print the [`CheckStats`] telemetry after the report.
    stats: bool,
    /// Rewrite-step budget per work item (`None` = the engine default).
    fuel: Option<u64>,
    /// Fault-injection plan (switches `check` into isolation-harness mode).
    faults: Option<FaultSpec>,
}

/// Splits `--jobs N` / `--stats` / `--fuel N` / `--faults PLAN` out of a
/// `check` argument list, leaving the positional arguments in place.
fn parse_check_flags(args: &[String]) -> Result<(CheckOpts, Vec<String>), String> {
    let mut opts = CheckOpts {
        jobs: 1,
        stats: false,
        fuel: None,
        faults: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stats" => opts.stats = true,
            "--jobs" => {
                let Some(n) = it.next() else {
                    return Err("--jobs needs a number (0 = all cores)\n".to_owned());
                };
                opts.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs: `{n}` is not a number\n"))?;
            }
            "--fuel" => {
                let Some(n) = it.next() else {
                    return Err("--fuel needs a rewrite-step budget\n".to_owned());
                };
                let steps: u64 = n
                    .parse()
                    .map_err(|_| format!("--fuel: `{n}` is not a number\n"))?;
                if steps == 0 {
                    return Err("--fuel: the budget must be at least 1\n".to_owned());
                }
                opts.fuel = Some(steps);
            }
            "--faults" => {
                let Some(plan) = it.next() else {
                    return Err("--faults needs a plan, e.g. \"seed=7,panic=1\"\n".to_owned());
                };
                opts.faults =
                    Some(parse_fault_plan(plan).map_err(|e| format!("--faults: {e}\n"))?);
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((opts, positional))
}

/// Runs the tool on already-split arguments (without the program name).
pub fn run(args: &[String]) -> Outcome {
    match args {
        [] => Outcome::usage(USAGE.to_owned()),
        [cmd, rest @ ..] => match cmd.as_str() {
            "check" => match parse_check_flags(rest) {
                Ok((opts, positional)) => {
                    with_file(&positional, 0, |session, _| cmd_check(session, &opts))
                }
                Err(msg) => Outcome::usage(format!("{msg}{USAGE}")),
            },
            "fmt" => with_file(rest, 0, |session, _| Outcome::ok(print_spec(session.spec()))),
            "eval" => with_file(rest, 1, |session, extra| cmd_eval(session, &extra[0], false)),
            "trace" => with_file(rest, 1, |session, extra| cmd_eval(session, &extra[0], true)),
            "prove" => cmd_prove(rest),
            "help" | "--help" | "-h" => Outcome::ok(USAGE.to_owned()),
            other => Outcome::usage(format!("unknown command `{other}`\n{USAGE}")),
        },
    }
}

/// Loads the `.adt` file named by `args[0]` into one [`Session`] (the
/// interned workspace every command runs against), requires exactly
/// `extra_args` further arguments, and hands both to `f`.
fn with_file(
    args: &[String],
    extra_args: usize,
    f: impl FnOnce(&Session, &[String]) -> Outcome,
) -> Outcome {
    if args.len() != extra_args + 1 {
        return Outcome::usage(USAGE.to_owned());
    }
    let path = &args[0];
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return Outcome::usage(format!("cannot read `{path}`: {e}\n")),
    };
    match parse_session(&source) {
        Ok(session) => f(&session, &args[1..]),
        Err(diags) => Outcome::fail(diags.render(&source)),
    }
}

fn cmd_check(session: &Session, opts: &CheckOpts) -> Outcome {
    let spec = session.spec();
    let mut config = CheckConfig::jobs(opts.jobs);
    if let Some(steps) = opts.fuel {
        config = config.with_fuel(Fuel::steps(steps));
    }
    if let Some(plan) = &opts.faults {
        // The fault harness injects tiny fuel budgets on purpose; a warm
        // memo would rescue exhaust-faulted items, so it runs spec-based
        // with fresh rewriters rather than against the session.
        return cmd_check_faults(spec, plan, &config);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} sort(s) of interest, {} operation(s), {} axiom(s)",
        spec.name(),
        spec.tois().len(),
        spec.sig().op_count(),
        spec.axioms().len()
    );
    let mut failed = false;

    let completeness = check_completeness_session(session, &config);
    if completeness.has_definite_missing() {
        // Definite negatives fail the check; a merely *partial* analysis
        // (exhausted or faulted) is reported but keeps exit code 0 — the
        // engine ran out of budget, the spec was not proved wrong.
        failed = true;
        let _ = writeln!(out, "sufficiently complete: NO");
        for line in completeness.prompts().lines() {
            let _ = writeln!(out, "  {line}");
        }
    } else if !completeness.undetermined_ops().is_empty() {
        let _ = writeln!(out, "sufficiently complete: UNDETERMINED (partial analysis)");
        for line in completeness.prompts().lines() {
            let _ = writeln!(out, "  {line}");
        }
    } else {
        let _ = writeln!(out, "sufficiently complete: yes");
    }

    let consistency = check_consistency_session(session, &ProbeConfig::default(), &config);
    match consistency.verdict() {
        ConsistencyVerdict::Consistent => {
            let _ = writeln!(
                out,
                "consistent: yes ({} critical pairs, {} probes)",
                consistency.pairs_checked(),
                consistency.probes_run()
            );
        }
        ConsistencyVerdict::Exhausted => {
            let _ = writeln!(
                out,
                "consistent: UNDETERMINED (normalization exhausted its fuel budget)"
            );
            for line in consistency.summary().lines().skip(1) {
                let _ = writeln!(out, "  {line}");
            }
        }
        ConsistencyVerdict::Inconsistent | ConsistencyVerdict::Unknown => {
            failed = true;
            let _ = writeln!(out, "consistent: NO");
            for line in consistency.summary().lines().skip(1) {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    for f in consistency.failures() {
        let _ = writeln!(out, "warning: {}", f.error);
    }

    for w in classification_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }
    for w in overlap_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }
    for w in recursion_warnings(spec) {
        let _ = writeln!(out, "warning: {w}");
    }

    if opts.stats {
        // Fold both phases into one telemetry block. Timings vary between
        // runs; everything above this line does not.
        let mut stats = CheckStats::default();
        let c = completeness.stats();
        stats.absorb(&c.busy, c.elapsed, c.items);
        stats.op_times = c.op_times.clone();
        let k = consistency.stats();
        stats.absorb(&k.busy, k.elapsed, k.items);
        stats.pairs_checked = k.pairs_checked;
        stats.probes_run = k.probes_run;
        stats.rewrite_steps = k.rewrite_steps;
        out.push_str(&stats.render());
        out.push_str(&session.stats().render());
    }

    if failed {
        Outcome::fail(out)
    } else {
        Outcome::ok(out)
    }
}

/// `adt check --faults`: run the fault-isolation harness instead of the
/// plain checks. Exit code 0 means every *non-faulted* work item produced
/// a verdict byte-identical to a fault-free run — the injected faults
/// (worker panics, exhausted budgets, slow chunks) were fully contained.
fn cmd_check_faults(spec: &Spec, plan: &FaultSpec, config: &CheckConfig) -> Outcome {
    let report = fault_isolation_check(spec, &ProbeConfig::default(), plan, config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: fault-injection harness ({} fault(s) armed, {} job(s))",
        spec.name(),
        report.faults_injected(),
        config.jobs
    );
    out.push_str(&report.render());
    if report.isolated() {
        Outcome::ok(out)
    } else {
        Outcome::fail(out)
    }
}

fn cmd_eval(session: &Session, term_src: &str, trace: bool) -> Outcome {
    let sig = session.sig();
    // The query is interned into the session arena and materialized once
    // at the engine boundary; its normal form is recorded back so a later
    // query against the same session starts warm.
    let id = match parse_term_id(session, term_src) {
        Ok(id) => id,
        Err(diags) => return Outcome::fail(diags.render(term_src)),
    };
    let term = session.term(id);
    let rw = Rewriter::for_session(session);
    if trace {
        match rw.normalize_traced(&term) {
            Ok((nf, trace)) => {
                let mut out = trace.render(sig).to_string();
                let _ = writeln!(out, "normal form: {}", display::term(sig, &nf));
                Outcome::ok(out)
            }
            Err(e) => Outcome::fail(format!("{e}\n")),
        }
    } else {
        match rw.normalize_full(&term) {
            Ok(norm) => {
                session.record_nf(id, session.intern(&norm.term));
                session.note_normalization(norm.steps);
                Outcome::ok(format!(
                    "{}   ({} step(s))\n",
                    display::term(sig, &norm.term),
                    norm.steps
                ))
            }
            Err(e) => Outcome::fail(format!("{e}\n")),
        }
    }
}

fn cmd_prove(args: &[String]) -> Outcome {
    // adt prove <file> <lhs> = <rhs>
    if args.len() != 4 || args[2] != "=" {
        return Outcome::usage(USAGE.to_owned());
    }
    let (file, lhs_src, rhs_src) = (&args[0], &args[1], &args[3]);
    let source = match fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => return Outcome::usage(format!("cannot read `{file}`: {e}\n")),
    };
    let session = match parse_session(&source) {
        Ok(s) => s,
        Err(diags) => return Outcome::fail(diags.render(&source)),
    };
    let spec = session.spec();
    let lhs = match parse_term_id(&session, lhs_src) {
        Ok(id) => session.term(id),
        Err(diags) => return Outcome::fail(diags.render(lhs_src)),
    };
    let rhs = match parse_term_id(&session, rhs_src) {
        Ok(id) => session.term(id),
        Err(diags) => return Outcome::fail(diags.render(rhs_src)),
    };
    let rw = Rewriter::for_session(&session);
    match rw.prove_equal(&lhs, &rhs, 8) {
        Ok(Proof::Proved { cases }) => Outcome::ok(format!("proved ({cases} case(s))\n")),
        Ok(Proof::Undecided {
            assumptions,
            lhs_nf,
            rhs_nf,
        }) => {
            let mut out = String::from("NOT proved\n");
            if !assumptions.is_empty() {
                let _ = writeln!(out, "under the assumptions:");
                for (t, b) in &assumptions {
                    let _ = writeln!(out, "  {} = {b}", display::term(spec.sig(), t));
                }
            }
            let _ = writeln!(
                out,
                "left side normalizes to:  {}",
                display::term(spec.sig(), &lhs_nf)
            );
            let _ = writeln!(
                out,
                "right side normalizes to: {}",
                display::term(spec.sig(), &rhs_nf)
            );
            Outcome::fail(out)
        }
        Err(e) => Outcome::fail(format!("{e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("adt_cli_test_{}_{name}.adt", std::process::id()));
        fs::write(&path, contents).expect("temp file is writable");
        path
    }

    const QUEUE: &str = r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool
  A: -> Item ctor
  B: -> Item ctor
vars
  q: Queue
  i: Item
axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]);
        assert_eq!(out.code, 2);
        assert!(out.output.contains("usage:"));
    }

    #[test]
    fn unknown_command_prints_usage() {
        let out = run(&args(&["frobnicate"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("unknown command"));
    }

    #[test]
    fn check_passes_on_a_good_file() {
        let path = fixture("good", QUEUE);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("sufficiently complete: yes"));
        assert!(out.output.contains("consistent: yes"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_jobs_and_stats_flags_are_parsed() {
        let path = fixture("flags", QUEUE);
        let out = run(&args(&[
            "check",
            "--jobs",
            "4",
            "--stats",
            path.to_str().unwrap(),
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("stats: 4 job(s)"), "{}", out.output);
        assert!(out.output.contains("utilization"), "{}", out.output);
        assert!(out.output.contains("stats: session arena"), "{}", out.output);
        assert!(out.output.contains("stats: session memo"), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_without_stats_prints_no_telemetry() {
        let path = fixture("nostats", QUEUE);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(!out.output.contains("stats:"), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_report_is_identical_across_job_counts() {
        let path = fixture("jobseq", QUEUE);
        let seq = run(&args(&["check", "--jobs", "1", path.to_str().unwrap()]));
        let par = run(&args(&["check", "--jobs", "4", path.to_str().unwrap()]));
        assert_eq!(seq, par);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_rejects_malformed_jobs_flag() {
        let out = run(&args(&["check", "--jobs", "many", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("not a number"));
        let out = run(&args(&["check", "--jobs"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--jobs needs a number"));
    }

    const LOOP: &str = "type L\nops\n  C: -> L ctor\n  F: L -> L\nvars\n  x: L\naxioms\n  [1] F(x) = F(x)\nend\n";

    #[test]
    fn check_fuel_flag_surfaces_divergence_as_undetermined() {
        let path = fixture("fuel", LOOP);
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--fuel",
                "100",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output.contains("consistent: UNDETERMINED"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("exhausted probe"),
                "jobs {jobs}: {}",
                out.output
            );
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_faults_flag_runs_the_isolation_harness() {
        let path = fixture("faults", QUEUE);
        for jobs in ["1", "4"] {
            let out = run(&args(&[
                "check",
                "--jobs",
                jobs,
                "--faults",
                "seed=7,panic=1",
                path.to_str().unwrap(),
            ]));
            assert_eq!(out.code, 0, "jobs {jobs}: {}", out.output);
            assert!(
                out.output.contains("fault-injection harness"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("non-faulted verdicts identical: yes"),
                "jobs {jobs}: {}",
                out.output
            );
            assert!(
                out.output.contains("faulted item(s) ["),
                "jobs {jobs}: {}",
                out.output
            );
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_rejects_malformed_fuel_and_fault_flags() {
        let out = run(&args(&["check", "--fuel", "many", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("not a number"));
        let out = run(&args(&["check", "--fuel", "0", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("at least 1"));
        let out = run(&args(&["check", "--faults", "frobnicate=1", "x.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("unknown fault plan key"));
        let out = run(&args(&["check", "--faults"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("--faults needs a plan"));
    }

    #[test]
    fn check_fails_on_an_incomplete_file() {
        let incomplete: String = QUEUE
            .lines()
            .filter(|l| !l.contains("[4]"))
            .collect::<Vec<_>>()
            .join("\n");
        let path = fixture("incomplete", &incomplete);
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("sufficiently complete: NO"));
        assert!(out.output.contains("FRONT(ADD("), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn check_reports_parse_errors_with_carets() {
        let path = fixture("broken", "type Q\nops\n  F: Zorp -> Q\nend");
        let out = run(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("unknown sort `Zorp`"));
        assert!(out.output.contains('^'));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_a_usage_error() {
        let out = run(&args(&["check", "/no/such/file.adt"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("cannot read"));
    }

    #[test]
    fn fmt_round_trips() {
        let path = fixture("fmt", QUEUE);
        let out = run(&args(&["fmt", path.to_str().unwrap()]));
        assert_eq!(out.code, 0);
        assert!(out.output.contains("type Queue"));
        assert!(out.output.contains("[4] FRONT(ADD(q, i)) ="));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn eval_normalizes_terms() {
        let path = fixture("eval", QUEUE);
        let out = run(&args(&[
            "eval",
            path.to_str().unwrap(),
            "FRONT(ADD(ADD(NEW, A), B))",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.starts_with("A "), "{}", out.output);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn eval_reports_bad_terms() {
        let path = fixture("evalbad", QUEUE);
        let out = run(&args(&[
            "eval",
            path.to_str().unwrap(),
            "FRONT(APPEND(NEW))",
        ]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("unknown operation `APPEND`"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn trace_shows_the_derivation() {
        let path = fixture("trace", QUEUE);
        let out = run(&args(&[
            "trace",
            path.to_str().unwrap(),
            "REMOVE(ADD(NEW, A))",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("=[6]=>"), "{}", out.output);
        assert!(out.output.contains("normal form: NEW"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_closes_a_symbolic_equation() {
        let path = fixture("prove", QUEUE);
        let out = run(&args(&[
            "prove",
            path.to_str().unwrap(),
            "FRONT(ADD(q, i))",
            "=",
            "if IS_EMPTY?(q) then i else FRONT(q)",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("proved"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_reports_failures_with_normal_forms() {
        let path = fixture("provebad", QUEUE);
        let out = run(&args(&["prove", path.to_str().unwrap(), "A", "=", "B"]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("NOT proved"));
        assert!(out.output.contains("left side normalizes to:  A"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn prove_usage_requires_equals_sign() {
        let path = fixture("proveusage", QUEUE);
        let out = run(&args(&["prove", path.to_str().unwrap(), "A", "B"]));
        assert_eq!(out.code, 2);
        let _ = fs::remove_file(path);
    }
}
