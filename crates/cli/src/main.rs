//! The `adt` binary: a thin wrapper over [`adt_cli::run`] (plus the
//! interactive `repl` subcommand, which owns stdin/stdout directly).

use std::io::{BufReader, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("repl") {
        std::process::exit(run_repl(&args[1..]));
    }
    let outcome = adt_cli::run(&args);
    print!("{}", outcome.output);
    std::process::exit(outcome.code);
}

fn run_repl(args: &[String]) -> i32 {
    let [path] = args else {
        print!("{}", adt_cli::USAGE);
        return 2;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            return 2;
        }
    };
    let spec = match adt_dsl::parse(&source) {
        Ok(spec) => spec,
        Err(diags) => {
            eprint!("{}", diags.render(&source));
            return 1;
        }
    };
    let stdin = std::io::stdin();
    let mut input = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut output = stdout.lock();
    match adt_cli::repl::run_repl(&spec, &mut input, &mut output) {
        Ok(_) => {
            let _ = output.flush();
            0
        }
        Err(e) => {
            eprintln!("i/o error: {e}");
            1
        }
    }
}
