//! `adt repl` — an interactive session over a specification, the §5
//! "system in which implementations and algebraic specifications of
//! abstract types are interchangeable", at a prompt:
//!
//! ```text
//! queue> x := NEW
//! queue> x := ADD(x, A)
//! queue> FRONT(x)
//! A   (2 steps)
//! queue> :trace REMOVE(x)
//! …derivation…
//! queue> :prove FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
//! proved (1 case)
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use adt_check::{CheckConfig, ConsistencyVerdict, ProbeConfig};
use adt_core::{display, Deadline, Session, Spec, Subst, Supervisor, Term};
use adt_dsl::{lower_term_in, parse_term_source, Diagnostics};
use adt_rewrite::{Proof, Rewriter};

/// The REPL's help text.
const REPL_HELP: &str = "commands:
  NAME := <term>        bind a session variable to the normalized term
  <term>                normalize a term (may use bound session variables)
  :trace <term>         normalize, printing every rewrite step
  :prove <t1> = <t2>    prove an equation (boolean case analysis allowed)
  :induct <v> <t1> = <t2>  prove an equation by induction on variable v
  :check                run the completeness and consistency checkers
  :vars                 list bound session variables
  :axioms               list the specification's axioms
  :stats                show session arena/memo telemetry
  :deadline <dur>|off   bound every later line by wall clock (500ms, 2s, 1m);
                        work stopped at the deadline reports UNDETERMINED
  :reset                drop the session (bindings, arena and memo)
  :help                 this text
  :quit                 leave
";

/// What the REPL loop should do after a dispatched line.
enum ReplAction {
    /// Keep going with the same session.
    Continue,
    /// Leave the REPL.
    Quit,
    /// Drop the session (arena, memo, bindings) and start a fresh one.
    Reset,
}

/// Runs the REPL over `input`, writing to `output`. Returns the number of
/// commands executed (used by tests; the binary ignores it).
///
/// One [`Session`] lives for the whole REPL lifetime: every line's
/// rewriter borrows its compiled rules and shares its memo, so normal
/// forms derived on one line stay warm for the next. `:reset` is the
/// explicit way to drop that state.
///
/// # Errors
///
/// Returns any I/O error from reading input or writing output.
pub fn run_repl(
    spec: &Spec,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<usize> {
    let mut session = Session::new(spec.clone());
    let mut env: HashMap<String, Term> = HashMap::new();
    let mut deadline: Option<Duration> = None;
    let mut executed = 0;
    let prompt = spec.name().to_lowercase();

    let mut line = String::new();
    loop {
        write!(output, "{prompt}> ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            writeln!(output)?;
            return Ok(executed);
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        executed += 1;
        let mut reply = String::new();
        // One bad line must not kill the whole session: a panic anywhere in
        // evaluation is caught here, reported as UNDETERMINED, and the loop
        // keeps its prompt. (`:reset` is the escape hatch if the panic left
        // the session's caches in a state the user no longer trusts.)
        let dispatched = catch_unwind(AssertUnwindSafe(|| {
            dispatch(&session, &mut env, &mut deadline, line, &mut reply)
        }));
        match dispatched {
            Ok(Ok(ReplAction::Continue)) => {
                output.write_all(reply.as_bytes())?;
            }
            Ok(Ok(ReplAction::Quit)) => {
                output.write_all(reply.as_bytes())?;
                return Ok(executed);
            }
            Ok(Ok(ReplAction::Reset)) => {
                session = Session::new(spec.clone());
                env.clear();
                output.write_all(reply.as_bytes())?;
            }
            Ok(Err(diags)) => {
                writeln!(output, "{}", diags.render(line).trim_end())?;
            }
            Err(payload) => {
                writeln!(
                    output,
                    "UNDETERMINED: evaluation panicked: {}",
                    crate::panic_text(&*payload)
                )?;
                writeln!(output, "(the session survives; :reset drops it if in doubt)")?;
            }
        }
    }
}

/// Executes one REPL line into `reply`.
fn dispatch(
    session: &Session,
    env: &mut HashMap<String, Term>,
    deadline: &mut Option<Duration>,
    line: &str,
    reply: &mut String,
) -> Result<ReplAction, Diagnostics> {
    let spec = session.spec();
    // Every line with a `:deadline` in force gets a supervisor armed NOW,
    // so the budget covers exactly this line's evaluation.
    let supervisor = match *deadline {
        Some(budget) => Supervisor::none().with_deadline(Deadline::after(budget)),
        None => Supervisor::none(),
    };
    // Cheap per line (a rule-set clone); the memo behind it is the
    // session's, so rewrites on earlier lines keep paying off here.
    let rw = Rewriter::for_session(session).supervised(supervisor.clone());
    if let Some(rest) = line.strip_prefix(':') {
        let (cmd, arg) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest, ""),
        };
        match cmd {
            "quit" | "q" => return Ok(ReplAction::Quit),
            "help" | "h" => reply.push_str(REPL_HELP),
            "reset" => {
                reply.push_str("session reset: bindings, arena and memo dropped\n");
                return Ok(ReplAction::Reset);
            }
            "stats" => reply.push_str(&session.stats().render()),
            "deadline" => {
                if arg == "off" {
                    *deadline = None;
                    reply.push_str("per-line deadline off\n");
                } else if arg.is_empty() {
                    reply.push_str("usage: :deadline <duration>|off (e.g. :deadline 2s)\n");
                } else {
                    match crate::parse_deadline(arg) {
                        Ok(budget) => {
                            *deadline = Some(budget);
                            let _ = writeln!(reply, "per-line deadline set to {arg}");
                        }
                        Err(_) => {
                            let _ = writeln!(reply, "bad duration `{arg}` (try 500ms, 2s, 1m)");
                        }
                    }
                }
            }
            #[cfg(test)]
            "__panic" => panic!("injected repl panic"),
            "vars" => {
                if env.is_empty() {
                    reply.push_str("no session variables bound\n");
                }
                let mut names: Vec<&String> = env.keys().collect();
                names.sort();
                for name in names {
                    let _ = writeln!(reply, "{name} = {}", display::term(spec.sig(), &env[name]));
                }
            }
            "axioms" => {
                for ax in spec.axioms() {
                    let _ = writeln!(reply, "{}", display::axiom(spec.sig(), ax));
                }
            }
            "trace" => {
                let term = parse_in_env(spec, env, arg)?;
                match rw.normalize_traced(&term) {
                    Ok((nf, trace)) => {
                        reply.push_str(&trace.render(spec.sig()).to_string());
                        let _ = writeln!(reply, "normal form: {}", display::term(spec.sig(), &nf));
                    }
                    Err(e) => {
                        let _ = writeln!(reply, "{e}");
                    }
                }
            }
            "check" => {
                // The checkers honor the per-line deadline too: a `:check`
                // that outruns its budget degrades to UNDETERMINED.
                let config = CheckConfig::jobs(1).with_supervisor(supervisor.clone());
                let completeness = adt_check::check_completeness_session(session, &config);
                if completeness.is_sufficiently_complete() {
                    reply.push_str("sufficiently complete: yes\n");
                } else {
                    let verdict = if completeness.has_definite_missing() {
                        "NO"
                    } else {
                        "UNDETERMINED"
                    };
                    let _ = writeln!(reply, "sufficiently complete: {verdict}");
                    for line in completeness.prompts().lines() {
                        let _ = writeln!(reply, "  {line}");
                    }
                }
                let consistency =
                    adt_check::check_consistency_session(session, &ProbeConfig::default(), &config);
                let _ = writeln!(
                    reply,
                    "consistent: {}",
                    match consistency.verdict() {
                        ConsistencyVerdict::Consistent => "yes",
                        ConsistencyVerdict::Inconsistent | ConsistencyVerdict::Unknown => "NO",
                        ConsistencyVerdict::Exhausted | ConsistencyVerdict::Interrupted =>
                            "UNDETERMINED",
                    }
                );
            }
            "induct" => {
                // :induct <var> <lhs> = <rhs>
                let Some((var_name, equation)) = arg.split_once(char::is_whitespace) else {
                    reply.push_str("usage: :induct <var> <term> = <term>\n");
                    return Ok(ReplAction::Continue);
                };
                let Some((lhs_src, rhs_src)) = equation.split_once('=') else {
                    reply.push_str("usage: :induct <var> <term> = <term>\n");
                    return Ok(ReplAction::Continue);
                };
                let Some(var) = spec.sig().find_var(var_name.trim()) else {
                    let _ = writeln!(reply, "unknown specification variable `{var_name}`");
                    return Ok(ReplAction::Continue);
                };
                let lhs = parse_in_env(spec, env, lhs_src.trim())?;
                let rhs = parse_in_env(spec, env, rhs_src.trim())?;
                let (lhs_id, rhs_id) = (session.intern(&lhs), session.intern(&rhs));
                match adt_verify::prove_by_induction_session(session, lhs_id, rhs_id, var, 8) {
                    Ok(adt_verify::InductionOutcome::Proved { cases }) => {
                        let names: Vec<&str> = cases.iter().map(|(n, _)| n.as_str()).collect();
                        let _ =
                            writeln!(reply, "proved by induction (cases: {})", names.join(", "));
                    }
                    Ok(adt_verify::InductionOutcome::Failed {
                        case,
                        lhs_nf,
                        rhs_nf,
                    }) => {
                        let _ = writeln!(
                            reply,
                            "NOT proved: the {case} case is stuck at {lhs_nf} vs {rhs_nf}"
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(reply, "{e}");
                    }
                }
            }
            "prove" => {
                let Some((lhs_src, rhs_src)) = arg.split_once('=') else {
                    reply.push_str("usage: :prove <term> = <term>\n");
                    return Ok(ReplAction::Continue);
                };
                let lhs = parse_in_env(spec, env, lhs_src.trim())?;
                let rhs = parse_in_env(spec, env, rhs_src.trim())?;
                match rw.prove_equal(&lhs, &rhs, 8) {
                    Ok(Proof::Proved { cases }) => {
                        let _ = writeln!(reply, "proved ({cases} case(s))");
                    }
                    Ok(Proof::Undecided { lhs_nf, rhs_nf, .. }) => {
                        let _ = writeln!(
                            reply,
                            "NOT proved: {} vs {}",
                            display::term(spec.sig(), &lhs_nf),
                            display::term(spec.sig(), &rhs_nf)
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(reply, "{e}");
                    }
                }
            }
            other => {
                let _ = writeln!(reply, "unknown command `:{other}` (try :help)");
            }
        }
        return Ok(ReplAction::Continue);
    }

    // `NAME := term` or a bare term.
    if let Some((name, term_src)) = line.split_once(":=") {
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            let _ = writeln!(reply, "bad session variable name `{name}`");
            return Ok(ReplAction::Continue);
        }
        let term = parse_in_env(spec, env, term_src.trim())?;
        match rw.normalize_full(&term) {
            Ok(norm) => {
                session.note_normalization(norm.steps);
                let _ = writeln!(reply, "{name} = {}", display::term(spec.sig(), &norm.term));
                env.insert(name.to_owned(), norm.term);
            }
            Err(e) => {
                let _ = writeln!(reply, "{e}");
            }
        }
        return Ok(ReplAction::Continue);
    }

    let term = parse_in_env(spec, env, line)?;
    match rw.normalize_full(&term) {
        Ok(norm) => {
            session.record_nf(session.intern(&term), session.intern(&norm.term));
            session.note_normalization(norm.steps);
            let _ = writeln!(
                reply,
                "{}   ({} step(s))",
                display::term(spec.sig(), &norm.term),
                norm.steps
            );
        }
        Err(e) => {
            let _ = writeln!(reply, "{e}");
        }
    }
    Ok(ReplAction::Continue)
}

/// Parses a term that may mention session variables: the signature is
/// temporarily extended with one typed variable per binding, and the
/// bindings are substituted in afterwards.
fn parse_in_env(
    spec: &Spec,
    env: &HashMap<String, Term>,
    source: &str,
) -> Result<Term, Diagnostics> {
    let ast = parse_term_source(source)?;
    let mut sig = spec.sig().clone();
    let mut subst = Subst::new();
    for (name, value) in env {
        if sig.find_var(name).is_some() || sig.find_op(name).is_some() {
            continue; // spec names shadow session bindings
        }
        let sort = value
            .sort(spec.sig())
            .expect("bound values are normalized well-sorted terms");
        let var = sig
            .add_var(name, sort)
            .expect("binding names were checked unique");
        subst.bind(var, value.clone());
    }
    let term = lower_term_in(&sig, &ast, None)?;
    Ok(subst.apply(&term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn queue_spec() -> Spec {
        adt_dsl::parse(
            r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool
  A: -> Item ctor
  B: -> Item ctor
vars
  q: Queue
  i: Item
axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#,
        )
        .unwrap()
    }

    fn drive(script: &str) -> String {
        let spec = queue_spec();
        let mut input = Cursor::new(script.to_owned());
        let mut output = Vec::new();
        run_repl(&spec, &mut input, &mut output).unwrap();
        String::from_utf8(output).unwrap()
    }

    #[test]
    fn bindings_and_evaluation() {
        let out = drive("x := NEW\nx := ADD(x, A)\nFRONT(x)\n:quit\n");
        assert!(out.contains("x = NEW"), "{out}");
        assert!(out.contains("x = ADD(NEW, A)"), "{out}");
        assert!(out.contains("A   (") && out.contains("step"), "{out}");
    }

    #[test]
    fn session_variables_feed_later_terms() {
        let out = drive("x := ADD(ADD(NEW, A), B)\nFRONT(REMOVE(x))\n:quit\n");
        assert!(out.contains("B   ("), "{out}");
    }

    #[test]
    fn trace_and_prove_commands() {
        let out = drive(
            ":trace FRONT(ADD(NEW, A))\n:prove FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)\n:quit\n",
        );
        assert!(out.contains("=[4]=>"), "{out}");
        assert!(out.contains("proved"), "{out}");
    }

    #[test]
    fn prove_failure_shows_normal_forms() {
        let out = drive(":prove A = B\n:quit\n");
        assert!(out.contains("NOT proved: A vs B"), "{out}");
    }

    #[test]
    fn vars_and_axioms_listings() {
        let out = drive("x := NEW\n:vars\n:axioms\n:quit\n");
        assert!(out.contains("x = NEW"), "{out}");
        assert!(out.contains("[4] FRONT(ADD(q, i))"), "{out}");
    }

    #[test]
    fn errors_are_reported_inline_and_session_continues() {
        let out = drive("FRONT(ZORP)\nFRONT(ADD(NEW, A))\n:quit\n");
        assert!(out.contains("unknown name `ZORP`"), "{out}");
        assert!(out.contains("A   ("), "{out}");
    }

    #[test]
    fn unknown_command_and_help() {
        let out = drive(":frob\n:help\n:quit\n");
        assert!(out.contains("unknown command `:frob`"), "{out}");
        assert!(out.contains("commands:"), "{out}");
    }

    #[test]
    fn check_command_runs_both_checkers() {
        let out = drive(":check\n:quit\n");
        assert!(out.contains("sufficiently complete: yes"), "{out}");
        assert!(out.contains("consistent: yes"), "{out}");
    }

    #[test]
    fn induct_command_closes_constructor_cases() {
        let out = drive(":induct q IS_EMPTY?(ADD(q, i)) = false\n:quit\n");
        assert!(
            out.contains("proved by induction (cases: NEW, ADD)"),
            "{out}"
        );
    }

    #[test]
    fn induct_rejects_unknown_variables_and_bad_usage() {
        let out = drive(":induct zz FRONT(NEW) = error\n:induct q FRONT(NEW)\n:quit\n");
        assert!(out.contains("unknown specification variable `zz`"), "{out}");
        assert!(out.contains("usage: :induct"), "{out}");
    }

    #[test]
    fn session_persists_across_lines_and_stats_sees_it() {
        // Two evaluations plus telemetry: the session counts both, and
        // the second run of the same term hits the memo warmed by the
        // first — the whole point of keeping one session per REPL.
        let out = drive("FRONT(ADD(NEW, A))\nFRONT(ADD(NEW, A))\n:stats\n:quit\n");
        assert!(out.contains("stats: session arena"), "{out}");
        assert!(out.contains("2 normalization(s)"), "{out}");
        let memo_line = out
            .lines()
            .find(|l| l.contains("stats: session memo"))
            .expect("stats prints a memo line");
        let cross_run = memo_line
            .split("nf-cache")
            .next()
            .expect("memo line has a cross-run half");
        assert!(!cross_run.contains(" 0 hit(s)"), "{memo_line}");
    }

    #[test]
    fn reset_drops_bindings_and_telemetry() {
        let out = drive("x := ADD(NEW, A)\nFRONT(x)\n:reset\n:vars\n:stats\n:quit\n");
        assert!(out.contains("session reset"), "{out}");
        assert!(out.contains("no session variables bound"), "{out}");
        assert!(out.contains("0 normalization(s)"), "{out}");
    }

    #[test]
    fn eof_terminates_cleanly() {
        let out = drive("x := NEW\n");
        assert!(out.contains("x = NEW"), "{out}");
    }

    #[test]
    fn error_value_propagates_in_session() {
        let out = drive("x := REMOVE(NEW)\nIS_EMPTY?(x)\n:quit\n");
        assert!(out.contains("x = error"), "{out}");
        assert!(out.contains("error   ("), "{out}");
    }

    #[test]
    fn deadline_interrupts_evaluation_and_can_be_lifted() {
        // An already-expired budget interrupts on the very first rewrite
        // step; `:deadline off` restores normal evaluation — same session,
        // same term.
        let out = drive(
            ":deadline 0s\nFRONT(ADD(NEW, A))\n:deadline off\nFRONT(ADD(NEW, A))\n:quit\n",
        );
        assert!(out.contains("per-line deadline set to 0s"), "{out}");
        assert!(
            out.contains("interrupted (deadline exceeded)"),
            "{out}"
        );
        assert!(out.contains("per-line deadline off"), "{out}");
        assert!(out.contains("A   ("), "{out}");
    }

    #[test]
    fn deadline_applies_to_check_too() {
        let out = drive(":deadline 0s\n:check\n:quit\n");
        assert!(out.contains("sufficiently complete: UNDETERMINED"), "{out}");
        assert!(out.contains("consistent: UNDETERMINED"), "{out}");
    }

    #[test]
    fn deadline_usage_and_bad_durations_are_reported() {
        let out = drive(":deadline\n:deadline soon\n:quit\n");
        assert!(out.contains("usage: :deadline"), "{out}");
        assert!(out.contains("bad duration `soon`"), "{out}");
    }

    #[test]
    fn panic_in_evaluation_does_not_kill_the_session() {
        // `:__panic` is a test-only line that panics inside dispatch —
        // standing in for any engine bug. The session must answer with an
        // UNDETERMINED diagnostic and keep serving later lines; `:reset`
        // still works afterwards.
        let out = drive("x := ADD(NEW, A)\n:__panic\nFRONT(x)\n:reset\n:vars\n:quit\n");
        assert!(
            out.contains("UNDETERMINED: evaluation panicked: injected repl panic"),
            "{out}"
        );
        assert!(out.contains(":reset drops it if in doubt"), "{out}");
        assert!(out.contains("A   ("), "{out}");
        assert!(out.contains("no session variables bound"), "{out}");
    }
}
