//! Checkpoint/resume for `adt check`: a versioned JSON file recording
//! the results of every *completed* check phase, keyed by the
//! specification's content hash and the check configuration.
//!
//! A phase is recorded only when it finished without a supervisor
//! interrupt, so a resumed run replays cached sections byte for byte and
//! recomputes exactly the phases the interrupted run never finished —
//! the final report is identical to one uninterrupted run's, at any
//! `--jobs`.
//!
//! The file format is deliberately tiny (strings, booleans, arrays,
//! objects — nothing else), hand-rolled like every other serializer in
//! this workspace: the toolchain stays dependency-free. A checkpoint
//! written by a different schema version, for a different specification,
//! or under a different configuration is ignored wholesale, never
//! partially trusted.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// The schema tag every checkpoint file must carry.
pub const SCHEMA: &str = "adt-checkpoint/v1";

/// A named vector of per-item verdict strings (e.g. the consistency
/// phase's `pairs` and `probes` vectors), preserved across a resume so
/// harnesses can compare item-wise without re-running the phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictGroup {
    /// Group label (`"pairs"`, `"probes"`).
    pub group: String,
    /// Per-item verdicts, in item order.
    pub items: Vec<String>,
}

/// One completed phase: its rendered report section, whether it failed
/// the check, and its per-item verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (`"completeness"`, `"consistency"`).
    pub name: String,
    /// Whether the phase produced a definite negative verdict.
    pub failed: bool,
    /// The exact report section the phase rendered.
    pub section: String,
    /// Per-item verdict vectors, if the phase has any.
    pub verdicts: Vec<VerdictGroup>,
}

/// An on-disk checkpoint: spec hash, configuration fingerprint, and the
/// phases completed so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// FNV-1a hash of the canonical specification text.
    pub spec: String,
    /// Fingerprint of the check configuration the results depend on.
    pub config: String,
    /// Completed phases, in completion order.
    pub phases: Vec<Phase>,
}

impl Checkpoint {
    /// An empty checkpoint for the given spec hash and config
    /// fingerprint.
    pub fn new(spec: String, config: String) -> Self {
        Checkpoint {
            spec,
            config,
            phases: Vec::new(),
        }
    }

    /// Whether this checkpoint was written for the same specification
    /// and configuration.
    pub fn matches(&self, spec: &str, config: &str) -> bool {
        self.spec == spec && self.config == config
    }

    /// The cached entry for `name`, if that phase completed.
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Records (or replaces) a completed phase.
    pub fn set_phase(&mut self, phase: Phase) {
        match self.phases.iter_mut().find(|p| p.name == phase.name) {
            Some(slot) => *slot = phase,
            None => self.phases.push(phase),
        }
    }

    /// Renders the checkpoint as JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"schema\": ");
        push_json_str(&mut out, SCHEMA);
        out.push_str(",\n  \"spec\": ");
        push_json_str(&mut out, &self.spec);
        out.push_str(",\n  \"config\": ");
        push_json_str(&mut out, &self.config);
        out.push_str(",\n  \"phases\": [");
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_json_str(&mut out, &phase.name);
            let _ = write!(out, ", \"failed\": {}, \"section\": ", phase.failed);
            push_json_str(&mut out, &phase.section);
            out.push_str(", \"verdicts\": [");
            for (j, group) in phase.verdicts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"group\": ");
                push_json_str(&mut out, &group.group);
                out.push_str(", \"items\": [");
                for (k, item) in group.items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    push_json_str(&mut out, item);
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON, a missing
    /// field, or a schema tag this version does not understand.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let value = Parser::new(text).document()?;
        let top = value.as_obj().ok_or("top level is not an object")?;
        let schema = field_str(top, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported checkpoint schema `{schema}`"));
        }
        let mut phases = Vec::new();
        for entry in field(top, "phases")?
            .as_arr()
            .ok_or("`phases` is not an array")?
        {
            let obj = entry.as_obj().ok_or("phase entry is not an object")?;
            let mut verdicts = Vec::new();
            for group in field(obj, "verdicts")?
                .as_arr()
                .ok_or("`verdicts` is not an array")?
            {
                let gobj = group.as_obj().ok_or("verdict group is not an object")?;
                let items = field(gobj, "items")?
                    .as_arr()
                    .ok_or("`items` is not an array")?
                    .iter()
                    .map(|v| v.as_str().map(str::to_owned).ok_or("verdict is not a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                verdicts.push(VerdictGroup {
                    group: field_str(gobj, "group")?.to_owned(),
                    items,
                });
            }
            phases.push(Phase {
                name: field_str(obj, "name")?.to_owned(),
                failed: field(obj, "failed")?
                    .as_bool()
                    .ok_or("`failed` is not a boolean")?,
                section: field_str(obj, "section")?.to_owned(),
                verdicts,
            });
        }
        Ok(Checkpoint {
            spec: field_str(top, "spec")?.to_owned(),
            config: field_str(top, "config")?.to_owned(),
            phases,
        })
    }

    /// Loads a checkpoint from `path`. Returns `None` when the file does
    /// not exist, cannot be read, or does not parse — a stale or
    /// corrupted checkpoint degrades to a fresh run, never an error.
    pub fn load(path: &Path) -> Option<Checkpoint> {
        let text = fs::read_to_string(path).ok()?;
        Checkpoint::parse(&text).ok()
    }

    /// Writes the checkpoint to `path` (replacing any previous file).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.render())
    }
}

/// FNV-1a (64-bit) over the input, as fixed-width lowercase hex — the
/// content key checkpoints are matched on.
pub fn fnv1a_hex(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON subset checkpoints use: strings, booleans, arrays, objects.
enum Json {
    Str(String),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

fn field<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

fn field_str<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a str, String> {
    field(obj, name)?
        .as_str()
        .ok_or_else(|| format!("field `{name}` is not a string"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Json::Bool(false))
            }
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("\\u{hex} is not a character"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ckpt = Checkpoint::new("deadbeef".to_owned(), "fuel=100;retry=none".to_owned());
        ckpt.set_phase(Phase {
            name: "completeness".to_owned(),
            failed: false,
            section: "sufficiently complete: yes\n".to_owned(),
            verdicts: Vec::new(),
        });
        ckpt.set_phase(Phase {
            name: "consistency".to_owned(),
            failed: true,
            section: "consistent: NO\n  weird \"quotes\" and\ttabs\n".to_owned(),
            verdicts: vec![VerdictGroup {
                group: "pairs".to_owned(),
                items: vec!["joins at NEW".to_owned(), "diverged: A vs B".to_owned()],
            }],
        });
        ckpt
    }

    #[test]
    fn render_parse_round_trips_exactly() {
        let ckpt = sample();
        let parsed = Checkpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn set_phase_replaces_by_name() {
        let mut ckpt = sample();
        ckpt.set_phase(Phase {
            name: "consistency".to_owned(),
            failed: false,
            section: "consistent: yes\n".to_owned(),
            verdicts: Vec::new(),
        });
        assert_eq!(ckpt.phases.len(), 2);
        assert!(!ckpt.phase("consistency").unwrap().failed);
    }

    #[test]
    fn mismatched_schema_spec_or_config_is_rejected() {
        let ckpt = sample();
        assert!(ckpt.matches("deadbeef", "fuel=100;retry=none"));
        assert!(!ckpt.matches("deadbeef", "fuel=200;retry=none"));
        assert!(!ckpt.matches("cafef00d", "fuel=100;retry=none"));
        let tampered = ckpt.render().replace("adt-checkpoint/v1", "adt-checkpoint/v9");
        assert!(Checkpoint::parse(&tampered).is_err());
    }

    #[test]
    fn garbage_input_degrades_to_none_on_load() {
        assert!(Checkpoint::parse("{").is_err());
        assert!(Checkpoint::parse("{}").is_err());
        assert!(Checkpoint::parse("42").is_err());
        assert!(Checkpoint::load(Path::new("/no/such/checkpoint.json")).is_none());
    }

    #[test]
    fn fnv_hash_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("abc"), fnv1a_hex("abc"));
        assert_ne!(fnv1a_hex("abc"), fnv1a_hex("abd"));
        assert_eq!(fnv1a_hex("abc").len(), 16);
    }

    #[test]
    fn control_characters_survive_the_round_trip() {
        let mut ckpt = Checkpoint::new("h".to_owned(), "c".to_owned());
        ckpt.set_phase(Phase {
            name: "p".to_owned(),
            failed: false,
            section: "bell \u{7} nul-adjacent \u{1} fin\n".to_owned(),
            verdicts: Vec::new(),
        });
        assert_eq!(Checkpoint::parse(&ckpt.render()).unwrap(), ckpt);
    }
}
