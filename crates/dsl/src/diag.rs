//! Source spans and diagnostics.

use std::error::Error;
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// One problem found in a specification source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }
}

/// A non-empty collection of diagnostics, returned when parsing or
/// lowering fails.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection (not yet an error).
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Adds a diagnostic from parts.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::new(span, message));
    }

    /// All diagnostics, in the order found.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Whether anything was reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Renders every diagnostic against the source, with a line/column
    /// header and a caret line, compiler-style:
    ///
    /// ```text
    /// error: unknown sort `Qeue`
    ///   --> line 4, column 12
    ///    |   ADD: Qeue, Item -> Queue ctor
    ///    |        ^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let mut out = String::new();
        for d in &self.items {
            let (line, col) = map.position(d.span.start);
            out.push_str(&format!("error: {}\n", d.message));
            out.push_str(&format!("  --> line {line}, column {col}\n"));
            if let Some(text) = map.line_text(source, line) {
                out.push_str(&format!("   | {text}\n"));
                let width = (d.span.end.saturating_sub(d.span.start)).max(1);
                let width = width.min(text.len().saturating_sub(col - 1).max(1));
                out.push_str(&format!(
                    "   | {}{}\n",
                    " ".repeat(col - 1),
                    "^".repeat(width)
                ));
            }
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", d.message)?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

/// Maps byte offsets to 1-based (line, column) positions.
struct LineMap {
    line_starts: Vec<usize>,
}

impl LineMap {
    fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts }
    }

    fn position(&self, offset: usize) -> (usize, usize) {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line_idx + 1, offset - self.line_starts[line_idx] + 1)
    }

    fn line_text<'s>(&self, source: &'s str, line: usize) -> Option<&'s str> {
        let start = *self.line_starts.get(line - 1)?;
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(source.len());
        source.get(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_join() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(b.join(a), Span::new(3, 12));
    }

    #[test]
    fn line_map_positions() {
        let src = "abc\ndef\nghi";
        let map = LineMap::new(src);
        assert_eq!(map.position(0), (1, 1));
        assert_eq!(map.position(2), (1, 3));
        assert_eq!(map.position(4), (2, 1));
        assert_eq!(map.position(9), (3, 2));
        assert_eq!(map.line_text(src, 2), Some("def"));
        assert_eq!(map.line_text(src, 3), Some("ghi"));
    }

    #[test]
    fn render_points_at_the_problem() {
        let src = "type Queue\nops\n  ADD: Qeue -> Queue\nend";
        let pos = src.find("Qeue").unwrap();
        let mut ds = Diagnostics::new();
        ds.error(Span::new(pos, pos + 4), "unknown sort `Qeue`");
        let rendered = ds.render(src);
        assert!(rendered.contains("unknown sort `Qeue`"));
        assert!(rendered.contains("line 3"));
        assert!(rendered.contains("^^^^"), "{rendered}");
    }

    #[test]
    fn display_concatenates_messages() {
        let mut ds = Diagnostics::new();
        ds.error(Span::new(0, 1), "first");
        ds.error(Span::new(1, 2), "second");
        let s = ds.to_string();
        assert!(s.contains("first"));
        assert!(s.contains("second"));
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
    }
}
