//! The abstract syntax tree of a specification module.

use crate::diag::Span;

/// A whole source file: `param` declarations and `type` blocks sharing one
/// name space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `param Item, Identifier` — declares parameter sorts.
    Param {
        /// The declared sort names with their spans.
        names: Vec<(String, Span)>,
    },
    /// A `type … end` block.
    Type(TypeBlock),
}

/// One `type` block: a sort of interest with its operations, variables and
/// axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeBlock {
    /// The sort this block defines.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Parameter sorts declared inside the block (`param Item`).
    pub params: Vec<(String, Span)>,
    /// Operation declarations.
    pub ops: Vec<OpDecl>,
    /// Variable declarations.
    pub vars: Vec<VarDecl>,
    /// Axioms.
    pub axioms: Vec<AxiomDecl>,
}

/// `NAME: S1, S2 -> S3 [ctor]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDecl {
    /// Operation name.
    pub name: String,
    /// Argument sort names.
    pub args: Vec<(String, Span)>,
    /// Result sort name.
    pub result: (String, Span),
    /// Whether the `ctor` marker is present.
    pub ctor: bool,
    /// Span of the operation name.
    pub span: Span,
}

/// `x, y: S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable names.
    pub names: Vec<(String, Span)>,
    /// Their common sort.
    pub sort: (String, Span),
}

/// `[label] lhs = rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxiomDecl {
    /// The label between brackets.
    pub label: String,
    /// Span of the label.
    pub label_span: Span,
    /// Left-hand side.
    pub lhs: TermAst,
    /// Right-hand side.
    pub rhs: TermAst,
}

/// A surface-syntax term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermAst {
    /// A bare name: variable, nullary operation, `true` or `false`.
    Name(String, Span),
    /// `NAME(arg, …)`.
    App {
        /// The operation name.
        name: String,
        /// Span of the name.
        name_span: Span,
        /// Argument terms.
        args: Vec<TermAst>,
    },
    /// `if c then t else e`.
    If {
        /// Condition.
        cond: Box<TermAst>,
        /// Then-branch.
        then_branch: Box<TermAst>,
        /// Else-branch.
        else_branch: Box<TermAst>,
        /// Span of the `if` keyword.
        span: Span,
    },
    /// `error`.
    Error(Span),
}

impl TermAst {
    /// The span most representative of this term (its head).
    pub fn span(&self) -> Span {
        match self {
            TermAst::Name(_, s) => *s,
            TermAst::App { name_span, .. } => *name_span,
            TermAst::If { span, .. } => *span,
            TermAst::Error(s) => *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_spans_follow_heads() {
        let s1 = Span::new(3, 6);
        assert_eq!(TermAst::Name("q".into(), s1).span(), s1);
        assert_eq!(TermAst::Error(s1).span(), s1);
        let app = TermAst::App {
            name: "ADD".into(),
            name_span: s1,
            args: vec![],
        };
        assert_eq!(app.span(), s1);
        let ite = TermAst::If {
            cond: Box::new(TermAst::Error(Span::new(9, 14))),
            then_branch: Box::new(TermAst::Error(Span::new(20, 25))),
            else_branch: Box::new(TermAst::Error(Span::new(30, 35))),
            span: s1,
        };
        assert_eq!(ite.span(), s1);
    }
}
